//! Regenerates every table and figure of the paper as text.
//!
//! ```text
//! paper_tables [fig2|fig3|fig4|fig5|fig6|timing|fp|ext|linux|baselines|ablations|all]
//! ```

use strider_bench::{ablation, baselines, extensions, figures, fp, linux, render_table, timing};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    let mut failed = false;
    let mut run = |name: &str, f: &mut dyn FnMut() -> Result<(), String>| {
        if all || which == name {
            if let Err(e) = f() {
                eprintln!("{name}: {e}");
                failed = true;
            }
        }
    };

    run("fig2", &mut || {
        let rows = figures::technique_matrix().map_err(|e| e.to_string())?;
        let table: Vec<Vec<String>> = rows
            .into_iter()
            .map(|(name, techniques)| vec![name, techniques.join(" + ")])
            .collect();
        println!(
            "{}",
            render_table(
                "Figures 2 & 5: hiding techniques per ghostware program",
                &["Ghostware", "Technique(s)"],
                &table
            )
        );
        Ok(())
    });

    run("fig3", &mut || {
        let rows = figures::fig3_hidden_files().map_err(|e| e.to_string())?;
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.ghostware.clone(),
                    format!("{}", r.expected.len()),
                    r.detected.join(", "),
                    verdict(r.complete && r.extras == 0),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                "Figure 3: GhostBuster hidden-file detection",
                &["Ghostware", "#Hidden", "Hidden files detected", "Complete"],
                &table
            )
        );
        Ok(())
    });

    run("fig4", &mut || {
        let rows = figures::fig4_hidden_asep().map_err(|e| e.to_string())?;
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.ghostware.clone(),
                    r.detected.join(", "),
                    verdict(r.complete && r.extras == 0),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                "Figure 4: GhostBuster hidden ASEP hook detection",
                &["Ghostware", "Hidden ASEP hooks detected", "Complete"],
                &table
            )
        );
        Ok(())
    });

    run("fig6", &mut || {
        let rows = figures::fig6_hidden_procs().map_err(|e| e.to_string())?;
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.ghostware.clone(),
                    r.expected.join(", "),
                    verdict(r.normal_complete),
                    verdict(r.advanced_complete),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                "Figure 6: hidden processes/modules (normal vs advanced mode)",
                &[
                    "Ghostware",
                    "Hidden processes/modules",
                    "Normal",
                    "Advanced"
                ],
                &table
            )
        );
        Ok(())
    });

    run("timing", &mut || {
        let rows = timing::timing_rows();
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.machine.clone(),
                    r.class.clone(),
                    format!("{} MHz", r.cpu_mhz),
                    format!("{:.0} GB", r.disk_used_gb),
                    fmt_secs(r.file_scan_s),
                    fmt_secs(r.registry_scan_s),
                    fmt_secs(r.process_scan_s),
                    fmt_secs(r.winpe_boot_s),
                    fmt_secs(r.dump_s),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                "Scan-time model (paper: files 30s-7min + 38min outlier; ASEPs 18-63s; processes 1-5s)",
                &["Machine", "Class", "CPU", "Disk", "File scan", "ASEP scan", "Proc scan", "WinPE boot", "Dump"],
                &table
            )
        );
        let measured = timing::measured_io_rows().map_err(|e| e.to_string())?;
        let table: Vec<Vec<String>> = measured
            .iter()
            .map(|r| {
                vec![
                    r.machine.clone(),
                    fmt_secs(r.file_scan_s),
                    fmt_secs(r.registry_scan_s),
                    fmt_secs(r.process_scan_s),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                "Bottom-up cross-check: measured simulator I/O, extrapolated per profile",
                &["Machine", "File scan", "ASEP scan", "Proc scan"],
                &table
            )
        );
        Ok(())
    });

    run("fp", &mut || {
        let rows = fp::fp_rows().map_err(|e| e.to_string())?;
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.machine.clone(),
                    if r.ccm { "yes" } else { "no" }.into(),
                    r.inside_files.to_string(),
                    r.inside_processes.to_string(),
                    r.outside_files_raw.to_string(),
                    r.outside_files_after_filter.to_string(),
                    r.vm_files.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                "False positives per machine (paper: inside 0; outside <=2 except CCM machine 7; VM 0)",
                &["Machine", "CCM", "Inside files", "Inside procs", "Outside raw", "Outside filtered", "VM"],
                &table
            )
        );
        let (with_ccm, without) = fp::ccm_remediation().map_err(|e| e.to_string())?;
        println!("CCM machine: {with_ccm} raw FPs with CCM, {without} after disabling it\n");
        let (raw, classified, after) = fp::registry_corruption_fp().map_err(|e| e.to_string())?;
        println!(
            "Registry corruption FP: {raw} finding ({classified} classified as corruption), {after} after export/delete/re-import repair\n"
        );
        Ok(())
    });

    run("ext", &mut || {
        let rows = extensions::targeting_rows().map_err(|e| e.to_string())?;
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.attack.clone(),
                    verdict(r.plain_detects),
                    verdict(r.injected_detects),
                    r.lied_to_count.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                "Section 5: targeting attacks vs the injected per-process scan",
                &[
                    "Attack",
                    "Plain EXE detects",
                    "Injected detects",
                    "#processes lied to"
                ],
                &table
            )
        );
        let (hiding, diff, not_hiding) = extensions::etrust_dilemma().map_err(|e| e.to_string())?;
        println!("eTrust dilemma: hiding -> {hiding} signature hits but {diff} diff findings; not hiding -> {not_hiding} signature hits\n");
        let mass = extensions::mass_hiding_anomaly().map_err(|e| e.to_string())?;
        println!("Mass-hiding anomaly: hiding innocent trees produces {mass} findings — a louder alarm\n");
        let fw = extensions::futurework_outcome().map_err(|e| e.to_string())?;
        println!(
            "Future work implemented: ADS scan finds {} hidden streams; AskStrider driver check flags {:?} (hxdef) and {:?} (FU); Gatekeeper ASEP monitor vs cross-view on non-hiding Berbew hook: {:?}\n",
            fw.ads_findings, fw.hxdef_driver_findings, fw.fu_driver_findings,
            fw.berbew_monitor_vs_crossview
        );
        let r = extensions::remediation_flow().map_err(|e| e.to_string())?;
        println!(
            "Hacker Defender remediation: {} hidden process found in ~{:.1}s; {} hooks located in ~{:.0}s; {} removed; files visible after reboot: {}; residual findings: {}\n",
            r.hidden_processes, r.detect_seconds, r.hooks_located, r.locate_seconds,
            r.hooks_removed, r.files_visible_after_reboot, r.residual
        );
        Ok(())
    });

    run("linux", &mut || {
        let rows = linux::linux_rows();
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.rootkit.clone(),
                    if r.uses_lkm {
                        "LKM getdents hook"
                    } else {
                        "trojaned ls"
                    }
                    .into(),
                    verdict(r.inside_detects),
                    verdict(r.outside_complete),
                    r.outside_noise.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                "Section 5: Linux/Unix rootkits (paper: all detected, <=4 FPs)",
                &[
                    "Rootkit",
                    "Technique",
                    "ls-vs-glob detects",
                    "Clean-boot detects",
                    "Noise FPs"
                ],
                &table
            )
        );
        Ok(())
    });

    run("baselines", &mut || {
        let rows = baselines::coverage_rows().map_err(|e| e.to_string())?;
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.ghostware.clone(),
                    verdict(r.cross_view),
                    verdict(r.hook_scan),
                    verdict(r.cross_time),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                "Detector coverage: cross-view diff vs hook scan vs cross-time diff",
                &["Ghostware", "Cross-view", "Hook scan", "Cross-time"],
                &table
            )
        );
        let (cv, hs, ct) = baselines::false_positive_rows().map_err(|e| e.to_string())?;
        println!("Clean-machine false alarms: cross-view {cv}, hook scan {hs} (benign wrapper), cross-time {ct} (legitimate churn)\n");
        Ok(())
    });

    run("ablations", &mut || {
        let curve =
            ablation::timegap_fp_curve(&[0, 30, 90, 150, 300, 600]).map_err(|e| e.to_string())?;
        let table: Vec<Vec<String>> = curve
            .iter()
            .map(|(gap, fps)| vec![format!("{gap}"), fps.to_string()])
            .collect();
        println!(
            "{}",
            render_table(
                "Ablation: raw FPs vs scan-pair time gap (VM=0, inside~0, WinPE reboot 90-180)",
                &["Gap (ticks)", "Raw FPs"],
                &table
            )
        );
        let matrix = ablation::advanced_source_matrix().map_err(|e| e.to_string())?;
        let table: Vec<Vec<String>> = matrix
            .into_iter()
            .map(|(src, found)| vec![src, verdict(found)])
            .collect();
        println!(
            "{}",
            render_table(
                "Ablation: which low-level structure defeats FU's DKOM",
                &["Truth source", "Finds hidden process"],
                &table
            )
        );
        let (inside, outside) = ablation::low_scan_interference().map_err(|e| e.to_string())?;
        println!("Ablation: hive-copy tampering -> inside-the-box finds {inside} hooks, outside-the-box finds {outside}\n");
        let (clean, scrubbed) = ablation::dump_scrub_matrix().map_err(|e| e.to_string())?;
        println!("Ablation: dump flow finds FU: clean dump {clean}, scrubbed dump {scrubbed} (the paper's blue-screen caveat)\n");
        Ok(())
    });

    if failed {
        std::process::exit(1);
    }
}

fn verdict(ok: bool) -> String {
    if ok {
        "yes".into()
    } else {
        "no".into()
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 120.0 {
        format!("{:.1} min", s / 60.0)
    } else {
        format!("{s:.1} s")
    }
}
