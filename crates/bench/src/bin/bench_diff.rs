//! The bench regression gate CLI: diffs fresh `BENCH_*.json` reports
//! against committed baselines with per-metric noise thresholds.
//!
//! ```text
//! bench_diff [--baseline DIR] [--fresh DIR]
//!            [--time-frac F] [--alloc-frac F] [--min-time-ns N]
//! ```
//!
//! Both directories default to the workspace root (honouring
//! `STRIDER_BENCH_DIR`), so a bare `bench_diff` after `cargo bench`
//! compares the working tree's regenerated reports against themselves —
//! the deterministic smoke run `verify.sh` uses. In CI the intended flow
//! is: copy the committed reports aside, re-run the benches, then
//! `bench_diff --baseline <copy> --fresh .`. Exits 1 when any metric
//! regressed past its threshold.

use std::path::PathBuf;
use std::process::ExitCode;
use strider_support::bench::{compare_bench_dirs, report_dir, DiffThresholds};

fn main() -> ExitCode {
    let mut baseline = report_dir();
    let mut fresh = report_dir();
    let mut thresholds = DiffThresholds::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a {what}")))
        };
        match flag.as_str() {
            "--baseline" => baseline = PathBuf::from(value("directory")),
            "--fresh" => fresh = PathBuf::from(value("directory")),
            "--time-frac" => thresholds.time_frac = parse_f64(&flag, &value("number")),
            "--alloc-frac" => thresholds.alloc_frac = parse_f64(&flag, &value("number")),
            "--min-time-ns" => thresholds.min_time_ns = parse_f64(&flag, &value("number")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_diff [--baseline DIR] [--fresh DIR] \
                     [--time-frac F] [--alloc-frac F] [--min-time-ns N]"
                );
                return ExitCode::SUCCESS;
            }
            other => fail(&format!("unknown flag {other:?} (try --help)")),
        }
    }

    match compare_bench_dirs(&baseline, &fresh, &thresholds) {
        Ok(comparison) => {
            print!("{}", comparison.render());
            if comparison.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(error) => {
            eprintln!("bench_diff: {error}");
            ExitCode::FAILURE
        }
    }
}

fn parse_f64(flag: &str, raw: &str) -> f64 {
    raw.parse()
        .unwrap_or_else(|_| fail(&format!("{flag}: {raw:?} is not a number")))
}

fn fail(message: &str) -> ! {
    eprintln!("bench_diff: {message}");
    std::process::exit(2);
}
