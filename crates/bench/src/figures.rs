//! Figures 2–6: the detection-result tables and technique matrices.

use crate::victim_machine;
use strider_ghostbuster::{AdvancedSource, GhostBuster};
use strider_ghostware::{
    file_hiding_corpus, process_hiding_corpus, registry_hiding_corpus, Infection,
};
use strider_nt_core::NtStatus;

/// One row of a detection-result figure.
#[derive(Debug, Clone)]
pub struct DetectionRow {
    /// Sample name.
    pub ghostware: String,
    /// Techniques used (Figures 2/5 content).
    pub techniques: Vec<String>,
    /// Ground-truth hidden artifacts.
    pub expected: Vec<String>,
    /// Artifacts GhostBuster reported.
    pub detected: Vec<String>,
    /// Whether every expected artifact was reported.
    pub complete: bool,
    /// Suspicious findings beyond the expected set (should be 0).
    pub extras: usize,
}

fn expected_matches(details: &[String], expected: &str) -> bool {
    details.iter().any(|d| {
        expected
            .split(" -> ")
            .all(|part| d.to_ascii_lowercase().contains(&part.to_ascii_lowercase()))
    })
}

fn detection_row(
    infection: &Infection,
    expected: Vec<String>,
    detected: Vec<String>,
) -> DetectionRow {
    let complete = expected.iter().all(|e| expected_matches(&detected, e));
    let extras = detected
        .iter()
        .filter(|d| {
            !expected
                .iter()
                .any(|e| expected_matches(&[(*d).clone()], e))
        })
        .count();
    DetectionRow {
        ghostware: infection.ghostware.clone(),
        techniques: infection.techniques.iter().map(|t| t.to_string()).collect(),
        expected,
        detected,
        complete,
        extras,
    }
}

/// Figure 3: hidden-file detection across the ten file-hiding samples.
///
/// # Errors
///
/// Propagates machine/scan failures.
pub fn fig3_hidden_files() -> Result<Vec<DetectionRow>, NtStatus> {
    let mut rows = Vec::new();
    for (i, sample) in file_hiding_corpus().into_iter().enumerate() {
        let mut machine = victim_machine(100 + i as u64)?;
        let infection = sample.infect(&mut machine)?;
        let report = GhostBuster::new().scan_files_inside(&mut machine)?;
        let detected: Vec<String> = report
            .net_detections()
            .iter()
            .map(|d| d.detail.clone())
            .collect();
        let expected: Vec<String> = infection
            .hidden_files
            .iter()
            .map(|p| p.to_string())
            .collect();
        rows.push(detection_row(&infection, expected, detected));
    }
    Ok(rows)
}

/// Figure 4: hidden-ASEP-hook detection across the six Registry-hiding
/// samples.
///
/// # Errors
///
/// Propagates machine/scan failures.
pub fn fig4_hidden_asep() -> Result<Vec<DetectionRow>, NtStatus> {
    let mut rows = Vec::new();
    for (i, sample) in registry_hiding_corpus().into_iter().enumerate() {
        let mut machine = victim_machine(200 + i as u64)?;
        let infection = sample.infect(&mut machine)?;
        let report = GhostBuster::new().scan_registry_inside(&mut machine)?;
        let detected: Vec<String> = report
            .net_detections()
            .iter()
            .map(|d| d.detail.clone())
            .collect();
        rows.push(detection_row(
            &infection,
            infection.hidden_asep_entries.clone(),
            detected,
        ));
    }
    Ok(rows)
}

/// One row of Figure 6, carrying both normal- and advanced-mode outcomes.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Sample name.
    pub ghostware: String,
    /// Ground truth: hidden processes and modules.
    pub expected: Vec<String>,
    /// Findings in normal mode (APL truth).
    pub normal_detected: Vec<String>,
    /// Findings in advanced mode (thread-table truth).
    pub advanced_detected: Vec<String>,
    /// Whether normal mode suffices.
    pub normal_complete: bool,
    /// Whether advanced mode catches everything.
    pub advanced_complete: bool,
}

/// Figure 6: hidden-process/module detection; FU requires advanced mode.
///
/// # Errors
///
/// Propagates machine/scan failures.
pub fn fig6_hidden_procs() -> Result<Vec<Fig6Row>, NtStatus> {
    let mut rows = Vec::new();
    for (i, sample) in process_hiding_corpus().into_iter().enumerate() {
        let mut expected_all = Vec::new();
        let collect = |mode_advanced: bool| -> Result<(Vec<String>, Infection), NtStatus> {
            let mut machine = victim_machine(300 + i as u64)?;
            let infection = sample.infect(&mut machine)?;
            let gb = if mode_advanced {
                GhostBuster::new().with_advanced(AdvancedSource::ThreadTable)
            } else {
                GhostBuster::new()
            };
            let procs = gb.scan_processes_inside(&mut machine)?;
            let modules = gb.scan_modules_inside(&mut machine)?;
            let detected: Vec<String> = procs
                .net_detections()
                .iter()
                .chain(modules.net_detections().iter())
                .map(|d| d.detail.clone())
                .collect();
            Ok((detected, infection))
        };
        let (normal_detected, infection) = collect(false)?;
        let (advanced_detected, _) = collect(true)?;
        expected_all.extend(infection.hidden_process_names.iter().cloned());
        expected_all.extend(infection.hidden_module_names.iter().cloned());
        expected_all.sort();
        expected_all.dedup();
        let normal_complete = expected_all
            .iter()
            .all(|e| expected_matches(&normal_detected, e));
        let advanced_complete = expected_all
            .iter()
            .all(|e| expected_matches(&advanced_detected, e));
        rows.push(Fig6Row {
            ghostware: infection.ghostware,
            expected: expected_all,
            normal_detected,
            advanced_detected,
            normal_complete,
            advanced_complete,
        });
    }
    Ok(rows)
}

/// Figures 2 and 5: the technique-per-sample matrix (the diagrams' content).
///
/// # Errors
///
/// Propagates machine/infection failures.
pub fn technique_matrix() -> Result<Vec<(String, Vec<String>)>, NtStatus> {
    let mut rows = Vec::new();
    for (i, sample) in file_hiding_corpus()
        .into_iter()
        .chain(process_hiding_corpus())
        .enumerate()
    {
        let mut machine = victim_machine(400 + i as u64)?;
        let infection = sample.infect(&mut machine)?;
        let row = (
            infection.ghostware.clone(),
            infection.techniques.iter().map(|t| t.to_string()).collect(),
        );
        if !rows
            .iter()
            .any(|(name, _): &(String, Vec<String>)| name == &row.0)
        {
            rows.push(row);
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_all_ten_samples_fully_detected() {
        let rows = fig3_hidden_files().unwrap();
        assert_eq!(rows.len(), 10);
        for row in &rows {
            assert!(row.complete, "{} incomplete: {:?}", row.ghostware, row);
            assert_eq!(
                row.extras, 0,
                "{} extras: {:?}",
                row.ghostware, row.detected
            );
        }
    }

    #[test]
    fn fig4_all_six_samples_fully_detected() {
        let rows = fig4_hidden_asep().unwrap();
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.complete, "{} incomplete: {row:?}", row.ghostware);
            assert_eq!(row.extras, 0, "{}", row.ghostware);
        }
    }

    #[test]
    fn fig6_fu_needs_advanced_everyone_else_does_not() {
        let rows = fig6_hidden_procs().unwrap();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.advanced_complete, "{} advanced", row.ghostware);
            if row.ghostware == "FU" {
                assert!(!row.normal_complete, "FU must evade normal mode");
            } else {
                assert!(row.normal_complete, "{} normal", row.ghostware);
            }
        }
    }

    #[test]
    fn technique_matrix_covers_the_corpus() {
        let rows = technique_matrix().unwrap();
        assert!(rows.len() >= 12);
    }
}
