//! The false-positive results: zero inside the box, a handful outside,
//! one Registry corruption case (Sections 2–3).

use strider_ghostbuster::{GhostBuster, NoiseClass};
use strider_hive::{Value, ValueData};
use strider_nt_core::{NtPath, NtStatus};
use strider_workload::{paper_profiles, standard_lab_machine, WorkloadSpec};

/// One machine's false-positive counts across scan flows.
#[derive(Debug, Clone)]
pub struct FpRow {
    /// Machine name.
    pub machine: String,
    /// Whether CCM runs on the machine.
    pub ccm: bool,
    /// Inside-the-box file-scan FPs (paper: zero).
    pub inside_files: usize,
    /// Inside-the-box process-scan FPs (paper: zero).
    pub inside_processes: usize,
    /// Outside-the-box file-scan FPs before manual filtering.
    pub outside_files_raw: usize,
    /// Outside FPs surviving the noise classifier (paper: all filtered).
    pub outside_files_after_filter: usize,
    /// VM-flow FPs (paper: zero — same image, no gap).
    pub vm_files: usize,
}

/// Runs the clean-machine FP experiment on the paper's eight machine
/// profiles: warm the machine up, scan inside, run the WinPE flow with a
/// boot-sized gap, and run the VM flow.
///
/// # Errors
///
/// Propagates scan failures.
pub fn fp_rows() -> Result<Vec<FpRow>, NtStatus> {
    let mut rows = Vec::new();
    for (i, profile) in paper_profiles().into_iter().enumerate() {
        let mut m = standard_lab_machine(
            profile.name,
            &WorkloadSpec::small(500 + i as u64),
            profile.ccm_enabled,
        )?;
        // Each machine has been up a different amount of time.
        m.tick(311 + 67 * i as u64);

        let gb = GhostBuster::new();
        let inside_files = gb.scan_files_inside(&mut m)?.detections.len();
        let inside_processes = gb.scan_processes_inside(&mut m)?.detections.len();

        // WinPE flow with a boot-sized gap (1.5–3 simulated minutes).
        let reboot = 90 + 12 * i as u64;
        let sweep = gb.winpe_outside_sweep(&mut m, reboot)?;
        let outside_files_raw = sweep.files.detections.len();
        let outside_files_after_filter = sweep.files.net_detections().len();

        let vm_files = gb.vm_outside_files(&mut m)?.detections.len();

        rows.push(FpRow {
            machine: profile.name.to_string(),
            ccm: profile.ccm_enabled,
            inside_files,
            inside_processes,
            outside_files_raw,
            outside_files_after_filter,
            vm_files,
        });
    }
    Ok(rows)
}

/// The CCM remediation experiment: the noisy machine re-run with CCM
/// disabled, as the paper did (7 FPs → 2).
///
/// # Errors
///
/// Propagates scan failures.
pub fn ccm_remediation() -> Result<(usize, usize), NtStatus> {
    let run = |ccm: bool| -> Result<usize, NtStatus> {
        let mut m = standard_lab_machine("m-ccm", &WorkloadSpec::small(77), ccm)?;
        m.tick(400);
        let sweep = GhostBuster::new().winpe_outside_sweep(&mut m, 150)?;
        Ok(sweep.files.detections.len())
    };
    Ok((run(true)?, run(false)?))
}

/// The Registry corruption FP (Section 3): corrupted `AppInit_DLLs` data
/// appears in the raw parse but not in RegEdit; the export/delete/re-import
/// repair clears it.
///
/// # Errors
///
/// Propagates scan failures.
pub fn registry_corruption_fp() -> Result<(usize, usize, usize), NtStatus> {
    let mut m = standard_lab_machine("m-corrupt", &WorkloadSpec::small(88), false)?;
    let windows_key: NtPath = "HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\Windows"
        .parse()
        .expect("static");
    let mut v = Value::new("AppInit_DLLs", ValueData::sz("stale-bytes.dll"));
    v.corrupt_data = true;
    m.registry_mut()
        .set_value_raw(&windows_key, v)
        .map_err(|_| NtStatus::ObjectNameNotFound)?;

    let gb = GhostBuster::new();
    let before = gb.scan_registry_inside(&mut m)?;
    let raw_fps = before.detections.len();
    let classified = before
        .detections
        .iter()
        .filter(|d| d.noise == NoiseClass::LikelyCorruption)
        .count();

    // The paper's fix: export the parent key (sans corrupted data), delete
    // it, re-import. Net effect: the value is rewritten healthy.
    m.registry_mut()
        .set_value(&windows_key, "AppInit_DLLs", ValueData::sz(""))
        .map_err(|_| NtStatus::ObjectNameNotFound)?;
    let after = gb.scan_registry_inside(&mut m)?.detections.len();
    Ok((raw_fps, classified, after))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inside_and_vm_scans_have_zero_fps_everywhere() {
        for row in fp_rows().unwrap() {
            assert_eq!(row.inside_files, 0, "{}", row.machine);
            assert_eq!(row.inside_processes, 0, "{}", row.machine);
            assert_eq!(row.vm_files, 0, "{}", row.machine);
        }
    }

    #[test]
    fn outside_fps_are_small_and_fully_filterable() {
        let rows = fp_rows().unwrap();
        for row in &rows {
            assert_eq!(
                row.outside_files_after_filter, 0,
                "{}: residue after filtering",
                row.machine
            );
            let cap = if row.ccm { 12 } else { 6 };
            assert!(
                row.outside_files_raw <= cap,
                "{}: {} raw FPs",
                row.machine,
                row.outside_files_raw
            );
        }
        // At least one machine should actually experience churn.
        assert!(rows.iter().any(|r| r.outside_files_raw > 0));
        // CCM machines churn more than the quietest machine.
        let max_ccm = rows
            .iter()
            .filter(|r| r.ccm)
            .map(|r| r.outside_files_raw)
            .max()
            .unwrap();
        let min_other = rows
            .iter()
            .filter(|r| !r.ccm)
            .map(|r| r.outside_files_raw)
            .min()
            .unwrap();
        assert!(max_ccm > min_other);
    }

    #[test]
    fn ccm_disable_reduces_fps() {
        let (with_ccm, without) = ccm_remediation().unwrap();
        assert!(
            with_ccm > without,
            "disabling CCM must reduce FPs ({with_ccm} -> {without})"
        );
        assert!(
            with_ccm >= 5,
            "the noisy machine approximates 7: {with_ccm}"
        );
        assert!(without <= 4, "after disabling: {without}");
    }

    #[test]
    fn registry_corruption_is_one_classified_fp_repairable() {
        let (raw, classified, after) = registry_corruption_fp().unwrap();
        assert_eq!(raw, 1);
        assert_eq!(classified, 1);
        assert_eq!(after, 0);
    }
}
