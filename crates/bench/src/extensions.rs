//! The Section 5 extension experiments: targeting attacks vs the injected
//! scan, the eTrust dilemma, the hidden-count anomaly, remediation
//! (the "Hacker Defender in 5 seconds" story), and the VM flow.

use crate::victim_machine;
use strider_ghostbuster::{
    injected_sweep, AsepMonitor, DriverScanner, FileScanner, GhostBuster, SignatureScanner,
};
use strider_ghostware::prelude::{ScannerAwareHider, UtilityTargetedHider};
use strider_ghostware::{AdsHider, Berbew, FileHider, Fu, Ghostware, HackerDefender};
use strider_nt_core::NtStatus;
use strider_workload::{paper_profiles, CostModel};

/// Outcomes of the targeting-attack experiment.
#[derive(Debug, Clone)]
pub struct TargetingRow {
    /// The attack.
    pub attack: String,
    /// Did the plain GhostBuster EXE see anything?
    pub plain_detects: bool,
    /// Did the injected per-process sweep see it?
    pub injected_detects: bool,
    /// How many processes were being lied to.
    pub lied_to_count: usize,
}

/// Runs both Section 5 targeting attacks against the plain tool and the
/// injected sweep.
///
/// # Errors
///
/// Propagates scan failures.
pub fn targeting_rows() -> Result<Vec<TargetingRow>, NtStatus> {
    let mut rows = Vec::new();
    for (name, sample) in [
        (
            "hide only from Task Manager/tlist/Explorer",
            Box::new(UtilityTargetedHider::default()) as Box<dyn Ghostware>,
        ),
        (
            "hide from everyone except ghostbuster.exe",
            Box::new(ScannerAwareHider::default()),
        ),
    ] {
        let mut m = victim_machine(600)?;
        m.spawn_process("taskmgr.exe", "C:\\windows\\system32\\taskmgr.exe")?;
        sample.infect(&mut m)?;
        let plain = GhostBuster::new().inside_sweep(&mut m)?;
        let injected = injected_sweep(&m)?;
        rows.push(TargetingRow {
            attack: name.to_string(),
            plain_detects: plain.is_infected(),
            injected_detects: injected.is_infected(),
            lied_to_count: injected.lied_to().len(),
        });
    }
    Ok(rows)
}

/// The eTrust dilemma: (signature hits while hiding, diff findings while
/// hiding, signature hits after the rootkit stops hiding).
///
/// # Errors
///
/// Propagates scan failures.
pub fn etrust_dilemma() -> Result<(usize, usize, usize), NtStatus> {
    let mut m = victim_machine(601)?;
    HackerDefender::default().infect(&mut m)?;
    let inocit = m.ensure_process("InocIT.exe", "C:\\Program Files\\eTrust\\InocIT.exe")?;
    let scanner = SignatureScanner::with_default_database();

    let hits_hiding = scanner.scan(&m, &inocit)?.len();
    // Inject the GhostBuster diff into the scanner's own process.
    let gb = GhostBuster::new();
    let files = gb.file_scanner();
    let truth = files.low_scan(&m)?;
    let lie = files.high_scan(&m, &inocit, strider_winapi::ChainEntry::Win32)?;
    let diff_findings = files.diff(&truth, &lie).net_detections().len();

    m.remove_software("HackerDefender");
    let hits_not_hiding = scanner.scan(&m, &inocit)?.len();
    Ok((hits_hiding, diff_findings, hits_not_hiding))
}

/// The mass-hiding anomaly: hiding many innocent files alongside the
/// ghostware only makes the signal louder. Returns the finding count.
///
/// # Errors
///
/// Propagates scan failures.
pub fn mass_hiding_anomaly() -> Result<usize, NtStatus> {
    let mut m = victim_machine(602)?;
    // A file hider configured to hide large innocent trees plus the payload.
    let hider = FileHider::hide_folders_xp().with_targets(vec![
        "C:\\Program Files".to_ascii_lowercase(),
        "C:\\Documents and Settings".to_ascii_lowercase(),
    ]);
    hider.infect(&mut m)?;
    let report = GhostBuster::new().scan_files_inside(&mut m)?;
    Ok(report.net_detections().len())
}

/// The end-to-end remediation story (paper, Conclusions): detect Hacker
/// Defender via the process diff, locate its hidden ASEP hooks, delete
/// them, reboot, and confirm the files are visible for deletion.
#[derive(Debug, Clone)]
pub struct RemediationOutcome {
    /// Hidden processes found (detection within "5 seconds").
    pub hidden_processes: usize,
    /// Estimated detection time on the paper's fastest machine, seconds.
    pub detect_seconds: f64,
    /// Hidden hooks located (within "one minute").
    pub hooks_located: usize,
    /// Estimated hook-location time, seconds.
    pub locate_seconds: f64,
    /// Hooks removed.
    pub hooks_removed: usize,
    /// Files visible after reboot (ready for deletion).
    pub files_visible_after_reboot: bool,
    /// Residual findings after cleanup.
    pub residual: usize,
}

/// Runs the remediation flow.
///
/// # Errors
///
/// Propagates scan failures.
pub fn remediation_flow() -> Result<RemediationOutcome, NtStatus> {
    let mut m = victim_machine(603)?;
    HackerDefender::default().infect(&mut m)?;
    let gb = GhostBuster::new();
    let model = CostModel::new(paper_profiles()[0].clone());

    // Step 1: hidden-process detection (seconds).
    let procs = gb.scan_processes_inside(&mut m)?;
    let hidden_processes = procs.net_detections().len();

    // Step 2: locate hidden ASEP hooks (tens of seconds).
    let hooks = gb.hidden_hooks(&mut m)?;
    let hooks_located = hooks.len();

    // Step 3: delete the keys to disable the malware across reboots.
    let hooks_removed = gb.remediate_hooks(&mut m, &hooks);

    // Step 4: reboot. Without its ASEP hooks the rootkit does not restart:
    // its hooks, filters, and process are gone.
    m.remove_software("HackerDefender");
    for pid in m.kernel().find_by_name("hxdef100.exe") {
        m.kernel_mut()
            .kill(pid)
            .map_err(|_| NtStatus::NoSuchProcess)?;
    }

    // Step 5: the files are now visible; delete them.
    let ctx = gb.enter(&mut m)?;
    let visible = gb
        .file_scanner()
        .high_scan(&m, &ctx, strider_winapi::ChainEntry::Win32)?;
    let files_visible_after_reboot = visible.iter().any(|(_, f)| f.path.contains("hxdef100.exe"));
    for path in [
        "C:\\windows\\system32\\hxdef100.exe",
        "C:\\windows\\system32\\hxdef100.ini",
    ] {
        m.volume_mut()
            .remove_file(&path.parse().expect("static"))
            .map_err(|_| NtStatus::ObjectNameNotFound)?;
    }
    let residual = gb.inside_sweep(&mut m)?.suspicious_count();

    Ok(RemediationOutcome {
        hidden_processes,
        detect_seconds: model.process_scan_seconds(),
        hooks_located,
        locate_seconds: model.registry_scan_seconds(),
        hooks_removed,
        files_visible_after_reboot,
        residual,
    })
}

/// Future-work features from the paper's conclusion, implemented and
/// measured: ADS detection, the AskStrider driver cross-check, and the
/// Gatekeeper ASEP monitor's complementarity with the cross-view diff.
#[derive(Debug, Clone)]
pub struct FutureWorkOutcome {
    /// ADS streams found by the stream-aware scan (plain scan finds 0).
    pub ads_findings: usize,
    /// Drivers flagged on a Hacker Defender machine (expect hxdefdrv).
    pub hxdef_driver_findings: Vec<String>,
    /// Drivers flagged on an FU machine (expect msdirectx).
    pub fu_driver_findings: Vec<String>,
    /// The non-hiding Berbew hook: (asep-monitor additions, cross-view
    /// registry findings) — expect (1, 0), the complementarity claim.
    pub berbew_monitor_vs_crossview: (usize, usize),
}

/// Runs the future-work experiments.
///
/// # Errors
///
/// Propagates scan failures.
pub fn futurework_outcome() -> Result<FutureWorkOutcome, NtStatus> {
    // ADS detection.
    let mut m = victim_machine(610)?;
    AdsHider::default().infect(&mut m)?;
    let gb = GhostBuster::new();
    let ctx = gb.enter(&mut m)?;
    let ads_findings = FileScanner::new()
        .with_ads_detection()
        .scan_inside(&m, &ctx)?
        .net_detections()
        .len();

    // AskStrider driver cross-check.
    let mut m = victim_machine(611)?;
    HackerDefender::default().infect(&mut m)?;
    let ctx = m.ensure_process("askstrider.exe", "C:\\tools\\askstrider.exe")?;
    let hxdef_driver_findings = DriverScanner::new()
        .scan(&m, &ctx)?
        .into_iter()
        .map(|f| f.driver)
        .collect();
    let mut m = victim_machine(612)?;
    Fu::default().infect(&mut m)?;
    let ctx = m.ensure_process("askstrider.exe", "C:\\tools\\askstrider.exe")?;
    let fu_driver_findings = DriverScanner::new()
        .scan(&m, &ctx)?
        .into_iter()
        .map(|f| f.driver)
        .collect();

    // Gatekeeper ASEP monitor vs cross-view on a non-hiding hook.
    let mut m = victim_machine(613)?;
    let ctx = m.ensure_process("gatekeeper.exe", "C:\\tools\\gatekeeper.exe")?;
    let monitor = AsepMonitor::new();
    let baseline = monitor.checkpoint(&m, &ctx);
    Berbew::default().infect(&mut m)?;
    let added = monitor.diff(&m, &ctx, &baseline)?.added.len();
    let crossview = GhostBuster::new()
        .scan_registry_inside(&mut m)?
        .net_detections()
        .len();

    Ok(FutureWorkOutcome {
        ads_findings,
        hxdef_driver_findings,
        fu_driver_findings,
        berbew_monitor_vs_crossview: (added, crossview),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targeting_attacks_beaten_by_injection() {
        for row in targeting_rows().unwrap() {
            assert!(
                !row.plain_detects,
                "{}: plain tool must be blind",
                row.attack
            );
            assert!(row.injected_detects, "{}", row.attack);
            assert!(row.lied_to_count >= 1, "{}", row.attack);
        }
    }

    #[test]
    fn etrust_dilemma_has_no_escape() {
        let (hits_hiding, diff_findings, hits_not_hiding) = etrust_dilemma().unwrap();
        assert_eq!(hits_hiding, 0, "hiding blinds the signature scanner");
        assert!(diff_findings >= 3, "the injected diff catches it");
        assert!(hits_not_hiding >= 2, "not hiding exposes it to signatures");
    }

    #[test]
    fn mass_hiding_is_a_louder_anomaly() {
        let count = mass_hiding_anomaly().unwrap();
        assert!(count > 100, "hiding whole trees screams: {count}");
    }

    #[test]
    fn futurework_features_behave_as_documented() {
        let out = futurework_outcome().unwrap();
        assert_eq!(out.ads_findings, 2);
        assert!(out.hxdef_driver_findings.iter().any(|d| d == "hxdefdrv"));
        assert!(out.fu_driver_findings.iter().any(|d| d == "msdirectx"));
        assert_eq!(out.berbew_monitor_vs_crossview, (1, 0));
    }

    #[test]
    fn remediation_flow_completes() {
        let out = remediation_flow().unwrap();
        assert_eq!(out.hidden_processes, 1);
        assert!(out.detect_seconds <= 5.0, "{}", out.detect_seconds);
        assert_eq!(out.hooks_located, 2);
        assert!(out.locate_seconds <= 60.0);
        assert_eq!(out.hooks_removed, 2);
        assert!(out.files_visible_after_reboot);
        assert_eq!(out.residual, 0);
    }
}
