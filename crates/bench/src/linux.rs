//! The Section 5 Linux/Unix experiments.

use strider_ghostbuster::UnixGhostBuster;
use strider_ghostware::unix::{unix_corpus, UnixRootkit};
use strider_unixfs::UnixMachine;
use strider_workload::populate_unix;

/// One Unix rootkit's detection outcome.
#[derive(Debug, Clone)]
pub struct LinuxRow {
    /// Rootkit name.
    pub rootkit: String,
    /// Whether hiding is LKM-based.
    pub uses_lkm: bool,
    /// Hidden paths (ground truth).
    pub expected: Vec<String>,
    /// Whether the inside `ls` vs `echo *` check caught it.
    pub inside_detects: bool,
    /// Whether the clean-boot outside diff caught everything.
    pub outside_complete: bool,
    /// Noise findings in the outside diff (paper: ≤ 4, temp/log files).
    pub outside_noise: usize,
}

/// Runs the full Unix corpus with daemon churn during the reboot gap.
pub fn linux_rows() -> Vec<LinuxRow> {
    let mut rows = Vec::new();
    for rk in unix_corpus() {
        let mut m = UnixMachine::with_base_system("ux");
        populate_unix(&mut m, 42, 400);
        m.tick(30);
        let infection = rk.infect(&mut m);
        let gb = UnixGhostBuster::new();

        let inside_detects = gb.inside_diff(&m).is_infected();

        let lie = m.ls_scan_all();
        m.tick(150); // reboot into the live CD
        let outside = gb.outside_diff(&m, &lie);
        let net: Vec<&str> = outside
            .net_detections()
            .iter()
            .map(|d| d.path.as_str())
            .collect();
        let outside_complete = infection
            .hidden_paths
            .iter()
            .all(|p| net.contains(&p.as_str()));
        rows.push(LinuxRow {
            rootkit: infection.rootkit,
            uses_lkm: infection.uses_lkm,
            expected: infection.hidden_paths,
            inside_detects,
            outside_complete,
            outside_noise: outside.noise_detections().len(),
        });
    }
    rows
}

/// Detection of a rootkit by each view on the same machine — the
/// `ls`-vs-`echo *` asymmetry row for the tables.
pub fn t0rnkit_view_matrix() -> (bool, bool) {
    let mut m = UnixMachine::with_base_system("ux");
    let rk = strider_ghostware::unix::T0rnkit;
    let inf = rk.infect(&mut m);
    let ls = m.ls_scan_all();
    let glob = m.glob_scan_all();
    let hidden_from_ls = inf.hidden_paths.iter().all(|p| !ls.contains(p));
    let visible_to_glob = inf.hidden_paths.iter().all(|p| glob.contains(p));
    (hidden_from_ls, visible_to_glob)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_rootkits_detected_outside_with_bounded_noise() {
        let rows = linux_rows();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.outside_complete, "{}", r.rootkit);
            assert!(
                r.outside_noise <= 4,
                "{}: paper reports four or fewer FPs, got {}",
                r.rootkit,
                r.outside_noise
            );
        }
    }

    #[test]
    fn only_the_trojan_binary_is_caught_inside() {
        let rows = linux_rows();
        for r in &rows {
            if r.uses_lkm {
                assert!(!r.inside_detects, "{}: LKM lies to both views", r.rootkit);
            } else {
                assert!(r.inside_detects, "{}: ls vs echo * disagree", r.rootkit);
            }
        }
    }

    #[test]
    fn t0rnkit_asymmetry() {
        let (hidden_from_ls, visible_to_glob) = t0rnkit_view_matrix();
        assert!(hidden_from_ls);
        assert!(visible_to_glob);
    }
}
