//! Ablations of the design decisions DESIGN.md calls out.

use crate::victim_machine;
use std::sync::Arc;
use strider_ghostbuster::{AdvancedSource, GhostBuster, OutsideRegistryMode};
use strider_ghostware::{Ghostware, HackerDefender};
use strider_nt_core::{NtPath, NtStatus};
use strider_winapi::{ChainEntry, HiveCopyTamper, Machine};

/// Ablation 2: false positives as a function of the scan-pair time gap.
/// Returns `(gap_ticks, raw_fp_count)` pairs on a clean, churning machine.
///
/// # Errors
///
/// Propagates scan failures.
pub fn timegap_fp_curve(gaps: &[u64]) -> Result<Vec<(u64, usize)>, NtStatus> {
    let mut out = Vec::new();
    for &gap in gaps {
        let mut m = victim_machine(800 + gap)?;
        m.tick(367); // warm-up
        let gb = GhostBuster::new();
        let ctx = gb.enter(&mut m)?;
        let lie = gb.file_scanner().high_scan(&m, &ctx, ChainEntry::Win32)?;
        m.tick(gap);
        let image = m.snapshot_disk()?;
        let truth = gb.file_scanner().outside_scan(&image)?;
        let report = gb.file_scanner().diff(&truth, &lie);
        out.push((gap, report.detections.len()));
    }
    Ok(out)
}

/// Ablation 3: which low-level structure is "low enough" against DKOM.
/// Returns, per truth source, whether the FU-hidden process is found.
///
/// # Errors
///
/// Propagates scan failures.
pub fn advanced_source_matrix() -> Result<Vec<(String, bool)>, NtStatus> {
    let mut results = Vec::new();
    for (label, advanced) in [
        ("Active Process List", None),
        ("thread table", Some(AdvancedSource::ThreadTable)),
        ("handle table", Some(AdvancedSource::HandleTable)),
    ] {
        let mut m = victim_machine(820)?;
        strider_ghostware::Fu::default().infect(&mut m)?;
        let gb = match advanced {
            Some(src) => GhostBuster::new().with_advanced(src),
            None => GhostBuster::new(),
        };
        let report = gb.scan_processes_inside(&mut m)?;
        let found = report
            .net_detections()
            .iter()
            .any(|d| d.detail.contains("fu_payload.exe"));
        results.push((label.to_string(), found));
    }
    Ok(results)
}

/// A hypothetical next-generation rootkit that tampers with the inside
/// hive-copy step, scrubbing its own service keys out of the copied bytes
/// by re-serializing a doctored tree.
struct HiveScrubber;

impl HiveCopyTamper for HiveScrubber {
    fn tamper(&self, mount: &NtPath, bytes: Vec<u8>) -> Vec<u8> {
        if !mount.to_string().eq_ignore_ascii_case("HKLM\\SYSTEM") {
            return bytes;
        }
        // Parse the copy, drop the rootkit's keys, re-serialize.
        let Ok(raw) = strider_hive::RawHive::parse(&bytes) else {
            return bytes;
        };
        fn rebuild(v: &strider_hive::RawValue) -> strider_hive::Value {
            use strider_hive::ValueData;
            use strider_nt_core::NtString;
            let units = |d: &[u8]| -> Vec<u16> {
                d.chunks_exact(2)
                    .map(|c| u16::from_le_bytes([c[0], c[1]]))
                    .collect()
            };
            let data = match v.type_code {
                1 => ValueData::Sz(NtString::from_units(&units(&v.data))),
                2 => ValueData::ExpandSz(NtString::from_units(&units(&v.data))),
                4 if v.data.len() >= 4 => {
                    ValueData::Dword(u32::from_le_bytes(v.data[..4].try_into().expect("4 bytes")))
                }
                7 => ValueData::MultiSz(
                    units(&v.data)
                        .split(|&u| u == 0)
                        .filter(|s| !s.is_empty())
                        .map(NtString::from_units)
                        .collect(),
                ),
                _ => ValueData::Binary(v.data.clone()),
            };
            strider_hive::Value::new(v.name.clone(), data)
        }
        fn convert(k: &strider_hive::RawKey) -> strider_hive::Key {
            let mut out = strider_hive::Key::new(k.name.clone());
            out.timestamp = k.timestamp;
            for v in &k.values {
                out.values.push(rebuild(v));
            }
            for sk in &k.subkeys {
                if sk
                    .name
                    .to_win32_lossy()
                    .to_ascii_lowercase()
                    .contains("hackerdefender")
                {
                    continue; // scrubbed
                }
                out.subkeys.push(convert(sk));
            }
            out
        }
        let root = convert(raw.root());
        let hive =
            strider_hive::Hive::from_root(mount.clone(), "C:\\x".parse().expect("static"), root);
        hive.to_bytes()
    }
}

/// Ablation 1: truth vs truth-approximation. A rootkit that tampers with
/// the inside hive copy defeats the inside-the-box Registry scan, while the
/// outside-the-box scan of the real disk bytes still catches it. Returns
/// `(inside_findings, outside_findings)`.
///
/// # Errors
///
/// Propagates scan failures.
pub fn low_scan_interference() -> Result<(usize, usize), NtStatus> {
    let mut m = victim_machine(830)?;
    HackerDefender::default().infect(&mut m)?;
    m.add_hive_tamper("HackerDefenderNG", Arc::new(HiveScrubber));

    let gb = GhostBuster::new();
    let inside = gb.scan_registry_inside(&mut m)?;
    let inside_hits = inside
        .net_detections()
        .iter()
        .filter(|d| d.detail.contains("HackerDefender"))
        .count();

    let ctx = gb.enter(&mut m)?;
    let lie = gb.registry_scanner().high_scan(&m, &ctx, ChainEntry::Win32);
    let image = m.snapshot_disk()?;
    let truth = gb
        .registry_scanner()
        .outside_scan(&image, OutsideRegistryMode::MountedWin32)?;
    let outside = gb.registry_scanner().diff(&truth, &lie);
    let outside_hits = outside
        .net_detections()
        .iter()
        .filter(|d| d.detail.contains("HackerDefender"))
        .count();
    Ok((inside_hits, outside_hits))
}

/// Convenience: infect-and-sweep used by the dump-scrub ablation. Returns
/// whether the outside dump flow finds the FU payload, with and without the
/// scrubbing attack.
///
/// # Errors
///
/// Propagates scan failures.
pub fn dump_scrub_matrix() -> Result<(bool, bool), NtStatus> {
    let run = |scrub: bool| -> Result<bool, NtStatus> {
        let mut m = victim_machine(840)?;
        strider_ghostware::Fu::default().infect(&mut m)?;
        if scrub {
            let pid = m.kernel().find_by_name("fu_payload.exe")[0];
            m.kernel_mut()
                .register_dump_scrubber(strider_kernel::DumpScrub {
                    pids: vec![pid],
                    module_names: Vec::new(),
                });
        }
        let gb = GhostBuster::new().with_advanced(AdvancedSource::ThreadTable);
        let ctx = gb.enter(&mut m)?;
        let lie = gb
            .process_scanner()
            .high_scan(&m, &ctx, ChainEntry::Win32)?;
        let dump = strider_kernel::MemoryDump::parse(&m.kernel().crash_dump())
            .map_err(|e| NtStatus::CorruptStructure(e.to_string()))?;
        let truth = gb.process_scanner().outside_scan(&dump, true);
        let report = gb.process_scanner().diff(&truth, &lie);
        Ok(report
            .net_detections()
            .iter()
            .any(|d| d.detail.contains("fu_payload.exe")))
    };
    Ok((run(false)?, run(true)?))
}

/// Runs an inside sweep on an infected machine — shared by criterion
/// benches.
///
/// # Errors
///
/// Propagates scan failures.
pub fn sweep_infected(machine: &mut Machine) -> Result<usize, NtStatus> {
    Ok(GhostBuster::new().inside_sweep(machine)?.suspicious_count())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_curve_grows_with_gap() {
        let curve = timegap_fp_curve(&[0, 150, 600]).unwrap();
        assert_eq!(curve[0].1, 0, "zero gap, zero FPs (the VM flow's point)");
        assert!(curve[2].1 >= curve[1].1);
        assert!(curve[2].1 > curve[0].1);
    }

    #[test]
    fn only_advanced_sources_beat_dkom() {
        let matrix = advanced_source_matrix().unwrap();
        assert_eq!(matrix[0], ("Active Process List".to_string(), false));
        assert_eq!(matrix[1], ("thread table".to_string(), true));
        assert_eq!(matrix[2], ("handle table".to_string(), true));
    }

    #[test]
    fn hive_copy_tampering_beats_inside_but_not_outside() {
        let (inside, outside) = low_scan_interference().unwrap();
        assert_eq!(inside, 0, "the tampered copy hides the keys");
        assert_eq!(outside, 2, "the real disk bytes still show both hooks");
    }

    #[test]
    fn dump_scrubbing_beats_the_dump_flow() {
        let (clean_dump, scrubbed_dump) = dump_scrub_matrix().unwrap();
        assert!(clean_dump);
        assert!(!scrubbed_dump);
    }
}
