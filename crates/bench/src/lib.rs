//! Experiment drivers reproducing every table and figure of the paper.
//!
//! Each `figN_results` / `*_results` function runs one experiment
//! end-to-end on freshly-built simulated machines and returns structured
//! rows; the `paper_tables` binary renders them in the paper's layout, and
//! the benches in `benches/` time the underlying scans on the in-tree
//! harness (`strider_support::bench`, a Criterion-shaped replacement that
//! writes `BENCH_<group>.json` at the workspace root). See `EXPERIMENTS.md`
//! at the workspace root for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod baselines;
pub mod extensions;
pub mod figures;
pub mod fp;
pub mod linux;
pub mod timing;

use strider_nt_core::NtStatus;
use strider_winapi::Machine;
use strider_workload::{standard_lab_machine, WorkloadSpec};

/// Builds the standard victim machine used across experiments.
///
/// # Errors
///
/// Propagates machine-construction failures.
pub fn victim_machine(seed: u64) -> Result<Machine, NtStatus> {
    standard_lab_machine("victim", &WorkloadSpec::small(seed), false)
}

/// Builds a victim machine of a chosen workload size.
///
/// # Errors
///
/// Propagates machine-construction failures.
pub fn victim_machine_sized(spec: &WorkloadSpec) -> Result<Machine, NtStatus> {
    standard_lab_machine("victim", spec, false)
}

/// Renders a row-oriented table with a header.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:<width$}", width = widths[i]))
        .collect();
    out.push_str(&header_line.join(" | "));
    out.push('\n');
    out.push_str(&"-".repeat(header_line.join(" | ").len()));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        out.push_str(&line.join(" | "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "demo",
            &["a", "bb"],
            &[
                vec!["x".into(), "y".into()],
                vec!["longer".into(), "z".into()],
            ],
        );
        assert!(t.contains("== demo =="));
        assert!(t.contains("longer | z"));
    }

    #[test]
    fn victim_machine_builds() {
        let m = victim_machine(1).unwrap();
        assert!(m.volume().record_count() > 100);
    }
}
