//! Continuous sweep monitoring: scheduled re-sweeps, rolling metric
//! series, and declarative alerting against a recorded baseline.
//!
//! The paper's operational story (§6) is not one sweep but *continuous*
//! cross-view scanning of live machines. [`SweepMonitor`] drives repeated
//! [`GhostBuster::inside_sweep`]s on the policy's [`Clock`] schedule,
//! keeps bounded timestamped [`TimeSeries`] of the key metrics
//! (per-pipeline durations, entry counts, defect/timeout counters,
//! findings), and feeds them through an [`AlertEngine`] after every
//! sweep. The three classic drift checks are *built-in rules* derived
//! from the [`SweepBaseline`] and [`MonitorConfig`]:
//!
//! * `new_hidden_resource` — a finding not present at baseline
//!   ([`MonitorIncident::NewHiddenResource`]),
//! * `latency.<pipeline>` — a pipeline running slower than
//!   `baseline * latency_factor + latency_floor_ns`
//!   ([`MonitorIncident::LatencyRegression`]),
//! * `health_downgrade` — a pipeline degrading that was healthy at
//!   baseline ([`MonitorIncident::HealthDowngrade`]),
//! * `evasion_suspected` — the sweep's quorum passes saw a resource
//!   appear and vanish (`evasion.flicker_score > 0`), the signature of
//!   scan-aware evasive hiding ([`MonitorIncident::EvasionSuspected`]).
//!   Unlike the drift rules this one needs no baseline: an unstable lie
//!   is evidence on its own.
//!
//! Callers can [`add_rule`](SweepMonitor::add_rule) their own
//! [`AlertRule`]s (thresholds, rates, absence, quantiles, with `for_ns`
//! hysteresis) over the same series. Every rule transition lands in the
//! engine's bounded [`AlertLog`] *and* in the sweep's flight recorder,
//! so each typed [`MonitorIncident`] — and any black box — carries the
//! alert trail as evidence. [`SweepMonitor::write_prom`] snapshots the
//! whole plane (telemetry counters/gauges/histograms, series gauges,
//! active alerts) as a Prometheus-text `TELEMETRY_EXPO_<label>.prom`
//! file.
//!
//! Baselines round-trip through [`crate::GhostBuster`]-independent JSON
//! ([`SweepBaseline::serialize`]), so a fleet operator can record one
//! golden sweep per machine and diff against it for months.

use crate::ghostbuster::{GhostBuster, SweepReport};
use crate::policy::{PipelineStatus, SweepHealth};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use strider_nt_core::NtStatus;
use strider_support::alert::{
    AlertCondition, AlertEngine, AlertLog, AlertRule, AlertTransition, Exposition, Severity,
    TimeSeries,
};
use strider_support::obs::{fmt_ns, Clock, FlightDump, Telemetry, TelemetryReport};
use strider_winapi::Machine;

/// The rolling per-sweep series type. The untimestamped `MetricSeries`
/// of earlier releases is now the timestamped
/// [`strider_support::alert::TimeSeries`] — same bounded-ring behaviour
/// and queries, but each sample carries the policy-clock reading it was
/// observed at, which is what windowed alert conditions key on.
pub type MetricSeries = TimeSeries;

/// The four inside-sweep pipelines, in sweep order.
const PIPELINES: [&str; 4] = ["files", "registry", "processes", "modules"];

/// Tuning knobs for a [`SweepMonitor`].
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Gap between scheduled sweeps in [`SweepMonitor::run`], observed on
    /// the policy clock.
    pub interval_ns: u64,
    /// A pipeline regresses when its duration exceeds
    /// `baseline * latency_factor + latency_floor_ns`.
    pub latency_factor: f64,
    /// Absolute slack added to the latency threshold, so a near-zero
    /// baseline (idle machine, fake clock) doesn't flag noise-level
    /// variation as a regression.
    pub latency_floor_ns: u64,
    /// How many sweeps each rolling [`MetricSeries`] retains.
    pub history: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            interval_ns: 1_000_000_000,
            latency_factor: 2.0,
            latency_floor_ns: 100_000,
            history: 64,
        }
    }
}

impl MonitorConfig {
    /// Sets the sweep interval.
    pub fn with_interval_ns(mut self, interval_ns: u64) -> Self {
        self.interval_ns = interval_ns;
        self
    }

    /// Sets the latency-regression threshold (multiplier over baseline
    /// plus absolute floor).
    pub fn with_latency_threshold(mut self, factor: f64, floor_ns: u64) -> Self {
        self.latency_factor = factor;
        self.latency_floor_ns = floor_ns;
        self
    }

    /// Sets how many sweeps of history each metric series keeps.
    pub fn with_history(mut self, history: usize) -> Self {
        self.history = history.max(1);
        self
    }
}

/// A recorded snapshot of one sweep's shape, used as the comparison
/// anchor for every later sweep. Round-trips through JSON
/// ([`SweepBaseline::serialize`] / [`SweepBaseline::deserialize`]) so it
/// can be stored next to the machine it describes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepBaseline {
    /// The machine the baseline sweep observed.
    pub machine: String,
    /// Monitor clock reading when the baseline was recorded.
    pub taken_at_ns: u64,
    /// Wall duration of each pipeline's scan phase.
    pub pipeline_duration_ns: BTreeMap<String, u64>,
    /// Identity keys (`pipeline|identity`) of every suspicious finding
    /// present at baseline — findings outside this set are *new*.
    pub findings: Vec<String>,
    /// Pipelines already degraded at baseline (their later degradation is
    /// not a downgrade).
    pub degraded: Vec<String>,
    /// Suspicious findings at baseline.
    pub suspicious: u64,
    /// Noise-classified findings at baseline.
    pub noise: u64,
}

strider_support::impl_json!(
    struct SweepBaseline {
        machine,
        taken_at_ns,
        pipeline_duration_ns,
        findings,
        degraded,
        suspicious,
        noise,
    }
);

impl SweepBaseline {
    /// Builds a baseline from a finished (telemetry-instrumented) sweep.
    pub fn from_report(machine: &str, taken_at_ns: u64, report: &SweepReport) -> Self {
        SweepBaseline {
            machine: machine.to_string(),
            taken_at_ns,
            pipeline_duration_ns: report.pipeline_durations(),
            findings: finding_keys(report).collect(),
            degraded: degraded_pipelines(&report.health)
                .map(|(name, _)| name.to_string())
                .collect(),
            suspicious: report.suspicious_count() as u64,
            noise: report.noise_count() as u64,
        }
    }

    /// Renders the baseline as a JSON document.
    pub fn serialize(&self) -> String {
        use strider_support::json::ToJson;
        self.to_json().render()
    }

    /// Parses a baseline from [`SweepBaseline::serialize`] output.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a document that is not a baseline.
    pub fn deserialize(text: &str) -> Result<Self, strider_support::json::JsonError> {
        use strider_support::json::{FromJson, JsonValue};
        Self::from_json(&JsonValue::parse(text)?)
    }

    /// Commits the baseline to `store` as a new generation (atomic
    /// temp+rename, previous generation retained as fallback). A baseline
    /// the adversary can truncate mid-write is a baseline the adversary
    /// controls — this is the door that closes it.
    ///
    /// # Errors
    ///
    /// Propagates store I/O errors (including injected crashes).
    pub fn save_to(&self, store: &strider_support::store::RecordStore) -> std::io::Result<u64> {
        store.commit(self.serialize().as_bytes())
    }

    /// Loads the newest recoverable baseline from `store`; `Ok(None)`
    /// means none survived (first run, or damage past every generation).
    ///
    /// # Errors
    ///
    /// Propagates store I/O errors; damaged records fall back silently to
    /// the previous generation.
    pub fn load_from(store: &strider_support::store::RecordStore) -> std::io::Result<Option<Self>> {
        let recovered = store.recover()?;
        for record in recovered.records.iter().rev() {
            if let Some(baseline) = std::str::from_utf8(&record.payload)
                .ok()
                .and_then(|text| Self::deserialize(text).ok())
            {
                return Ok(Some(baseline));
            }
        }
        Ok(None)
    }
}

/// A drift the monitor detected between a sweep and its baseline. Every
/// variant carries the sweep's flight-recorder dump — including the
/// alert transitions of that sweep — so the incident ships its own
/// evidence trail.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorIncident {
    /// A suspicious finding absent from the baseline — on a monitored
    /// machine, the moment a new hidden resource appears.
    NewHiddenResource {
        /// Pipeline that surfaced the finding.
        pipeline: String,
        /// The finding's cross-view identity key.
        identity: String,
        /// Human-readable description.
        detail: String,
        /// Flight-recorder dump of the detecting sweep.
        flight: FlightDump,
    },
    /// A pipeline ran slower than `baseline * factor + floor`.
    LatencyRegression {
        /// The slow pipeline.
        pipeline: String,
        /// Its baseline duration.
        baseline_ns: u64,
        /// Its observed duration this sweep.
        observed_ns: u64,
        /// Flight-recorder dump of the slow sweep.
        flight: FlightDump,
    },
    /// A pipeline degraded that was healthy at baseline.
    HealthDowngrade {
        /// The degraded pipeline.
        pipeline: String,
        /// Its degradation reason.
        reason: String,
        /// Flight-recorder dump ending at the failure.
        flight: FlightDump,
    },
    /// A resource flickered — it was present in some of a hardened
    /// sweep's quorum passes and absent from others. Honest resources
    /// don't do that; scan-aware ghostware toggling its hooks mid-sweep
    /// does. Raised per [`NoiseClass::Flickering`] finding whenever the
    /// `evasion_suspected` built-in rule fires; needs no baseline.
    ///
    /// [`NoiseClass::Flickering`]: crate::report::NoiseClass::Flickering
    EvasionSuspected {
        /// Pipeline whose quorum diff observed the flicker.
        pipeline: String,
        /// The flickering resource's cross-view identity key.
        identity: String,
        /// Human-readable description, including the quorum tally.
        detail: String,
        /// Flight-recorder dump of the detecting sweep.
        flight: FlightDump,
    },
}

impl MonitorIncident {
    /// The pipeline the incident concerns.
    pub fn pipeline(&self) -> &str {
        match self {
            MonitorIncident::NewHiddenResource { pipeline, .. }
            | MonitorIncident::LatencyRegression { pipeline, .. }
            | MonitorIncident::HealthDowngrade { pipeline, .. }
            | MonitorIncident::EvasionSuspected { pipeline, .. } => pipeline,
        }
    }

    /// The flight-recorder dump captured with the incident.
    pub fn flight(&self) -> &FlightDump {
        match self {
            MonitorIncident::NewHiddenResource { flight, .. }
            | MonitorIncident::LatencyRegression { flight, .. }
            | MonitorIncident::HealthDowngrade { flight, .. }
            | MonitorIncident::EvasionSuspected { flight, .. } => flight,
        }
    }
}

impl fmt::Display for MonitorIncident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorIncident::NewHiddenResource {
                pipeline,
                identity,
                detail,
                ..
            } => write!(f, "new hidden resource [{pipeline}] {identity}: {detail}"),
            MonitorIncident::LatencyRegression {
                pipeline,
                baseline_ns,
                observed_ns,
                ..
            } => write!(
                f,
                "latency regression [{pipeline}]: {} at baseline, {} now",
                fmt_ns(*baseline_ns),
                fmt_ns(*observed_ns)
            ),
            MonitorIncident::HealthDowngrade {
                pipeline, reason, ..
            } => write!(f, "health downgrade [{pipeline}]: {reason}"),
            MonitorIncident::EvasionSuspected {
                pipeline,
                identity,
                detail,
                ..
            } => write!(f, "evasion suspected [{pipeline}] {identity}: {detail}"),
        }
    }
}

/// One monitored sweep: the report, when it ran, the alert transitions
/// it triggered, and any incidents it raised against the baseline.
#[derive(Debug, Clone)]
pub struct MonitorObservation {
    /// Monitor clock reading when the sweep started.
    pub at_ns: u64,
    /// The sweep itself (telemetry always attached, re-frozen after
    /// alert evaluation so its flight dump includes this sweep's alert
    /// transitions).
    pub report: SweepReport,
    /// Alert-rule transitions this sweep's evaluation produced.
    pub transitions: Vec<AlertTransition>,
    /// Drift detected against the baseline (empty without a baseline).
    pub incidents: Vec<MonitorIncident>,
}

/// Drives repeated supervised sweeps on a [`Clock`] schedule and watches
/// for sweep-over-sweep drift through an [`AlertEngine`].
///
/// Each sweep runs with a *fresh* [`Telemetry`] registry on the policy's
/// clock, so reports never bleed into each other and every observation
/// carries its own span forest, metrics, and flight-recorder dump. After
/// the sweep, its metrics are folded into the rolling [`TimeSeries`] and
/// the engine evaluates every rule — the built-ins derived from the
/// baseline plus any caller-added rules — recording transitions into the
/// sweep's flight ring *before* the attached report is frozen.
///
/// Recording or installing a baseline, replacing the configuration, or
/// adding a rule rebuilds the engine, which resets alert states (a new
/// comparison anchor means old breach streaks are meaningless).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use strider_ghostbuster::{GhostBuster, ScanPolicy, SweepMonitor};
/// use strider_support::obs::FakeClock;
/// use strider_winapi::Machine;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut machine = Machine::with_base_system("lab-1")?;
/// let policy = ScanPolicy::resilient().with_clock(Arc::new(FakeClock::new()));
/// let mut monitor = SweepMonitor::new(GhostBuster::new().with_policy(policy));
/// monitor.record_baseline(&mut machine)?;
/// let observations = monitor.run(&mut machine, 3)?;
/// assert!(observations.iter().all(|o| o.incidents.is_empty()));
/// assert!(monitor.alerts().firing().is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SweepMonitor {
    detector: GhostBuster,
    config: MonitorConfig,
    baseline: Option<SweepBaseline>,
    series: BTreeMap<String, TimeSeries>,
    custom_rules: Vec<AlertRule>,
    engine: AlertEngine,
    last_telemetry: Option<TelemetryReport>,
    sweeps_run: u64,
}

impl SweepMonitor {
    /// A monitor driving the given detector with default
    /// [`MonitorConfig`]. Any telemetry already attached to the detector
    /// is ignored — the monitor attaches a fresh registry per sweep.
    pub fn new(detector: GhostBuster) -> Self {
        let mut monitor = SweepMonitor {
            detector,
            config: MonitorConfig::default(),
            baseline: None,
            series: BTreeMap::new(),
            custom_rules: Vec::new(),
            engine: AlertEngine::new(),
            last_telemetry: None,
            sweeps_run: 0,
        };
        // The baseline-free built-ins (evasion_suspected) are live from
        // the first sweep, not only once a baseline is recorded.
        monitor.rebuild_engine();
        monitor
    }

    /// Replaces the monitor configuration (rebuilding the built-in rules,
    /// which resets alert states).
    pub fn with_config(mut self, config: MonitorConfig) -> Self {
        self.config = config;
        self.rebuild_engine();
        self
    }

    /// Adds a custom [`AlertRule`] evaluated after every sweep, builder
    /// style. See [`add_rule`](Self::add_rule).
    pub fn with_rule(mut self, rule: AlertRule) -> Self {
        self.add_rule(rule);
        self
    }

    /// Adds a custom [`AlertRule`] evaluated over the monitor's series
    /// after every sweep. A rule sharing a name with an existing rule
    /// (including a built-in) replaces it and resets its state.
    pub fn add_rule(&mut self, rule: AlertRule) {
        if let Some(existing) = self.custom_rules.iter_mut().find(|r| r.name == rule.name) {
            *existing = rule.clone();
        } else {
            self.custom_rules.push(rule.clone());
        }
        self.engine.add_rule(rule);
    }

    /// The active configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// The recorded baseline, if any.
    pub fn baseline(&self) -> Option<&SweepBaseline> {
        self.baseline.as_ref()
    }

    /// Installs a previously recorded (e.g. deserialized) baseline,
    /// rebuilding the built-in rules around it.
    pub fn set_baseline(&mut self, baseline: SweepBaseline) {
        self.baseline = Some(baseline);
        self.rebuild_engine();
    }

    /// How many monitored sweeps have run (baseline excluded).
    pub fn sweeps_run(&self) -> u64 {
        self.sweeps_run
    }

    /// The rolling series for a metric, if it has been observed.
    pub fn series(&self, name: &str) -> Option<&MetricSeries> {
        self.series.get(name)
    }

    /// Names of every metric with a rolling series, sorted.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// The alert engine: rule states, currently-firing rules, and the
    /// bounded transition log.
    pub fn alerts(&self) -> &AlertEngine {
        &self.engine
    }

    /// The bounded alert-transition history (shorthand for
    /// `alerts().log()`).
    pub fn alert_log(&self) -> &AlertLog {
        self.engine.log()
    }

    fn clock(&self) -> Arc<dyn Clock> {
        self.detector.policy().clock().clone()
    }

    /// Derives the built-in rules from the baseline and config, keeps
    /// caller rules, and resets all alert states.
    fn rebuild_engine(&mut self) {
        let mut rules = Vec::new();
        if let Some(baseline) = &self.baseline {
            for pipeline in PIPELINES {
                let base = baseline
                    .pipeline_duration_ns
                    .get(pipeline)
                    .copied()
                    .unwrap_or(0);
                rules.push(
                    AlertRule::new(
                        &format!("latency.{pipeline}"),
                        &format!("{pipeline}.duration_ns"),
                        AlertCondition::AboveBaseline {
                            baseline: base as f64,
                            factor: self.config.latency_factor,
                            floor: self.config.latency_floor_ns as f64,
                        },
                    )
                    .with_severity(Severity::Warning),
                );
            }
            rules.push(
                AlertRule::new(
                    "new_hidden_resource",
                    "sweep.new_findings",
                    AlertCondition::Above(0.0),
                )
                .with_severity(Severity::Critical),
            );
            rules.push(
                AlertRule::new(
                    "health_downgrade",
                    "sweep.downgrades",
                    AlertCondition::Above(0.0),
                )
                .with_severity(Severity::Critical),
            );
        }
        // Baseline-free: flicker is self-evident, no comparison anchor
        // needed. `evasion.flicker_score` stays 0 on unhardened policies
        // (a single-shot diff cannot observe flicker), so the rule only
        // ever fires under EvasionHardening.
        rules.push(
            AlertRule::new(
                "evasion_suspected",
                "evasion.flicker_score",
                AlertCondition::Above(0.0),
            )
            .with_severity(Severity::Critical),
        );
        rules.extend(self.custom_rules.iter().cloned());
        self.engine = AlertEngine::with_rules(rules);
    }

    /// Runs one sweep and records it as the comparison baseline (replacing
    /// any previous one). The baseline sweep does not enter the rolling
    /// series or raise incidents.
    ///
    /// # Errors
    ///
    /// Propagates sweep failures.
    pub fn record_baseline(&mut self, machine: &mut Machine) -> Result<&SweepBaseline, NtStatus> {
        let at_ns = self.clock().now_ns();
        let telemetry = Telemetry::with_clock(self.clock());
        let report = self
            .detector
            .clone()
            .with_telemetry(telemetry)
            .inside_sweep(machine)?;
        self.baseline = Some(SweepBaseline::from_report(machine.name(), at_ns, &report));
        self.rebuild_engine();
        Ok(self.baseline.as_ref().expect("just recorded"))
    }

    /// Runs one monitored sweep: scan, fold the sweep's metrics into the
    /// rolling series, evaluate every alert rule (recording transitions
    /// into the sweep's flight ring before the report freezes), and
    /// translate firing built-in rules into typed incidents.
    ///
    /// # Errors
    ///
    /// Propagates sweep failures.
    pub fn observe(&mut self, machine: &mut Machine) -> Result<MonitorObservation, NtStatus> {
        let at_ns = self.clock().now_ns();
        let telemetry = Telemetry::with_clock(self.clock());
        let mut report = self
            .detector
            .clone()
            .with_telemetry(telemetry.clone())
            .inside_sweep(machine)?;
        let now_ns = self.clock().now_ns();
        self.update_series(now_ns, &report);
        let transitions = self
            .engine
            .evaluate(&self.series, now_ns, Some(telemetry.recorder()));
        // Re-freeze the attached telemetry: the sweep froze its own copy
        // before the alert pass ran, and incidents should ship flight
        // dumps that include this sweep's alert transitions.
        report.telemetry = Some(telemetry.report());
        let incidents = self.incidents(&report);
        self.last_telemetry = report.telemetry.clone();
        self.sweeps_run += 1;
        Ok(MonitorObservation {
            at_ns,
            report,
            transitions,
            incidents,
        })
    }

    /// Runs `sweeps` monitored sweeps, sleeping the configured interval on
    /// the policy clock between consecutive sweeps (a [`FakeClock`] makes
    /// this instant and deterministic in tests).
    ///
    /// [`FakeClock`]: strider_support::obs::FakeClock
    ///
    /// # Errors
    ///
    /// Stops at the first sweep that fails outright.
    pub fn run(
        &mut self,
        machine: &mut Machine,
        sweeps: usize,
    ) -> Result<Vec<MonitorObservation>, NtStatus> {
        let clock = self.clock();
        let mut observations = Vec::with_capacity(sweeps);
        for i in 0..sweeps {
            if i > 0 {
                clock.sleep_ns(self.config.interval_ns);
            }
            observations.push(self.observe(machine)?);
        }
        Ok(observations)
    }

    /// The monitor's current state as a Prometheus-text [`Exposition`]:
    /// the last sweep's telemetry (counters, gauges, histogram buckets),
    /// every rolling series' newest value as a `monitor_*` gauge, the
    /// sweep counter, and the active-alert families.
    pub fn prometheus(&self) -> Exposition {
        let mut expo = self
            .last_telemetry
            .as_ref()
            .map(TelemetryReport::prometheus)
            .unwrap_or_default();
        for (name, series) in &self.series {
            if let Some(value) = series.last() {
                expo.gauge(&format!("monitor.{name}"), value);
            }
        }
        expo.counter("strider_monitor_sweeps_total", self.sweeps_run);
        expo.alerts(&self.engine);
        expo
    }

    /// Writes [`prometheus`](Self::prometheus) as
    /// `TELEMETRY_EXPO_<label>.prom` into
    /// [`strider_support::bench::report_dir`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects labels with no alphanumeric
    /// content.
    pub fn write_prom(&self, label: &str) -> std::io::Result<PathBuf> {
        self.prometheus().write(label)
    }

    /// Writes [`prometheus`](Self::prometheus) as
    /// `TELEMETRY_EXPO_<label>.prom` into `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects labels with no alphanumeric
    /// content.
    pub fn write_prom_in(&self, dir: &Path, label: &str) -> std::io::Result<PathBuf> {
        self.prometheus().write_in(dir, label)
    }

    /// Translates the built-in rules' firing states into typed incidents,
    /// reconstructing the per-finding / per-pipeline payloads from the
    /// report the way the pre-engine monitor did.
    fn incidents(&self, report: &SweepReport) -> Vec<MonitorIncident> {
        let flight = report
            .telemetry
            .as_ref()
            .map(|t| t.flight.clone())
            .unwrap_or_default();
        let mut incidents = Vec::new();

        // Evasion incidents need no baseline: a flickering resource is
        // its own evidence.
        if self.engine.is_firing("evasion_suspected") {
            for (pipeline, detection) in flickering(report) {
                incidents.push(MonitorIncident::EvasionSuspected {
                    pipeline: pipeline.to_string(),
                    identity: detection.identity.clone(),
                    detail: detection.detail.clone(),
                    flight: flight.clone(),
                });
            }
        }

        let Some(baseline) = &self.baseline else {
            return incidents;
        };

        if self.engine.is_firing("new_hidden_resource") {
            for (pipeline, detection) in findings(report) {
                let key = finding_key(pipeline, &detection.identity);
                if !baseline.findings.contains(&key) {
                    incidents.push(MonitorIncident::NewHiddenResource {
                        pipeline: pipeline.to_string(),
                        identity: detection.identity.clone(),
                        detail: detection.detail.clone(),
                        flight: flight.clone(),
                    });
                }
            }
        }

        let durations = report.pipeline_durations();
        for pipeline in PIPELINES {
            if self.engine.is_firing(&format!("latency.{pipeline}")) {
                incidents.push(MonitorIncident::LatencyRegression {
                    pipeline: pipeline.to_string(),
                    baseline_ns: baseline
                        .pipeline_duration_ns
                        .get(pipeline)
                        .copied()
                        .unwrap_or(0),
                    observed_ns: durations.get(pipeline).copied().unwrap_or(0),
                    flight: flight.clone(),
                });
            }
        }

        if self.engine.is_firing("health_downgrade") {
            for (pipeline, status) in degraded_pipelines(&report.health) {
                if !baseline.degraded.iter().any(|p| p == pipeline) {
                    let reason = match status {
                        PipelineStatus::Degraded { reason } => reason.clone(),
                        _ => unreachable!("degraded_pipelines yields Degraded only"),
                    };
                    incidents.push(MonitorIncident::HealthDowngrade {
                        pipeline: pipeline.to_string(),
                        reason,
                        flight: flight.clone(),
                    });
                }
            }
        }
        incidents
    }

    fn update_series(&mut self, at_ns: u64, report: &SweepReport) {
        // Baseline-relative counts feed the built-in threshold rules, so
        // the engine sees exactly what the old compare() saw.
        let new_findings = self.baseline.as_ref().map(|baseline| {
            finding_keys(report)
                .filter(|key| !baseline.findings.contains(key))
                .count()
        });
        let downgrades = self.baseline.as_ref().map(|baseline| {
            degraded_pipelines(&report.health)
                .filter(|(pipeline, _)| !baseline.degraded.iter().any(|p| p == pipeline))
                .count()
        });
        let history = self.config.history;
        let mut push = |name: &str, value: f64| {
            self.series
                .entry(name.to_string())
                .or_insert_with(|| TimeSeries::new(history))
                .push(at_ns, value);
        };
        push("sweep.suspicious", report.suspicious_count() as f64);
        push("sweep.noise", report.noise_count() as f64);
        push("evasion.flicker_score", report.flicker_score() as f64);
        push(
            "sweep.degraded",
            degraded_pipelines(&report.health).count() as f64,
        );
        // Every pipeline gets a sample every sweep (0 when it produced no
        // span), so baseline-relative latency rules never compare against
        // a stale value.
        let durations = report.pipeline_durations();
        for pipeline in PIPELINES {
            push(
                &format!("{pipeline}.duration_ns"),
                durations.get(pipeline).copied().unwrap_or(0) as f64,
            );
        }
        if let Some(telemetry) = &report.telemetry {
            for (name, value) in &telemetry.counters {
                if name.ends_with(".entries")
                    || name.ends_with(".defects")
                    || name == "sweep.timeouts"
                {
                    push(name, *value as f64);
                }
            }
        }
        if let Some(count) = new_findings {
            push("sweep.new_findings", count as f64);
        }
        if let Some(count) = downgrades {
            push("sweep.downgrades", count as f64);
        }
    }
}

/// Every suspicious finding with its owning pipeline.
fn findings(report: &SweepReport) -> impl Iterator<Item = (&'static str, &crate::Detection)> {
    let per = [
        ("files", &report.files),
        ("registry", &report.hooks),
        ("processes", &report.processes),
        ("modules", &report.modules),
    ];
    per.into_iter()
        .flat_map(|(name, diff)| diff.net_detections().into_iter().map(move |d| (name, d)))
}

/// Every [`NoiseClass::Flickering`] finding with its owning pipeline.
///
/// [`NoiseClass::Flickering`]: crate::report::NoiseClass::Flickering
fn flickering(report: &SweepReport) -> impl Iterator<Item = (&'static str, &crate::Detection)> {
    let per = [
        ("files", &report.files),
        ("registry", &report.hooks),
        ("processes", &report.processes),
        ("modules", &report.modules),
    ];
    per.into_iter().flat_map(|(name, diff)| {
        diff.detections
            .iter()
            .filter(|d| matches!(d.noise, crate::report::NoiseClass::Flickering))
            .map(move |d| (name, d))
    })
}

fn finding_key(pipeline: &str, identity: &str) -> String {
    format!("{pipeline}|{identity}")
}

fn finding_keys(report: &SweepReport) -> impl Iterator<Item = String> + '_ {
    findings(report).map(|(pipeline, d)| finding_key(pipeline, &d.identity))
}

/// The degraded pipelines of a health record, in sweep order.
fn degraded_pipelines(
    health: &SweepHealth,
) -> impl Iterator<Item = (&'static str, &PipelineStatus)> {
    [
        ("files", &health.files),
        ("registry", &health.registry),
        ("processes", &health.processes),
        ("modules", &health.modules),
    ]
    .into_iter()
    .filter(|(_, status)| matches!(status, PipelineStatus::Degraded { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ScanPolicy;
    use strider_support::obs::{FakeClock, FlightEventKind};

    fn fake_monitor() -> (Arc<FakeClock>, SweepMonitor) {
        let clock = Arc::new(FakeClock::new());
        let policy = ScanPolicy::resilient().with_clock(clock.clone());
        let monitor = SweepMonitor::new(GhostBuster::new().with_policy(policy));
        (clock, monitor)
    }

    /// The fixture every baseline-driven test repeated by hand: a
    /// fake-clock monitor with a baseline already recorded against a
    /// fresh base-system machine named `name`.
    fn baselined(name: &str) -> (Arc<FakeClock>, SweepMonitor, Machine) {
        let (clock, mut monitor) = fake_monitor();
        let mut machine = Machine::with_base_system(name).unwrap();
        monitor.record_baseline(&mut machine).unwrap();
        (clock, monitor, machine)
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let (_clock, monitor, _machine) = baselined("lab-json");
        let baseline = monitor.baseline().unwrap().clone();
        let text = baseline.serialize();
        let parsed = SweepBaseline::deserialize(&text).unwrap();
        assert_eq!(parsed, baseline);
        assert_eq!(parsed.machine, "lab-json");
        assert_eq!(parsed.pipeline_duration_ns.len(), 4);
    }

    #[test]
    fn clean_machine_raises_no_incidents_and_fills_series() {
        let (_clock, mut monitor, mut machine) = baselined("lab-quiet");
        let observations = monitor.run(&mut machine, 3).unwrap();
        assert_eq!(observations.len(), 3);
        assert!(observations.iter().all(|o| o.incidents.is_empty()));
        assert!(observations.iter().all(|o| o.transitions.is_empty()));
        assert_eq!(monitor.sweeps_run(), 3);
        let suspicious = monitor.series("sweep.suspicious").unwrap();
        assert_eq!(suspicious.len(), 3);
        assert_eq!(suspicious.last(), Some(0.0));
        assert_eq!(suspicious.quantile(100.0), Some(0.0));
        assert!(monitor.series("files.duration_ns").is_some());
        assert!(monitor.alerts().firing().is_empty());
        assert!(monitor.alert_log().is_empty());
    }

    #[test]
    fn run_sleeps_the_interval_between_sweeps() {
        let (clock, monitor, mut machine) = baselined("lab-tick");
        let mut monitor = monitor.with_config(MonitorConfig::default().with_interval_ns(1_000));
        let observations = monitor.run(&mut machine, 3).unwrap();
        // Two gaps between three sweeps; nothing else advances the fake
        // clock on a fault-free machine.
        assert_eq!(clock.now_ns(), 2_000);
        assert_eq!(observations[1].at_ns - observations[0].at_ns, 1_000);
    }

    #[test]
    fn metric_series_is_bounded_and_queries_work() {
        let mut series = MetricSeries::new(3);
        for (i, v) in [1.0, 2.0, 3.0, 4.0].into_iter().enumerate() {
            series.push(i as u64 * 100, v);
        }
        assert_eq!(series.len(), 3, "oldest point evicted");
        assert_eq!(series.values(), vec![2.0, 3.0, 4.0]);
        assert_eq!(series.last(), Some(4.0));
        assert_eq!(series.mean(), Some(3.0));
        assert_eq!(series.quantile(0.0), Some(2.0));
        assert_eq!(series.quantile(100.0), Some(4.0));
        assert!(MetricSeries::new(2).quantile(50.0).is_none());
    }

    #[test]
    fn zero_history_config_still_retains_the_newest_sample() {
        // `MonitorConfig { history: 0, .. }` is directly constructible,
        // bypassing `with_history`'s clamp — the series itself must clamp.
        let (_clock, monitor, mut machine) = baselined("lab-zero");
        let mut monitor = monitor.with_config(MonitorConfig {
            history: 0,
            ..MonitorConfig::default()
        });
        monitor.run(&mut machine, 2).unwrap();
        let suspicious = monitor.series("sweep.suspicious").unwrap();
        assert_eq!(suspicious.len(), 1, "capacity clamped to 1, not 0");
        assert_eq!(suspicious.last(), Some(0.0));
    }

    #[test]
    fn custom_rule_transitions_reach_log_and_flight_dump() {
        let (_clock, monitor, mut machine) = baselined("lab-rule");
        let mut monitor = monitor.with_rule(
            AlertRule::new(
                "always_on",
                "sweep.suspicious",
                AlertCondition::Below(1_000.0),
            )
            .with_severity(Severity::Info),
        );
        let observation = monitor.observe(&mut machine).unwrap();
        assert_eq!(observation.transitions.len(), 1);
        assert!(monitor.alerts().is_firing("always_on"));
        assert_eq!(monitor.alert_log().len(), 1);
        // The re-frozen report's flight dump carries the alert event.
        let flight = &observation.report.telemetry.as_ref().unwrap().flight;
        assert!(flight
            .events
            .iter()
            .any(|e| e.kind == FlightEventKind::Alert && e.what == "always_on"));
    }

    #[test]
    fn evasive_flicker_raises_evasion_suspected_without_a_baseline() {
        use strider_ghostware::{EvasiveGhostware, EvasiveTactic, Ghostware};
        let clock = Arc::new(FakeClock::new());
        let policy = ScanPolicy::hardened().with_clock(clock);
        let mut monitor = SweepMonitor::new(GhostBuster::new().with_policy(policy));
        let mut machine = Machine::with_base_system("lab-evasion").unwrap();
        // Unhide-during-low-scan guarantees a flickering finding under a
        // hardened sweep: the pre-raw-read quorum pass sees the lie, the
        // post-raw-read passes see honesty.
        EvasiveGhostware::new(EvasiveTactic::UnhideDuringLowScan { window: 1_000_000 })
            .infect(&mut machine)
            .unwrap();
        // No baseline on purpose: flicker needs no comparison anchor.
        let observation = monitor.observe(&mut machine).unwrap();
        assert!(observation.report.flicker_score() > 0);
        assert!(monitor.alerts().is_firing("evasion_suspected"));
        let evasion: Vec<_> = observation
            .incidents
            .iter()
            .filter(|i| matches!(i, MonitorIncident::EvasionSuspected { .. }))
            .collect();
        assert!(!evasion.is_empty(), "typed incidents carry the findings");
        assert!(evasion
            .iter()
            .all(|i| i.to_string().contains("evasion suspected")));
        let series = monitor.series("evasion.flicker_score").unwrap();
        assert!(series.last().unwrap() > 0.0);
    }

    #[test]
    fn exposition_snapshot_includes_series_and_alerts() {
        let (_clock, mut monitor, mut machine) = baselined("lab-prom");
        monitor.observe(&mut machine).unwrap();
        let text = monitor.prometheus().render();
        assert!(text.contains("strider_monitor_sweeps_total 1"));
        assert!(text.contains("monitor_sweep_suspicious 0"));
        assert!(text.contains(
            "strider_alert_active{rule=\"new_hidden_resource\",severity=\"critical\"} 0"
        ));
    }
}
