//! Continuous sweep monitoring: scheduled re-sweeps, rolling metric
//! series, and regression detection against a recorded baseline.
//!
//! The paper's operational story (§6) is not one sweep but *continuous*
//! cross-view scanning of live machines. [`SweepMonitor`] drives repeated
//! [`GhostBuster::inside_sweep`]s on the policy's [`Clock`] schedule,
//! keeps bounded time-series of the key metrics (per-pipeline durations,
//! entry counts, defect/timeout counters, findings), and compares every
//! sweep against a [`SweepBaseline`] snapshot, raising a typed
//! [`MonitorIncident`] — each carrying that sweep's flight-recorder dump
//! — when something drifts:
//!
//! * a finding not present at baseline ([`MonitorIncident::NewHiddenResource`]),
//! * a pipeline running slower than the configured threshold over its
//!   baseline duration ([`MonitorIncident::LatencyRegression`]),
//! * a pipeline degrading that was healthy at baseline
//!   ([`MonitorIncident::HealthDowngrade`]).
//!
//! Baselines round-trip through [`crate::GhostBuster`]-independent JSON
//! ([`SweepBaseline::serialize`]), so a fleet operator can record one
//! golden sweep per machine and diff against it for months.

use crate::ghostbuster::{GhostBuster, SweepReport};
use crate::policy::{PipelineStatus, SweepHealth};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use strider_nt_core::NtStatus;
use strider_support::obs::{fmt_ns, Clock, FlightDump, Telemetry};
use strider_winapi::Machine;

/// The four inside-sweep pipelines, in sweep order.
const PIPELINES: [&str; 4] = ["files", "registry", "processes", "modules"];

/// Tuning knobs for a [`SweepMonitor`].
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Gap between scheduled sweeps in [`SweepMonitor::run`], observed on
    /// the policy clock.
    pub interval_ns: u64,
    /// A pipeline regresses when its duration exceeds
    /// `baseline * latency_factor + latency_floor_ns`.
    pub latency_factor: f64,
    /// Absolute slack added to the latency threshold, so a near-zero
    /// baseline (idle machine, fake clock) doesn't flag noise-level
    /// variation as a regression.
    pub latency_floor_ns: u64,
    /// How many sweeps each rolling [`MetricSeries`] retains.
    pub history: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            interval_ns: 1_000_000_000,
            latency_factor: 2.0,
            latency_floor_ns: 100_000,
            history: 64,
        }
    }
}

impl MonitorConfig {
    /// Sets the sweep interval.
    pub fn with_interval_ns(mut self, interval_ns: u64) -> Self {
        self.interval_ns = interval_ns;
        self
    }

    /// Sets the latency-regression threshold (multiplier over baseline
    /// plus absolute floor).
    pub fn with_latency_threshold(mut self, factor: f64, floor_ns: u64) -> Self {
        self.latency_factor = factor;
        self.latency_floor_ns = floor_ns;
        self
    }

    /// Sets how many sweeps of history each metric series keeps.
    pub fn with_history(mut self, history: usize) -> Self {
        self.history = history.max(1);
        self
    }
}

/// A recorded snapshot of one sweep's shape, used as the comparison
/// anchor for every later sweep. Round-trips through JSON
/// ([`SweepBaseline::serialize`] / [`SweepBaseline::deserialize`]) so it
/// can be stored next to the machine it describes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepBaseline {
    /// The machine the baseline sweep observed.
    pub machine: String,
    /// Monitor clock reading when the baseline was recorded.
    pub taken_at_ns: u64,
    /// Wall duration of each pipeline's scan phase.
    pub pipeline_duration_ns: BTreeMap<String, u64>,
    /// Identity keys (`pipeline|identity`) of every suspicious finding
    /// present at baseline — findings outside this set are *new*.
    pub findings: Vec<String>,
    /// Pipelines already degraded at baseline (their later degradation is
    /// not a downgrade).
    pub degraded: Vec<String>,
    /// Suspicious findings at baseline.
    pub suspicious: u64,
    /// Noise-classified findings at baseline.
    pub noise: u64,
}

strider_support::impl_json!(
    struct SweepBaseline {
        machine,
        taken_at_ns,
        pipeline_duration_ns,
        findings,
        degraded,
        suspicious,
        noise,
    }
);

impl SweepBaseline {
    /// Builds a baseline from a finished (telemetry-instrumented) sweep.
    pub fn from_report(machine: &str, taken_at_ns: u64, report: &SweepReport) -> Self {
        SweepBaseline {
            machine: machine.to_string(),
            taken_at_ns,
            pipeline_duration_ns: report.pipeline_durations(),
            findings: finding_keys(report).collect(),
            degraded: degraded_pipelines(&report.health)
                .map(|(name, _)| name.to_string())
                .collect(),
            suspicious: report.suspicious_count() as u64,
            noise: report.noise_count() as u64,
        }
    }

    /// Renders the baseline as a JSON document.
    pub fn serialize(&self) -> String {
        use strider_support::json::ToJson;
        self.to_json().render()
    }

    /// Parses a baseline from [`SweepBaseline::serialize`] output.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a document that is not a baseline.
    pub fn deserialize(text: &str) -> Result<Self, strider_support::json::JsonError> {
        use strider_support::json::{FromJson, JsonValue};
        Self::from_json(&JsonValue::parse(text)?)
    }
}

/// A drift the monitor detected between a sweep and its baseline. Every
/// variant carries the sweep's flight-recorder dump, so the incident
/// ships its own evidence trail.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorIncident {
    /// A suspicious finding absent from the baseline — on a monitored
    /// machine, the moment a new hidden resource appears.
    NewHiddenResource {
        /// Pipeline that surfaced the finding.
        pipeline: String,
        /// The finding's cross-view identity key.
        identity: String,
        /// Human-readable description.
        detail: String,
        /// Flight-recorder dump of the detecting sweep.
        flight: FlightDump,
    },
    /// A pipeline ran slower than `baseline * factor + floor`.
    LatencyRegression {
        /// The slow pipeline.
        pipeline: String,
        /// Its baseline duration.
        baseline_ns: u64,
        /// Its observed duration this sweep.
        observed_ns: u64,
        /// Flight-recorder dump of the slow sweep.
        flight: FlightDump,
    },
    /// A pipeline degraded that was healthy at baseline.
    HealthDowngrade {
        /// The degraded pipeline.
        pipeline: String,
        /// Its degradation reason.
        reason: String,
        /// Flight-recorder dump ending at the failure.
        flight: FlightDump,
    },
}

impl MonitorIncident {
    /// The pipeline the incident concerns.
    pub fn pipeline(&self) -> &str {
        match self {
            MonitorIncident::NewHiddenResource { pipeline, .. }
            | MonitorIncident::LatencyRegression { pipeline, .. }
            | MonitorIncident::HealthDowngrade { pipeline, .. } => pipeline,
        }
    }

    /// The flight-recorder dump captured with the incident.
    pub fn flight(&self) -> &FlightDump {
        match self {
            MonitorIncident::NewHiddenResource { flight, .. }
            | MonitorIncident::LatencyRegression { flight, .. }
            | MonitorIncident::HealthDowngrade { flight, .. } => flight,
        }
    }
}

impl fmt::Display for MonitorIncident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorIncident::NewHiddenResource {
                pipeline,
                identity,
                detail,
                ..
            } => write!(f, "new hidden resource [{pipeline}] {identity}: {detail}"),
            MonitorIncident::LatencyRegression {
                pipeline,
                baseline_ns,
                observed_ns,
                ..
            } => write!(
                f,
                "latency regression [{pipeline}]: {} at baseline, {} now",
                fmt_ns(*baseline_ns),
                fmt_ns(*observed_ns)
            ),
            MonitorIncident::HealthDowngrade {
                pipeline, reason, ..
            } => write!(f, "health downgrade [{pipeline}]: {reason}"),
        }
    }
}

/// A bounded rolling series of per-sweep metric values (oldest dropped
/// first), with simple quantile/mean queries for dashboards.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSeries {
    cap: usize,
    points: VecDeque<f64>,
}

impl MetricSeries {
    /// A series retaining at most `cap` points.
    pub fn new(cap: usize) -> Self {
        MetricSeries {
            cap: cap.max(1),
            points: VecDeque::new(),
        }
    }

    /// Appends a point, evicting the oldest when full.
    pub fn push(&mut self, value: f64) {
        if self.points.len() == self.cap {
            self.points.pop_front();
        }
        self.points.push_back(value);
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The most recent point.
    pub fn last(&self) -> Option<f64> {
        self.points.back().copied()
    }

    /// Mean over the retained window.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().sum::<f64>() / self.points.len() as f64)
    }

    /// Nearest-rank quantile (`pct` in `0..=100`) over the retained
    /// window.
    pub fn quantile(&self, pct: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.points.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("metric points are finite"));
        let rank = ((pct.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// The retained points, oldest first.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().copied()
    }
}

/// One monitored sweep: the report, when it ran, and any incidents it
/// raised against the baseline.
#[derive(Debug, Clone)]
pub struct MonitorObservation {
    /// Monitor clock reading when the sweep started.
    pub at_ns: u64,
    /// The sweep itself (telemetry always attached).
    pub report: SweepReport,
    /// Drift detected against the baseline (empty without a baseline).
    pub incidents: Vec<MonitorIncident>,
}

/// Drives repeated supervised sweeps on a [`Clock`] schedule and watches
/// for sweep-over-sweep drift.
///
/// Each sweep runs with a *fresh* [`Telemetry`] registry on the policy's
/// clock, so reports never bleed into each other and every observation
/// carries its own span forest, metrics, and flight-recorder dump.
///
/// # Examples
///
/// ```
/// use strider_ghostbuster::{GhostBuster, ScanPolicy, SweepMonitor};
/// use strider_winapi::Machine;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut machine = Machine::with_base_system("lab-1")?;
/// let mut monitor = SweepMonitor::new(GhostBuster::new().with_policy(ScanPolicy::resilient()));
/// monitor.record_baseline(&mut machine)?;
/// let observations = monitor.run(&mut machine, 3)?;
/// assert!(observations.iter().all(|o| o.incidents.is_empty()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SweepMonitor {
    detector: GhostBuster,
    config: MonitorConfig,
    baseline: Option<SweepBaseline>,
    series: BTreeMap<String, MetricSeries>,
    sweeps_run: u64,
}

impl SweepMonitor {
    /// A monitor driving the given detector with default
    /// [`MonitorConfig`]. Any telemetry already attached to the detector
    /// is ignored — the monitor attaches a fresh registry per sweep.
    pub fn new(detector: GhostBuster) -> Self {
        SweepMonitor {
            detector,
            config: MonitorConfig::default(),
            baseline: None,
            series: BTreeMap::new(),
            sweeps_run: 0,
        }
    }

    /// Replaces the monitor configuration.
    pub fn with_config(mut self, config: MonitorConfig) -> Self {
        self.config = config;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// The recorded baseline, if any.
    pub fn baseline(&self) -> Option<&SweepBaseline> {
        self.baseline.as_ref()
    }

    /// Installs a previously recorded (e.g. deserialized) baseline.
    pub fn set_baseline(&mut self, baseline: SweepBaseline) {
        self.baseline = Some(baseline);
    }

    /// How many monitored sweeps have run (baseline excluded).
    pub fn sweeps_run(&self) -> u64 {
        self.sweeps_run
    }

    /// The rolling series for a metric, if it has been observed.
    pub fn series(&self, name: &str) -> Option<&MetricSeries> {
        self.series.get(name)
    }

    /// Names of every metric with a rolling series, sorted.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    fn clock(&self) -> Arc<dyn Clock> {
        self.detector.policy().clock().clone()
    }

    fn instrumented_sweep(&self, machine: &mut Machine) -> Result<SweepReport, NtStatus> {
        let telemetry = Telemetry::with_clock(self.clock());
        self.detector
            .clone()
            .with_telemetry(telemetry)
            .inside_sweep(machine)
    }

    /// Runs one sweep and records it as the comparison baseline (replacing
    /// any previous one). The baseline sweep does not enter the rolling
    /// series or raise incidents.
    ///
    /// # Errors
    ///
    /// Propagates sweep failures.
    pub fn record_baseline(&mut self, machine: &mut Machine) -> Result<&SweepBaseline, NtStatus> {
        let at_ns = self.clock().now_ns();
        let report = self.instrumented_sweep(machine)?;
        self.baseline = Some(SweepBaseline::from_report(machine.name(), at_ns, &report));
        Ok(self.baseline.as_ref().expect("just recorded"))
    }

    /// Runs one monitored sweep: scan, compare against the baseline, and
    /// fold the sweep's metrics into the rolling series.
    ///
    /// # Errors
    ///
    /// Propagates sweep failures.
    pub fn observe(&mut self, machine: &mut Machine) -> Result<MonitorObservation, NtStatus> {
        let at_ns = self.clock().now_ns();
        let report = self.instrumented_sweep(machine)?;
        let incidents = self.compare(&report);
        self.update_series(&report);
        self.sweeps_run += 1;
        Ok(MonitorObservation {
            at_ns,
            report,
            incidents,
        })
    }

    /// Runs `sweeps` monitored sweeps, sleeping the configured interval on
    /// the policy clock between consecutive sweeps (a [`FakeClock`] makes
    /// this instant and deterministic in tests).
    ///
    /// [`FakeClock`]: strider_support::obs::FakeClock
    ///
    /// # Errors
    ///
    /// Stops at the first sweep that fails outright.
    pub fn run(
        &mut self,
        machine: &mut Machine,
        sweeps: usize,
    ) -> Result<Vec<MonitorObservation>, NtStatus> {
        let clock = self.clock();
        let mut observations = Vec::with_capacity(sweeps);
        for i in 0..sweeps {
            if i > 0 {
                clock.sleep_ns(self.config.interval_ns);
            }
            observations.push(self.observe(machine)?);
        }
        Ok(observations)
    }

    fn compare(&self, report: &SweepReport) -> Vec<MonitorIncident> {
        let Some(baseline) = &self.baseline else {
            return Vec::new();
        };
        let flight = report
            .telemetry
            .as_ref()
            .map(|t| t.flight.clone())
            .unwrap_or_default();
        let mut incidents = Vec::new();

        for (pipeline, detection) in findings(report) {
            let key = finding_key(pipeline, &detection.identity);
            if !baseline.findings.contains(&key) {
                incidents.push(MonitorIncident::NewHiddenResource {
                    pipeline: pipeline.to_string(),
                    identity: detection.identity.clone(),
                    detail: detection.detail.clone(),
                    flight: flight.clone(),
                });
            }
        }

        let durations = report.pipeline_durations();
        for pipeline in PIPELINES {
            let observed = durations.get(pipeline).copied().unwrap_or(0);
            let base = baseline
                .pipeline_duration_ns
                .get(pipeline)
                .copied()
                .unwrap_or(0);
            let threshold =
                base as f64 * self.config.latency_factor + self.config.latency_floor_ns as f64;
            if observed as f64 > threshold {
                incidents.push(MonitorIncident::LatencyRegression {
                    pipeline: pipeline.to_string(),
                    baseline_ns: base,
                    observed_ns: observed,
                    flight: flight.clone(),
                });
            }
        }

        for (pipeline, status) in degraded_pipelines(&report.health) {
            if !baseline.degraded.iter().any(|p| p == pipeline) {
                let reason = match status {
                    PipelineStatus::Degraded { reason } => reason.clone(),
                    _ => unreachable!("degraded_pipelines yields Degraded only"),
                };
                incidents.push(MonitorIncident::HealthDowngrade {
                    pipeline: pipeline.to_string(),
                    reason,
                    flight: flight.clone(),
                });
            }
        }
        incidents
    }

    fn update_series(&mut self, report: &SweepReport) {
        let history = self.config.history;
        let mut push = |name: &str, value: f64| {
            self.series
                .entry(name.to_string())
                .or_insert_with(|| MetricSeries::new(history))
                .push(value);
        };
        push("sweep.suspicious", report.suspicious_count() as f64);
        push("sweep.noise", report.noise_count() as f64);
        push(
            "sweep.degraded",
            degraded_pipelines(&report.health).count() as f64,
        );
        for (pipeline, duration) in report.pipeline_durations() {
            push(&format!("{pipeline}.duration_ns"), duration as f64);
        }
        if let Some(telemetry) = &report.telemetry {
            for (name, value) in &telemetry.counters {
                if name.ends_with(".entries")
                    || name.ends_with(".defects")
                    || name == "sweep.timeouts"
                {
                    push(name, *value as f64);
                }
            }
        }
    }
}

/// Every suspicious finding with its owning pipeline.
fn findings(report: &SweepReport) -> impl Iterator<Item = (&'static str, &crate::Detection)> {
    let per = [
        ("files", &report.files),
        ("registry", &report.hooks),
        ("processes", &report.processes),
        ("modules", &report.modules),
    ];
    per.into_iter()
        .flat_map(|(name, diff)| diff.net_detections().into_iter().map(move |d| (name, d)))
}

fn finding_key(pipeline: &str, identity: &str) -> String {
    format!("{pipeline}|{identity}")
}

fn finding_keys(report: &SweepReport) -> impl Iterator<Item = String> + '_ {
    findings(report).map(|(pipeline, d)| finding_key(pipeline, &d.identity))
}

/// The degraded pipelines of a health record, in sweep order.
fn degraded_pipelines(
    health: &SweepHealth,
) -> impl Iterator<Item = (&'static str, &PipelineStatus)> {
    [
        ("files", &health.files),
        ("registry", &health.registry),
        ("processes", &health.processes),
        ("modules", &health.modules),
    ]
    .into_iter()
    .filter(|(_, status)| matches!(status, PipelineStatus::Degraded { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ScanPolicy;
    use strider_support::obs::FakeClock;

    fn fake_monitor() -> (Arc<FakeClock>, SweepMonitor) {
        let clock = Arc::new(FakeClock::new());
        let policy = ScanPolicy::resilient().with_clock(clock.clone());
        let monitor = SweepMonitor::new(GhostBuster::new().with_policy(policy));
        (clock, monitor)
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let (_clock, mut monitor) = fake_monitor();
        let mut machine = Machine::with_base_system("lab-json").unwrap();
        let baseline = monitor.record_baseline(&mut machine).unwrap().clone();
        let text = baseline.serialize();
        let parsed = SweepBaseline::deserialize(&text).unwrap();
        assert_eq!(parsed, baseline);
        assert_eq!(parsed.machine, "lab-json");
        assert_eq!(parsed.pipeline_duration_ns.len(), 4);
    }

    #[test]
    fn clean_machine_raises_no_incidents_and_fills_series() {
        let (_clock, mut monitor) = fake_monitor();
        let mut machine = Machine::with_base_system("lab-quiet").unwrap();
        monitor.record_baseline(&mut machine).unwrap();
        let observations = monitor.run(&mut machine, 3).unwrap();
        assert_eq!(observations.len(), 3);
        assert!(observations.iter().all(|o| o.incidents.is_empty()));
        assert_eq!(monitor.sweeps_run(), 3);
        let suspicious = monitor.series("sweep.suspicious").unwrap();
        assert_eq!(suspicious.len(), 3);
        assert_eq!(suspicious.last(), Some(0.0));
        assert_eq!(suspicious.quantile(100.0), Some(0.0));
        assert!(monitor.series("files.duration_ns").is_some());
    }

    #[test]
    fn run_sleeps_the_interval_between_sweeps() {
        let (clock, mut monitor) = fake_monitor();
        monitor = monitor.with_config(MonitorConfig::default().with_interval_ns(1_000));
        let mut machine = Machine::with_base_system("lab-tick").unwrap();
        monitor.record_baseline(&mut machine).unwrap();
        let observations = monitor.run(&mut machine, 3).unwrap();
        // Two gaps between three sweeps; nothing else advances the fake
        // clock on a fault-free machine.
        assert_eq!(clock.now_ns(), 2_000);
        assert_eq!(observations[1].at_ns - observations[0].at_ns, 1_000);
    }

    #[test]
    fn metric_series_is_bounded_and_queries_work() {
        let mut series = MetricSeries::new(3);
        for v in [1.0, 2.0, 3.0, 4.0] {
            series.push(v);
        }
        assert_eq!(series.len(), 3, "oldest point evicted");
        assert_eq!(series.values().collect::<Vec<_>>(), vec![2.0, 3.0, 4.0]);
        assert_eq!(series.last(), Some(4.0));
        assert_eq!(series.mean(), Some(3.0));
        assert_eq!(series.quantile(0.0), Some(2.0));
        assert_eq!(series.quantile(100.0), Some(4.0));
        assert!(MetricSeries::new(2).quantile(50.0).is_none());
    }
}
