//! Scan resilience: retry, salvage, stabilization, and per-pipeline health.
//!
//! A live machine is a hostile measurement environment twice over: the
//! ghostware tampers with what the scans *see*, and ordinary hardware and
//! scheduling churn tamper with whether the scans *complete*. The paper's
//! answer to the second problem is procedural — re-run the scan, tolerate a
//! reboot window, accept the image you can get. [`ScanPolicy`] makes those
//! procedures explicit and testable:
//!
//! * **retries** — low-level reads that fail transiently
//!   ([`NtStatus::DeviceNotReady`]) are retried with bounded exponential
//!   backoff through a [`Clock`], so tests drive the schedule with a
//!   [`FakeClock`](strider_support::obs::FakeClock) and never sleep;
//! * **salvage** — raw images that no longer parse strictly are handed to
//!   the salvage-mode parsers, which skip damaged records and report
//!   [`Defect`](strider_support::fault::Defect)s instead of aborting;
//! * **stabilization** — a cross-view diff taken while the machine mutates
//!   underneath it sees scan-gap churn; re-running until two consecutive
//!   passes agree separates a *stable* lie (hiding) from transient noise;
//! * **degradation** — when a truth source is unrecoverable the sweep keeps
//!   going, and the lost pipeline is marked [`PipelineStatus::Degraded`] in
//!   the report's [`SweepHealth`] rather than failing the other three.

use crate::report::{Detection, DiffReport, NoiseClass};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use strider_nt_core::NtStatus;
use strider_support::json::{FromJson, JsonError, JsonValue, ToJson};
use strider_support::obs::{Clock, MonotonicClock};
use strider_support::rng::{fnv1a, SplitMix64};
use strider_support::task::{Interrupt, Supervision};

/// Anti-evasion knobs: seeded randomization, decoy queries, and quorum
/// diffing (the detector side of the arms race in
/// `strider_ghostware::evasive`).
///
/// Scan-aware ghostware defeats a *predictable* scanner: a fixed pipeline
/// order and enumeration order make bulk scans fingerprintable, and the
/// "two passes agree" stabilization rule accepts whichever lie holds still
/// for two passes. Hardening randomizes what the adversary can fingerprint
/// and replaces agreement with majority vote:
///
/// * **seeded randomization** — pipeline order and within-pipeline
///   enumeration order are shuffled from `seed`, so equal seeds reproduce
///   byte-identical sweeps while the adversary cannot predict read order;
/// * **decoy queries** — every `decoy_every` real queries the scanners
///   issue a discarded query of a *different* kind, breaking the
///   same-kind bursts that burst-sensing ghostware keys on;
/// * **quorum diffing** — each pipeline diff runs `quorum_passes` times;
///   findings in a majority of passes are kept as-is, and findings that
///   appear-and-vanish become [`NoiseClass::Flickering`] detections
///   instead of silently dropping out.
///
/// [`NoiseClass::Flickering`]: crate::report::NoiseClass::Flickering
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvasionHardening {
    /// Master seed; every randomized decision derives from it, so a fixed
    /// seed makes the whole hardened sweep reproducible.
    pub seed: u64,
    /// Diff passes per pipeline for the majority vote (clamped to ≥ 2 at
    /// use; a finding needs `quorum_passes / 2 + 1` appearances to count
    /// as stable).
    pub quorum_passes: u32,
    /// Issue one decoy query per this many real queries; `0` disables
    /// decoys.
    pub decoy_every: u32,
}

impl Default for EvasionHardening {
    fn default() -> Self {
        Self {
            seed: 0x57D1DE57,
            quorum_passes: 5,
            decoy_every: 4,
        }
    }
}

impl EvasionHardening {
    /// Default hardening with a caller-chosen seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// The quorum size actually used (`quorum_passes`, at least 2).
    pub fn passes(&self) -> u32 {
        self.quorum_passes.max(2)
    }

    /// Appearances a finding needs to count as stable rather than
    /// flickering.
    pub fn majority(&self) -> u32 {
        self.passes() / 2 + 1
    }

    /// A per-label random stream: `seed ^ fnv1a(label)`, so independent
    /// consumers (pipeline order, each scanner's enumeration shuffle)
    /// draw decorrelated but reproducible streams from one seed.
    pub fn stream(&self, label: &str) -> SplitMix64 {
        SplitMix64::seed_from_u64(self.seed ^ fnv1a(label.as_bytes()))
    }

    /// A per-label, per-pass stream: like [`EvasionHardening::stream`] but
    /// folding in a pass counter so consecutive quorum passes enumerate in
    /// *different* orders while the whole sequence stays seed-determined.
    pub fn pass_stream(&self, label: &str, pass: u64) -> SplitMix64 {
        SplitMix64::seed_from_u64(self.seed ^ fnv1a(label.as_bytes()) ^ pass.wrapping_mul(0x9E37))
    }
}

/// Resilience knobs for scans and sweeps.
///
/// [`ScanPolicy::strict`] (the default) reproduces the pre-policy behavior
/// exactly: no retries, no salvage, a single pass, and any low-level failure
/// propagates. [`ScanPolicy::resilient`] turns everything on.
///
/// # Examples
///
/// ```
/// use strider_ghostbuster::ScanPolicy;
///
/// let strict = ScanPolicy::strict();
/// assert_eq!(strict.retries, 0);
/// assert!(!strict.salvage);
///
/// let resilient = ScanPolicy::resilient();
/// assert!(resilient.retries > 0);
/// assert!(resilient.salvage);
/// ```
#[derive(Clone)]
pub struct ScanPolicy {
    /// How many times a transiently-failing low-level read is retried
    /// before the failure is treated as permanent.
    pub retries: u32,
    /// Backoff before the first retry, in nanoseconds; doubles per attempt.
    pub backoff_base_ns: u64,
    /// Ceiling on any single backoff sleep, in nanoseconds.
    pub backoff_max_ns: u64,
    /// Maximum number of diff passes per pipeline; the sweep stops early as
    /// soon as two consecutive passes agree. `1` means single-pass.
    pub stabilization_passes: u32,
    /// Whether unparseable raw images are re-read in salvage mode (skipping
    /// damaged records, recording defects) instead of failing the scan.
    pub salvage: bool,
    /// How long [`ScanPolicy::supervised_retry`] sleeps between polls of a
    /// read that reported [`NtStatus::Pending`], in nanoseconds.
    pub poll_interval_ns: u64,
    /// How many pending polls an *unsupervised* read tolerates before the
    /// stall is declared a [`NtStatus::TimedOut`]. Ignored when the caller's
    /// [`Supervision`] carries a deadline — the deadline governs instead.
    pub poll_budget: u32,
    /// Time budget for each sweep pipeline, in nanoseconds; the sweep gives
    /// every pipeline a deadline this far out when it starts. `None` means
    /// unbounded.
    pub pipeline_budget_ns: Option<u64>,
    /// Time budget for a whole sweep, in nanoseconds; caps every pipeline
    /// deadline. `None` means unbounded.
    pub sweep_budget_ns: Option<u64>,
    /// Consecutive pipeline failures before that pipeline's circuit breaker
    /// opens. `0` disables breakers entirely.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects a pipeline before admitting a
    /// half-open probe, in nanoseconds on the policy clock.
    pub breaker_cooldown_ns: u64,
    /// Anti-evasion hardening: seeded randomized scan order, decoy
    /// queries, and quorum diffing. `None` (the default) keeps the
    /// historical deterministic order and plain stabilization.
    pub hardening: Option<EvasionHardening>,
    clock: Arc<dyn Clock>,
}

impl fmt::Debug for ScanPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScanPolicy")
            .field("retries", &self.retries)
            .field("backoff_base_ns", &self.backoff_base_ns)
            .field("backoff_max_ns", &self.backoff_max_ns)
            .field("stabilization_passes", &self.stabilization_passes)
            .field("salvage", &self.salvage)
            .field("poll_interval_ns", &self.poll_interval_ns)
            .field("poll_budget", &self.poll_budget)
            .field("pipeline_budget_ns", &self.pipeline_budget_ns)
            .field("sweep_budget_ns", &self.sweep_budget_ns)
            .field("breaker_threshold", &self.breaker_threshold)
            .field("breaker_cooldown_ns", &self.breaker_cooldown_ns)
            .field("hardening", &self.hardening)
            .finish_non_exhaustive()
    }
}

impl Default for ScanPolicy {
    fn default() -> Self {
        Self::strict()
    }
}

impl ScanPolicy {
    /// Fail-fast: no retries, no salvage, single-pass diffs. Identical to
    /// the scanners' historical behavior.
    pub fn strict() -> Self {
        Self {
            retries: 0,
            backoff_base_ns: 1_000_000,
            backoff_max_ns: 8_000_000,
            stabilization_passes: 1,
            salvage: false,
            poll_interval_ns: 1_000_000,
            poll_budget: 0,
            pipeline_budget_ns: None,
            sweep_budget_ns: None,
            breaker_threshold: 0,
            breaker_cooldown_ns: 100_000_000,
            hardening: None,
            clock: Arc::new(MonotonicClock::new()),
        }
    }

    /// Production posture: three retries with 1 ms → 8 ms exponential
    /// backoff, salvage-mode parsing, and up to three stabilization passes.
    pub fn resilient() -> Self {
        Self {
            retries: 3,
            stabilization_passes: 3,
            salvage: true,
            poll_budget: 16,
            ..Self::strict()
        }
    }

    /// Liveness posture: everything [`ScanPolicy::resilient`] does, plus a
    /// 2 s deadline per pipeline inside a 10 s sweep budget and per-pipeline
    /// circuit breakers (3 consecutive failures open, 100 ms cool-down) —
    /// the configuration the supervised sweep engine is built for. A read
    /// stalled forever now costs one pipeline its deadline, not the sweep.
    pub fn supervised() -> Self {
        Self {
            pipeline_budget_ns: Some(2_000_000_000),
            sweep_budget_ns: Some(10_000_000_000),
            breaker_threshold: 3,
            ..Self::resilient()
        }
    }

    /// Adversarial posture: everything [`ScanPolicy::supervised`] does,
    /// plus default [`EvasionHardening`] — randomized scan order, decoy
    /// queries, and 5-pass quorum diffs with flicker scoring.
    pub fn hardened() -> Self {
        Self {
            hardening: Some(EvasionHardening::default()),
            ..Self::supervised()
        }
    }

    /// Sets the retry budget.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the backoff schedule: `base_ns` doubling per attempt, capped at
    /// `max_ns`.
    pub fn with_backoff(mut self, base_ns: u64, max_ns: u64) -> Self {
        self.backoff_base_ns = base_ns;
        self.backoff_max_ns = max_ns;
        self
    }

    /// Sets the stabilization pass budget (minimum 1).
    pub fn with_stabilization(mut self, passes: u32) -> Self {
        self.stabilization_passes = passes.max(1);
        self
    }

    /// Enables or disables salvage-mode parsing.
    pub fn with_salvage(mut self, salvage: bool) -> Self {
        self.salvage = salvage;
        self
    }

    /// Sets the pending-poll schedule: sleep `interval_ns` between polls of
    /// a stalled ([`NtStatus::Pending`]) read, and give up after `budget`
    /// polls when no deadline supervises the read.
    pub fn with_poll(mut self, interval_ns: u64, budget: u32) -> Self {
        self.poll_interval_ns = interval_ns;
        self.poll_budget = budget;
        self
    }

    /// Sets the per-pipeline time budget.
    pub fn with_pipeline_budget(mut self, budget_ns: u64) -> Self {
        self.pipeline_budget_ns = Some(budget_ns);
        self
    }

    /// Sets the whole-sweep time budget.
    pub fn with_sweep_budget(mut self, budget_ns: u64) -> Self {
        self.sweep_budget_ns = Some(budget_ns);
        self
    }

    /// Arms per-pipeline circuit breakers: `threshold` consecutive failures
    /// open a pipeline's breaker, which rejects that pipeline (degrading it
    /// immediately, without touching its truth source) until `cooldown_ns`
    /// elapses on the policy clock. A threshold of 0 disables breakers.
    pub fn with_breaker(mut self, threshold: u32, cooldown_ns: u64) -> Self {
        self.breaker_threshold = threshold;
        self.breaker_cooldown_ns = cooldown_ns;
        self
    }

    /// Arms (or, with `None`, disarms) anti-evasion hardening.
    pub fn with_hardening(mut self, hardening: Option<EvasionHardening>) -> Self {
        self.hardening = hardening;
        self
    }

    /// Replaces the clock the backoff sleeps through — inject a
    /// [`FakeClock`](strider_support::obs::FakeClock) to test the schedule
    /// without real sleeping.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// The clock backoff sleeps through.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The backoff before retry number `attempt` (0-based): `base << attempt`,
    /// saturating, capped at [`backoff_max_ns`](Self::backoff_max_ns).
    pub fn backoff_for(&self, attempt: u32) -> u64 {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.backoff_base_ns
            .saturating_mul(factor)
            .min(self.backoff_max_ns)
    }

    /// Runs `op`, retrying [`NtStatus::DeviceNotReady`] up to
    /// [`retries`](Self::retries) times with exponential backoff. Every other
    /// error — and a genuinely exhausted device — propagates immediately.
    ///
    /// # Errors
    ///
    /// The last error once the retry budget is spent, or any
    /// non-transient error at once.
    pub fn retry<T>(&self, mut op: impl FnMut() -> Result<T, NtStatus>) -> Result<T, NtStatus> {
        let mut attempt = 0;
        loop {
            match op() {
                Err(NtStatus::DeviceNotReady) if attempt < self.retries => {
                    self.clock.sleep_ns(self.backoff_for(attempt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// [`ScanPolicy::retry`] under supervision: additionally polls
    /// [`NtStatus::Pending`] reads (sleeping
    /// [`poll_interval_ns`](Self::poll_interval_ns) between polls) and
    /// consults `sup` before every attempt, so a cancelled or out-of-time
    /// task abandons the read instead of waiting out a stalled device.
    ///
    /// # Errors
    ///
    /// [`NtStatus::Cancelled`]/[`NtStatus::TimedOut`] when supervision
    /// interrupts; [`NtStatus::TimedOut`] when an unsupervised read exhausts
    /// the [`poll_budget`](Self::poll_budget); otherwise as
    /// [`ScanPolicy::retry`].
    pub fn supervised_retry<T>(
        &self,
        sup: &Supervision,
        mut op: impl FnMut() -> Result<T, NtStatus>,
    ) -> Result<T, NtStatus> {
        let mut attempt = 0;
        let mut polls = 0;
        loop {
            if let Err(interrupt) = sup.checkpoint() {
                return Err(interrupt_status(interrupt));
            }
            match op() {
                Err(NtStatus::Pending) => {
                    if sup.deadline().is_none() && polls >= self.poll_budget {
                        return Err(NtStatus::TimedOut);
                    }
                    polls += 1;
                    self.clock.sleep_ns(self.poll_interval_ns);
                }
                Err(NtStatus::DeviceNotReady) if attempt < self.retries => {
                    self.clock.sleep_ns(self.backoff_for(attempt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Runs `scan` until two consecutive passes report the same detection
    /// identity set (then returns the later pass), or the
    /// [`stabilization_passes`](Self::stabilization_passes) budget runs out
    /// (then returns the final pass). With a budget of 1 this is exactly one
    /// scan — no comparison, no extra I/O.
    ///
    /// A real hider lies *consistently*, so its detections survive every
    /// pass; files created or deleted in the gap between the two views of a
    /// single pass flicker between passes. This is the paper's prescription
    /// for live-scan noise: measure twice before believing.
    ///
    /// # Errors
    ///
    /// Propagates the first failing pass.
    pub fn stabilize<E>(
        &self,
        mut scan: impl FnMut() -> Result<DiffReport, E>,
    ) -> Result<DiffReport, E> {
        let mut prev = scan()?;
        for _ in 1..self.stabilization_passes {
            let next = scan()?;
            if identity_set(&next) == identity_set(&prev) {
                return Ok(next);
            }
            prev = next;
        }
        Ok(prev)
    }

    /// The hardened replacement for [`ScanPolicy::stabilize`]: with
    /// [`hardening`](Self::hardening) unset this *is* `stabilize`; with it
    /// set, the scan runs `quorum_passes` times and every finding is
    /// majority-voted.
    ///
    /// Stabilization's weakness is that it trusts agreement: ghostware
    /// that senses the scan and lies consistently for two passes (or tells
    /// the truth for two passes) walks through it. The quorum instead
    /// *counts*: a finding present in `majority()` or more passes keeps
    /// its classification from the latest pass it appeared in; a finding
    /// that appeared in at least one pass but fewer than the majority is
    /// re-labeled [`NoiseClass::Flickering`] with its pass count in the
    /// detail — appear-and-vanish is the signature of scan-aware evasion,
    /// not grounds for dismissal. Phantom identities are unioned across
    /// passes. Metadata comes from the final pass; detections are emitted
    /// in identity order, so a fixed hardening seed yields a byte-identical
    /// report.
    ///
    /// # Errors
    ///
    /// Propagates the first failing pass.
    pub fn quorum_diff<E>(
        &self,
        mut scan: impl FnMut() -> Result<DiffReport, E>,
    ) -> Result<DiffReport, E> {
        let Some(hardening) = self.hardening else {
            return self.stabilize(scan);
        };
        let passes = hardening.passes();
        let majority = hardening.majority();
        let mut tally: std::collections::BTreeMap<String, (u32, Detection)> =
            std::collections::BTreeMap::new();
        let mut phantoms: BTreeSet<String> = BTreeSet::new();
        let mut last = scan()?;
        for pass in 0..passes {
            let report = if pass == 0 {
                &last
            } else {
                last = scan()?;
                &last
            };
            for d in &report.detections {
                let entry = tally
                    .entry(d.identity.clone())
                    .or_insert_with(|| (0, d.clone()));
                entry.0 += 1;
                entry.1 = d.clone();
            }
            phantoms.extend(report.phantom_in_lie.iter().cloned());
        }
        let mut out = last;
        out.detections = tally
            .into_values()
            .map(|(count, mut d)| {
                if count < majority {
                    d.detail = format!(
                        "{} (flickered: seen in {count} of {passes} quorum passes)",
                        d.detail
                    );
                    d.noise = NoiseClass::Flickering;
                }
                d
            })
            .collect();
        out.phantom_in_lie = phantoms.into_iter().collect();
        Ok(out)
    }
}

/// Renders a supervision interrupt as the status the scanners propagate:
/// cancellation becomes [`NtStatus::Cancelled`], an expired deadline
/// becomes [`NtStatus::TimedOut`].
pub fn interrupt_status(interrupt: Interrupt) -> NtStatus {
    match interrupt {
        Interrupt::Cancelled => NtStatus::Cancelled,
        Interrupt::DeadlineExceeded => NtStatus::TimedOut,
    }
}

/// The detection identities (both directions) a pass reported — the
/// agreement criterion for [`ScanPolicy::stabilize`].
fn identity_set(report: &DiffReport) -> BTreeSet<String> {
    report
        .detections
        .iter()
        .map(|d| d.identity.clone())
        .chain(report.phantom_in_lie.iter().cloned())
        .collect()
}

/// How one pipeline of a sweep fared.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PipelineStatus {
    /// Clean truth source, complete scan.
    #[default]
    Ok,
    /// The truth source was damaged but salvage-mode parsing recovered a
    /// usable (partial) view; `defects` counts the skipped structures.
    Salvaged {
        /// Number of [`Defect`](strider_support::fault::Defect)s recorded
        /// while parsing this pipeline's truth source(s).
        defects: u64,
    },
    /// The truth source was unrecoverable; this pipeline reports no
    /// findings, and the rest of the sweep proceeded without it.
    Degraded {
        /// The terminal error, rendered.
        reason: String,
    },
}

impl PipelineStatus {
    /// Whether the pipeline produced a complete, defect-free view.
    pub fn is_ok(&self) -> bool {
        matches!(self, PipelineStatus::Ok)
    }

    /// Whether the pipeline was lost entirely.
    pub fn is_degraded(&self) -> bool {
        matches!(self, PipelineStatus::Degraded { .. })
    }

    /// The salvage defect count (0 unless [`PipelineStatus::Salvaged`]).
    pub fn defect_count(&self) -> u64 {
        match self {
            PipelineStatus::Salvaged { defects } => *defects,
            _ => 0,
        }
    }
}

impl fmt::Display for PipelineStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineStatus::Ok => write!(f, "ok"),
            PipelineStatus::Salvaged { defects } => {
                write!(f, "salvaged ({defects} defects)")
            }
            PipelineStatus::Degraded { reason } => write!(f, "DEGRADED: {reason}"),
        }
    }
}

// Hand-written (rather than `impl_json!`) because the macro does not cover
// named-field enum variants: `Ok` renders as a bare string, the payload
// variants as single-key objects, matching the macro's enum convention.
impl ToJson for PipelineStatus {
    fn to_json(&self) -> JsonValue {
        match self {
            PipelineStatus::Ok => JsonValue::Str("Ok".to_string()),
            PipelineStatus::Salvaged { defects } => JsonValue::Obj(vec![(
                "Salvaged".to_string(),
                JsonValue::Obj(vec![("defects".to_string(), JsonValue::UInt(*defects))]),
            )]),
            PipelineStatus::Degraded { reason } => JsonValue::Obj(vec![(
                "Degraded".to_string(),
                JsonValue::Obj(vec![("reason".to_string(), JsonValue::Str(reason.clone()))]),
            )]),
        }
    }
}

impl FromJson for PipelineStatus {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        match value {
            JsonValue::Str(s) if s == "Ok" => Ok(PipelineStatus::Ok),
            JsonValue::Obj(fields) => match fields.as_slice() {
                [(tag, body)] if tag == "Salvaged" => Ok(PipelineStatus::Salvaged {
                    defects: body.field("defects")?.as_u64()?,
                }),
                [(tag, body)] if tag == "Degraded" => Ok(PipelineStatus::Degraded {
                    reason: body.field("reason")?.as_str()?.to_string(),
                }),
                _ => Err(JsonError("unknown PipelineStatus variant".to_string())),
            },
            _ => Err(JsonError("expected a PipelineStatus".to_string())),
        }
    }
}

/// Per-pipeline health of a sweep: which truth sources were clean, which
/// were salvaged, and which were lost.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SweepHealth {
    /// The hidden-file pipeline (raw MFT / disk-image truth).
    pub files: PipelineStatus,
    /// The hidden-ASEP pipeline (raw hive truth).
    pub registry: PipelineStatus,
    /// The hidden-process pipeline (kernel structures / dump truth).
    pub processes: PipelineStatus,
    /// The hidden-module pipeline (kernel module lists / dump truth).
    pub modules: PipelineStatus,
}

impl SweepHealth {
    /// Whether every pipeline ran clean (no salvage, no degradation).
    pub fn is_all_ok(&self) -> bool {
        self.each().iter().all(|(_, s)| s.is_ok())
    }

    /// Names of the pipelines whose truth source was lost entirely.
    pub fn degraded_pipelines(&self) -> Vec<&'static str> {
        self.each()
            .into_iter()
            .filter(|(_, s)| s.is_degraded())
            .map(|(name, _)| name)
            .collect()
    }

    /// Total salvage defects across all pipelines.
    pub fn total_defects(&self) -> u64 {
        self.each().iter().map(|(_, s)| s.defect_count()).sum()
    }

    fn each(&self) -> [(&'static str, &PipelineStatus); 4] {
        [
            ("files", &self.files),
            ("registry", &self.registry),
            ("processes", &self.processes),
            ("modules", &self.modules),
        ]
    }
}

impl fmt::Display for SweepHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, status) in self.each() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{name}: {status}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Detection;
    use crate::report::{NoiseClass, ResourceKind};
    use crate::snapshot::{ScanMeta, ViewKind};
    use strider_nt_core::Tick;
    use strider_support::obs::FakeClock;
    use strider_support::task::{CancellationToken, Deadline};

    fn report_with(identities: &[&str]) -> DiffReport {
        DiffReport {
            truth_meta: ScanMeta::new(ViewKind::LowLevelMft, Tick(0)),
            lie_meta: ScanMeta::new(ViewKind::HighLevelWin32, Tick(0)),
            detections: identities
                .iter()
                .map(|id| Detection {
                    kind: ResourceKind::File,
                    identity: id.to_string(),
                    detail: id.to_string(),
                    category: None,
                    noise: NoiseClass::Suspicious,
                })
                .collect(),
            phantom_in_lie: Vec::new(),
        }
    }

    #[test]
    fn strict_policy_never_retries() {
        let policy = ScanPolicy::strict();
        let mut calls = 0;
        let result: Result<(), _> = policy.retry(|| {
            calls += 1;
            Err(NtStatus::DeviceNotReady)
        });
        assert_eq!(result, Err(NtStatus::DeviceNotReady));
        assert_eq!(calls, 1);
    }

    #[test]
    fn fault_retry_sleeps_the_exact_backoff_schedule() {
        let clock = Arc::new(FakeClock::default());
        let policy = ScanPolicy::resilient()
            .with_backoff(1_000, 3_000)
            .with_clock(clock.clone());
        let mut calls = 0;
        let value = policy
            .retry(|| {
                calls += 1;
                if calls < 4 {
                    Err(NtStatus::DeviceNotReady)
                } else {
                    Ok(42)
                }
            })
            .unwrap();
        assert_eq!(value, 42);
        assert_eq!(calls, 4);
        // 1000 + 2000 + min(4000, 3000): doubling, capped.
        assert_eq!(clock.now_ns(), 6_000);
    }

    #[test]
    fn fault_retry_gives_up_after_the_budget() {
        let clock = Arc::new(FakeClock::default());
        let policy = ScanPolicy::strict()
            .with_retries(2)
            .with_backoff(10, 1_000)
            .with_clock(clock.clone());
        let mut calls = 0;
        let result: Result<(), _> = policy.retry(|| {
            calls += 1;
            Err(NtStatus::DeviceNotReady)
        });
        assert!(result.is_err());
        assert_eq!(calls, 3, "initial try + 2 retries");
        assert_eq!(clock.now_ns(), 30, "10 + 20");
    }

    #[test]
    fn retry_does_not_mask_permanent_errors() {
        let policy = ScanPolicy::resilient();
        let mut calls = 0;
        let result: Result<(), _> = policy.retry(|| {
            calls += 1;
            Err(NtStatus::AccessDenied)
        });
        assert_eq!(result, Err(NtStatus::AccessDenied));
        assert_eq!(calls, 1, "only DeviceNotReady is transient");
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let policy = ScanPolicy::strict().with_backoff(u64::MAX / 2, u64::MAX);
        assert_eq!(policy.backoff_for(63), u64::MAX);
        assert_eq!(policy.backoff_for(200), u64::MAX);
    }

    #[test]
    fn stabilize_stops_at_first_agreement() {
        let policy = ScanPolicy::strict().with_stabilization(5);
        let mut pass = 0;
        let reports = [
            report_with(&["a", "flicker"]),
            report_with(&["a"]),
            report_with(&["a"]),
            report_with(&["a", "late"]),
        ];
        let out: DiffReport = policy
            .stabilize(|| -> Result<_, NtStatus> {
                let r = reports[pass].clone();
                pass += 1;
                Ok(r)
            })
            .unwrap();
        assert_eq!(pass, 3, "passes 2 and 3 agreed; pass 4 never ran");
        assert_eq!(out.detections.len(), 1);
    }

    #[test]
    fn stabilize_with_budget_one_scans_once() {
        let policy = ScanPolicy::strict();
        let mut pass = 0;
        policy
            .stabilize(|| -> Result<_, NtStatus> {
                pass += 1;
                Ok(report_with(&["x"]))
            })
            .unwrap();
        assert_eq!(pass, 1);
    }

    #[test]
    fn stabilize_returns_final_pass_when_budget_exhausted() {
        let policy = ScanPolicy::strict().with_stabilization(3);
        let mut pass = 0;
        let out: DiffReport = policy
            .stabilize(|| -> Result<_, NtStatus> {
                pass += 1;
                Ok(report_with(&[format!("churn-{pass}").as_str()]))
            })
            .unwrap();
        assert_eq!(pass, 3);
        assert_eq!(out.detections[0].identity, "churn-3");
    }

    #[test]
    fn supervised_retry_polls_a_pending_read_until_it_completes() {
        let clock = Arc::new(FakeClock::default());
        let policy = ScanPolicy::resilient()
            .with_poll(500, 8)
            .with_clock(clock.clone());
        let sup = Supervision::unsupervised();
        let mut calls = 0;
        let value = policy
            .supervised_retry(&sup, || {
                calls += 1;
                if calls < 4 {
                    Err(NtStatus::Pending)
                } else {
                    Ok(9)
                }
            })
            .unwrap();
        assert_eq!(value, 9);
        assert_eq!(calls, 4);
        assert_eq!(clock.now_ns(), 1_500, "three polls at 500 ns each");
    }

    #[test]
    fn supervised_retry_times_out_an_unsupervised_stall_at_the_poll_budget() {
        let clock = Arc::new(FakeClock::default());
        let policy = ScanPolicy::resilient()
            .with_poll(1_000, 3)
            .with_clock(clock.clone());
        let sup = Supervision::unsupervised();
        let mut calls = 0;
        let result: Result<(), _> = policy.supervised_retry(&sup, || {
            calls += 1;
            Err(NtStatus::Pending)
        });
        assert_eq!(result, Err(NtStatus::TimedOut));
        assert_eq!(calls, 4, "initial poll + budget of 3");
        assert_eq!(clock.now_ns(), 3_000);
    }

    #[test]
    fn supervised_retry_abandons_a_forever_stall_at_the_deadline() {
        let clock: Arc<dyn Clock> = Arc::new(FakeClock::default());
        let policy = ScanPolicy::resilient()
            .with_poll(1_000, 0)
            .with_clock(clock.clone());
        let deadline = Deadline::after(clock.clone(), 4_500);
        let sup = Supervision::new(CancellationToken::new(), Some(deadline));
        let result: Result<(), _> = policy.supervised_retry(&sup, || Err(NtStatus::Pending));
        assert_eq!(result, Err(NtStatus::TimedOut));
        assert!(clock.now_ns() >= 4_500, "polled up to the deadline");
        assert!(clock.now_ns() <= 5_000, "but not meaningfully past it");
    }

    #[test]
    fn supervised_retry_observes_cancellation_before_touching_the_device() {
        let policy = ScanPolicy::resilient();
        let token = CancellationToken::new();
        token.cancel();
        let sup = Supervision::new(token, None);
        let mut calls = 0;
        let result: Result<(), _> = policy.supervised_retry(&sup, || {
            calls += 1;
            Ok(())
        });
        assert_eq!(result, Err(NtStatus::Cancelled));
        assert_eq!(calls, 0, "a cancelled task never issues the read");
    }

    #[test]
    fn pipeline_status_round_trips_through_json() {
        let cases = [
            PipelineStatus::Ok,
            PipelineStatus::Salvaged { defects: 7 },
            PipelineStatus::Degraded {
                reason: "operation timed out".into(),
            },
        ];
        for status in cases {
            let back = PipelineStatus::from_json(&status.to_json()).unwrap();
            assert_eq!(back, status);
        }
        assert!(PipelineStatus::from_json(&JsonValue::UInt(3)).is_err());
    }

    #[test]
    fn health_reports_degraded_pipelines_and_defect_totals() {
        let mut health = SweepHealth::default();
        assert!(health.is_all_ok());
        assert!(health.degraded_pipelines().is_empty());
        health.registry = PipelineStatus::Salvaged { defects: 2 };
        health.processes = PipelineStatus::Degraded {
            reason: "device not ready".into(),
        };
        assert!(!health.is_all_ok());
        assert_eq!(health.degraded_pipelines(), vec!["processes"]);
        assert_eq!(health.total_defects(), 2);
        let rendered = health.to_string();
        assert!(
            rendered.contains("registry: salvaged (2 defects)"),
            "{rendered}"
        );
        assert!(rendered.contains("processes: DEGRADED"), "{rendered}");
    }
}
