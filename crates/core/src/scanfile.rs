//! Scan-result files: the byte format the VM flow exchanges.
//!
//! In the paper's VM-based automation (Section 5), the scanning code inside
//! the guest "will save the scan result file and notify the host machine of
//! its completion"; the host then diffs that file against its own
//! outside-the-box scan. This module is that file format: a line-oriented,
//! versioned serialization of a file-scan [`Snapshot`], written inside the
//! guest and parsed by the host with no shared memory.

use crate::snapshot::{FileFact, ScanMeta, Snapshot, ViewKind};
use std::fmt;
use strider_nt_core::Tick;

const HEADER: &str = "GBSCAN1";
/// Field separator: ASCII Unit Separator, which no NT name can contain at
/// the Win32 layer and which never appears in rendered paths.
const SEP: char = '\x1f';

/// Error produced when parsing a scan-result file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanFileError {
    /// The header line is missing or wrong.
    BadHeader,
    /// A record line has the wrong number of fields.
    BadRecord {
        /// 1-based line number.
        line: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
    },
    /// Unknown view tag in the header.
    BadView(String),
}

impl fmt::Display for ScanFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanFileError::BadHeader => write!(f, "bad scan-file header"),
            ScanFileError::BadRecord { line } => write!(f, "bad record on line {line}"),
            ScanFileError::BadNumber { line } => write!(f, "bad number on line {line}"),
            ScanFileError::BadView(v) => write!(f, "unknown view tag {v}"),
        }
    }
}

impl std::error::Error for ScanFileError {}

fn view_tag(view: ViewKind) -> &'static str {
    match view {
        ViewKind::HighLevelWin32 => "hl-win32",
        ViewKind::HighLevelNative => "hl-native",
        ViewKind::LowLevelMft => "ll-mft",
        ViewKind::LowLevelHiveParse => "ll-hive",
        ViewKind::LowLevelApl => "ll-apl",
        ViewKind::LowLevelThreadTable => "ll-threads",
        ViewKind::LowLevelHandleTable => "ll-handles",
        ViewKind::LowLevelKernelModules => "ll-modules",
        ViewKind::OutsideDisk => "out-disk",
        ViewKind::OutsideMountedHives => "out-hives",
        ViewKind::OutsideDump => "out-dump",
    }
}

fn view_from_tag(tag: &str) -> Option<ViewKind> {
    Some(match tag {
        "hl-win32" => ViewKind::HighLevelWin32,
        "hl-native" => ViewKind::HighLevelNative,
        "ll-mft" => ViewKind::LowLevelMft,
        "ll-hive" => ViewKind::LowLevelHiveParse,
        "ll-apl" => ViewKind::LowLevelApl,
        "ll-threads" => ViewKind::LowLevelThreadTable,
        "ll-handles" => ViewKind::LowLevelHandleTable,
        "ll-modules" => ViewKind::LowLevelKernelModules,
        "out-disk" => ViewKind::OutsideDisk,
        "out-hives" => ViewKind::OutsideMountedHives,
        "out-dump" => ViewKind::OutsideDump,
        _ => return None,
    })
}

/// Serializes a file-scan snapshot to scan-file bytes.
pub fn write_scan_file(snapshot: &Snapshot<FileFact>) -> Vec<u8> {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push(SEP);
    out.push_str(view_tag(snapshot.meta.view));
    out.push(SEP);
    out.push_str(&snapshot.meta.taken_at.0.to_string());
    out.push('\n');
    for (key, fact) in snapshot.iter() {
        out.push_str(key);
        out.push(SEP);
        out.push_str(&fact.path);
        out.push(SEP);
        out.push(if fact.is_dir { 'd' } else { 'f' });
        out.push(SEP);
        out.push_str(&fact.size.to_string());
        out.push(SEP);
        match fact.created {
            Some(t) => out.push_str(&t.0.to_string()),
            None => out.push('-'),
        }
        out.push('\n');
    }
    out.into_bytes()
}

/// Parses scan-file bytes back into a snapshot.
///
/// # Errors
///
/// Returns [`ScanFileError`] on any malformed line.
pub fn parse_scan_file(bytes: &[u8]) -> Result<Snapshot<FileFact>, ScanFileError> {
    let text = String::from_utf8_lossy(bytes);
    let mut lines = text.lines();
    let header = lines.next().ok_or(ScanFileError::BadHeader)?;
    let mut parts = header.split(SEP);
    if parts.next() != Some(HEADER) {
        return Err(ScanFileError::BadHeader);
    }
    let view_tag = parts.next().ok_or(ScanFileError::BadHeader)?;
    let view =
        view_from_tag(view_tag).ok_or_else(|| ScanFileError::BadView(view_tag.to_string()))?;
    let taken: u64 = parts
        .next()
        .ok_or(ScanFileError::BadHeader)?
        .parse()
        .map_err(|_| ScanFileError::BadHeader)?;
    let mut snap = Snapshot::new(ScanMeta::new(view, Tick(taken)));
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(SEP).collect();
        let [key, path, kind, size, created] = fields.as_slice() else {
            return Err(ScanFileError::BadRecord { line: line_no });
        };
        let size: u64 = size
            .parse()
            .map_err(|_| ScanFileError::BadNumber { line: line_no })?;
        let created = if *created == "-" {
            None
        } else {
            Some(Tick(
                created
                    .parse()
                    .map_err(|_| ScanFileError::BadNumber { line: line_no })?,
            ))
        };
        snap.insert(
            key.to_string(),
            FileFact {
                path: path.to_string(),
                is_dir: *kind == "d",
                size,
                created,
            },
        );
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::FileScanner;
    use strider_winapi::{ChainEntry, Machine};

    #[test]
    fn roundtrip_preserves_every_fact() {
        let mut m = Machine::with_base_system("t").unwrap();
        let ctx = m.ensure_process("gb.exe", "C:\\gb.exe").unwrap();
        let snap = FileScanner::new()
            .high_scan(&m, &ctx, ChainEntry::Win32)
            .unwrap();
        let bytes = write_scan_file(&snap);
        let parsed = parse_scan_file(&bytes).unwrap();
        assert_eq!(parsed.len(), snap.len());
        assert_eq!(parsed.meta.view, snap.meta.view);
        assert_eq!(parsed.meta.taken_at, snap.meta.taken_at);
        for (key, fact) in snap.iter() {
            assert_eq!(parsed.get(key), Some(fact));
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse_scan_file(b""),
            Err(ScanFileError::BadHeader)
        ));
        assert!(matches!(
            parse_scan_file(b"NOTGB"),
            Err(ScanFileError::BadHeader)
        ));
        let bad_view = "GBSCAN1\x1fwat\x1f3\n".to_string();
        assert!(matches!(
            parse_scan_file(bad_view.as_bytes()),
            Err(ScanFileError::BadView(_))
        ));
        let bad_record = "GBSCAN1\x1fhl-win32\x1f3\nonly-one-field\n".to_string();
        assert!(matches!(
            parse_scan_file(bad_record.as_bytes()),
            Err(ScanFileError::BadRecord { line: 2 })
        ));
        let bad_num = "GBSCAN1\x1fhl-win32\x1f3\nk\x1fp\x1ff\x1fNaN\x1f-\n".to_string();
        assert!(matches!(
            parse_scan_file(bad_num.as_bytes()),
            Err(ScanFileError::BadNumber { line: 2 })
        ));
    }

    #[test]
    fn special_names_survive() {
        let mut snap = Snapshot::new(ScanMeta::new(ViewKind::HighLevelWin32, Tick(9)));
        snap.insert(
            "c:\\weird name. ".to_string(),
            FileFact {
                path: "C:\\Weird Name. ".to_string(),
                is_dir: false,
                size: 7,
                created: Some(Tick(4)),
            },
        );
        let parsed = parse_scan_file(&write_scan_file(&snap)).unwrap();
        assert_eq!(
            parsed.get("c:\\weird name. ").unwrap().path,
            "C:\\Weird Name. "
        );
    }
}
