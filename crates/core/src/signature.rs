//! A signature-based on-demand scanner (the eTrust stand-in) and the
//! Section 5 "dilemma" combination.
//!
//! The paper's demo: a Hacker Defender-infected machine running an
//! anti-virus scanner *with the correct signatures* still reports clean,
//! because the rootkit hides its files from the scanner's enumeration.
//! Injecting the GhostBuster diff into the scanner process restores
//! detection — and creates a dilemma: hide and be caught by the diff, or
//! don't hide and be caught by the signature.

use crate::files::FileScanner;
use strider_nt_core::{NtPath, NtStatus};
use strider_winapi::{CallContext, ChainEntry, Machine};

/// A known-bad content signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Detection name.
    pub name: String,
    /// Byte pattern looked for in file contents.
    pub pattern: Vec<u8>,
}

/// One signature match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureHit {
    /// The matched signature's name.
    pub signature: String,
    /// The infected file.
    pub path: String,
}

/// The on-demand signature scanner. It discovers files through the same
/// (hookable) enumeration APIs as any other program — its blind spot.
#[derive(Debug, Clone, Default)]
pub struct SignatureScanner {
    signatures: Vec<Signature>,
}

impl SignatureScanner {
    /// Creates a scanner with no signatures.
    pub fn new() -> Self {
        Self::default()
    }

    /// A database carrying signatures for the reproduction's corpus.
    pub fn with_default_database() -> Self {
        let mut s = Self::new();
        for (name, pattern) in [
            ("Win32/HackerDefender", &b"MZ hxdef100"[..]),
            ("Win32/HackerDefender.drv", b"MZ hxdefdrv"),
            ("Win32/Vanquish", b"MZ vanquish"),
            ("Win32/Urbin", b"MZ Urbin payload"),
            ("Win32/Mersting", b"MZ Mersting payload"),
            ("Win32/Aphex", b"MZ aphex"),
            ("Win32/Berbew", b"MZ berbew"),
            ("Win32/Sneaky", b"EVILSIG"),
        ] {
            s.add_signature(name, pattern);
        }
        s
    }

    /// Adds a signature.
    pub fn add_signature(&mut self, name: &str, pattern: &[u8]) {
        self.signatures.push(Signature {
            name: name.to_string(),
            pattern: pattern.to_vec(),
        });
    }

    /// Number of signatures loaded.
    pub fn signature_count(&self) -> usize {
        self.signatures.len()
    }

    /// On-demand scan as the given process: enumerate files through the API
    /// chain, read each file, and match signatures.
    ///
    /// # Errors
    ///
    /// Propagates enumeration failures.
    pub fn scan(
        &self,
        machine: &Machine,
        ctx: &CallContext,
    ) -> Result<Vec<SignatureHit>, NtStatus> {
        let listing = FileScanner::new().high_scan(machine, ctx, ChainEntry::Win32)?;
        let mut hits = Vec::new();
        for (_, fact) in listing.iter() {
            if fact.is_dir {
                continue;
            }
            let Ok(path) = fact.path.parse::<NtPath>() else {
                continue;
            };
            let Ok(content) = machine.volume().read_file(&path) else {
                continue;
            };
            for sig in &self.signatures {
                if content
                    .windows(sig.pattern.len())
                    .any(|w| w == sig.pattern.as_slice())
                {
                    hits.push(SignatureHit {
                        signature: sig.name.clone(),
                        path: fact.path.clone(),
                    });
                }
            }
        }
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::FileScanner;
    use strider_ghostware::{Ghostware, HackerDefender};

    fn inocit_ctx(machine: &mut Machine) -> CallContext {
        machine
            .ensure_process("InocIT.exe", "C:\\Program Files\\eTrust\\InocIT.exe")
            .unwrap()
    }

    #[test]
    fn signatures_catch_non_hiding_malware() {
        let mut m = Machine::with_base_system("victim").unwrap();
        // Drop the hxdef files but install no hooks: "don't hide".
        m.volume_mut()
            .create_file(
                &"C:\\windows\\system32\\hxdef100.exe".parse().unwrap(),
                b"MZ hxdef100",
            )
            .unwrap();
        let ctx = inocit_ctx(&mut m);
        let hits = SignatureScanner::with_default_database()
            .scan(&m, &ctx)
            .unwrap();
        assert!(hits.iter().any(|h| h.signature.contains("HackerDefender")));
    }

    #[test]
    fn hiding_defeats_signatures_but_not_the_injected_diff() {
        let mut m = Machine::with_base_system("victim").unwrap();
        HackerDefender::default().infect(&mut m).unwrap();
        let ctx = inocit_ctx(&mut m);

        // The scanner has the right signatures yet reports clean.
        let scanner = SignatureScanner::with_default_database();
        let hits = scanner.scan(&m, &ctx).unwrap();
        assert!(
            !hits.iter().any(|h| h.signature.contains("HackerDefender")),
            "enumeration hiding blinds the signature scanner"
        );

        // Injecting the GhostBuster diff into InocIT.exe restores detection.
        let files = FileScanner::new();
        let truth = files.low_scan(&m).unwrap();
        let lie = files.high_scan(&m, &ctx, ChainEntry::Win32).unwrap();
        let report = files.diff(&truth, &lie);
        assert!(report
            .net_detections()
            .iter()
            .any(|d| d.detail.contains("hxdef100.exe")));
    }

    #[test]
    fn the_dilemma_no_escape() {
        // Either branch of the ghostware's choice loses.
        let scanner = SignatureScanner::with_default_database();

        // Branch 1: hide -> cross-view diff catches it (previous test).
        // Branch 2: don't hide -> signature catches it.
        let mut m = Machine::with_base_system("victim").unwrap();
        let hd = HackerDefender::default();
        hd.infect(&mut m).unwrap();
        m.remove_software("HackerDefender"); // stop hiding, files remain
        let ctx = inocit_ctx(&mut m);
        let hits = scanner.scan(&m, &ctx).unwrap();
        assert!(hits.iter().any(|h| h.signature.contains("HackerDefender")));
    }

    #[test]
    fn clean_machine_yields_no_hits() {
        let mut m = Machine::with_base_system("clean").unwrap();
        let ctx = inocit_ctx(&mut m);
        let hits = SignatureScanner::with_default_database()
            .scan(&m, &ctx)
            .unwrap();
        assert!(hits.is_empty(), "{hits:?}");
    }
}
