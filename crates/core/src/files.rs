//! Hidden-file detection (paper, Section 2).

use crate::diff::cross_view_diff;
use crate::harden::{file_scan_decoys, DecoyPump, PassCounter};
use crate::instrument::{record_chain, record_view_entries, LatencyProbe};
use crate::policy::{interrupt_status, ScanPolicy};
use crate::report::{Detection, DiffReport, FileCategory, NoiseClass, NoiseFilter, ResourceKind};
use crate::snapshot::{FileFact, ScanMeta, Snapshot, ViewKind};
use strider_nt_core::{NtPath, NtStatus, Tick};
use strider_ntfs::VolumeImage;
use strider_support::obs::{MaybeSpan, Telemetry};
use strider_support::task::Supervision;
use strider_winapi::{CallContext, ChainEntry, ChainStats, DiskImage, Machine, Query, Row};

/// The hidden-file scanner: high-level API walks, low-level MFT parses,
/// and outside-the-box disk-image scans.
#[derive(Debug, Clone, Default)]
pub struct FileScanner {
    noise: NoiseFilter,
    detect_ads: bool,
    telemetry: Option<Telemetry>,
    policy: ScanPolicy,
    supervision: Supervision,
    pass_counter: PassCounter,
}

impl FileScanner {
    /// Creates a scanner with the standard noise filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the noise filter.
    pub fn with_noise_filter(mut self, noise: NoiseFilter) -> Self {
        self.noise = noise;
        self
    }

    /// Threads a telemetry registry through every scan: phases become
    /// spans, per-view entry counts become counters, and each high-level
    /// query chain traversal is traced so a hooked call's divergence level
    /// is visible as a span attribute.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Replaces the resilience policy: retries for transient low-level read
    /// failures, and salvage-mode parsing of damaged volume images (each
    /// skipped structure is recorded as a defect in the scan's
    /// [`IoStats`](strider_nt_core::IoStats) and, when telemetry is
    /// attached, the `files.defects` counter).
    pub fn with_policy(mut self, policy: ScanPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Places the scanner under `supervision`: every directory-walk
    /// iteration and phase boundary checks the cancellation token and
    /// deadline, and stalled ([`NtStatus::Pending`]) low-level reads are
    /// abandoned when supervision interrupts. The default is
    /// [`Supervision::unsupervised`] — never interrupted.
    pub fn with_supervision(mut self, supervision: Supervision) -> Self {
        self.supervision = supervision;
        // A re-supervised scanner starts a fresh pipeline run: its quorum
        // passes must index hardening streams from 0 again, so sweep
        // results stay seed-deterministic however runs are scheduled.
        self.pass_counter = PassCounter::default();
        self
    }

    /// Enables alternate-data-stream detection: the low-level views report
    /// each named stream as a pseudo-entry (`host.txt:stream`), which the
    /// Win32 enumeration never shows — one of the "beyond ghostware" hiding
    /// places the paper's conclusion lists as future work.
    pub fn with_ads_detection(mut self) -> Self {
        self.detect_ads = true;
        self
    }

    /// The high-level scan: a recursive `dir /s /b`-style walk through the
    /// (possibly hooked) API chain. Directories hidden from enumeration are
    /// never descended into, exactly like the real tool.
    ///
    /// # Errors
    ///
    /// Propagates API failures other than vanishing directories.
    pub fn high_scan(
        &self,
        machine: &Machine,
        ctx: &CallContext,
        entry: ChainEntry,
    ) -> Result<Snapshot<FileFact>, NtStatus> {
        let view = match entry {
            ChainEntry::Win32 => ViewKind::HighLevelWin32,
            ChainEntry::Native => ViewKind::HighLevelNative,
        };
        let span = MaybeSpan::start(self.telemetry.as_ref(), "files.high_scan");
        let probe = LatencyProbe::new(self.telemetry.as_ref(), "files.dir_query_ns");
        let mut chain = ChainStats::default();
        let mut snap = Snapshot::new(ScanMeta::new(view, machine.now()));
        // Hardened scans shuffle descent order per pass and interleave
        // decoy queries, so the walk neither enumerates in a predictable
        // order nor emits the same-kind burst ghostware fingerprints.
        let mut order_rng = self
            .policy
            .hardening
            .map(|h| h.pass_stream("files", self.pass_counter.next()));
        let mut pump = match self.policy.hardening {
            Some(h) => DecoyPump::new(h.decoy_every, file_scan_decoys()),
            None => DecoyPump::disabled(),
        };
        let mut stack = vec![NtPath::root_of(machine.volume().label())];
        while let Some(dir) = stack.pop() {
            self.supervision.checkpoint().map_err(interrupt_status)?;
            snap.meta.io.record_api_call();
            snap.meta.io.record_seek();
            let query = Query::DirectoryEnum { path: dir };
            let query_started = probe.start();
            let rows = if span.is_recording() {
                match machine.query_traced(ctx, &query, entry) {
                    Ok((rows, trace)) => {
                        chain.absorb(&trace);
                        rows
                    }
                    // A directory deleted mid-walk is normal churn.
                    Err(NtStatus::ObjectNameNotFound) => continue,
                    Err(e) => return Err(e),
                }
            } else {
                match machine.query(ctx, &query, entry) {
                    Ok(rows) => rows,
                    // A directory deleted mid-walk is normal churn, not an error.
                    Err(NtStatus::ObjectNameNotFound) => continue,
                    Err(e) => return Err(e),
                }
            };
            probe.finish(query_started);
            pump.tick(machine, ctx);
            snap.meta.io.record_entries(rows.len() as u64);
            let mut subdirs = Vec::new();
            for row in rows {
                if let Row::File(f) = row {
                    if f.is_dir {
                        subdirs.push(f.path.clone());
                    }
                    snap.insert(
                        f.path.fold_key(),
                        FileFact {
                            path: f.path.to_string(),
                            is_dir: f.is_dir,
                            size: f.size,
                            created: None,
                        },
                    );
                }
            }
            if let Some(rng) = &mut order_rng {
                rng.shuffle(&mut subdirs);
            }
            stack.extend(subdirs);
        }
        record_view_entries(self.telemetry.as_ref(), &span, "files", view, snap.len());
        if pump.issued() > 0 {
            if let Some(t) = &self.telemetry {
                t.counter_add("files.decoys", pump.issued());
            }
        }
        span.set_attr("api_calls", snap.meta.io.api_calls);
        record_chain(&span, &chain);
        Ok(snap)
    }

    /// The low-level inside-the-box scan: read the raw volume image (which
    /// privileged ghostware may tamper with — a truth *approximation*) and
    /// parse the MFT directly, reconstructing paths from parent references.
    ///
    /// # Errors
    ///
    /// Fails when the read fails permanently (transient failures are
    /// retried per the [`ScanPolicy`]) or the image does not parse and
    /// salvage is off.
    pub fn low_scan(&self, machine: &Machine) -> Result<Snapshot<FileFact>, NtStatus> {
        let bytes = self
            .policy
            .supervised_retry(&self.supervision, || machine.try_read_raw_volume_image())?;
        self.scan_image_bytes(&bytes, ViewKind::LowLevelMft, machine.now())
    }

    /// The outside-the-box scan: parse a clean-boot disk image.
    ///
    /// # Errors
    ///
    /// Fails when the image does not parse.
    pub fn outside_scan(&self, image: &DiskImage) -> Result<Snapshot<FileFact>, NtStatus> {
        self.scan_image_bytes(&image.volume_image, ViewKind::OutsideDisk, image.taken_at)
    }

    fn scan_image_bytes(
        &self,
        bytes: &[u8],
        view: ViewKind,
        taken_at: Tick,
    ) -> Result<Snapshot<FileFact>, NtStatus> {
        let span_name = match view {
            ViewKind::OutsideDisk => "files.outside_scan",
            _ => "files.low_scan",
        };
        let span = MaybeSpan::start(self.telemetry.as_ref(), span_name);
        let (raw, defects) = if self.policy.salvage {
            let salvaged = VolumeImage::parse_salvage(bytes);
            (salvaged.value, salvaged.defects)
        } else {
            let raw =
                VolumeImage::parse(bytes).map_err(|e| NtStatus::CorruptStructure(e.to_string()))?;
            (raw, Vec::new())
        };
        let mut snap = Snapshot::new(ScanMeta::new(view, taken_at));
        snap.meta.io.record_sequential(raw.image_len());
        if !defects.is_empty() {
            snap.meta.io.record_defects(defects.len() as u64);
            span.set_attr("defects", defects.len());
            if let Some(t) = &self.telemetry {
                t.counter_add("files.defects", defects.len() as u64);
            }
        }
        for (path, entry) in raw.all_paths() {
            snap.meta.io.record_entries(1);
            if self.detect_ads {
                for ads in &entry.ads_names {
                    let pseudo = format!("{}:{}", path, ads.to_display_string());
                    snap.insert(
                        format!(
                            "{}:{}",
                            path.fold_key(),
                            String::from_utf16_lossy(&ads.fold_key())
                        ),
                        FileFact {
                            path: pseudo,
                            is_dir: false,
                            size: 0,
                            created: Some(entry.created),
                        },
                    );
                }
            }
            snap.insert(
                path.fold_key(),
                FileFact {
                    path: path.to_string(),
                    is_dir: entry.is_directory(),
                    size: entry.data_len,
                    created: Some(entry.created),
                },
            );
        }
        record_view_entries(self.telemetry.as_ref(), &span, "files", view, snap.len());
        span.set_attr("bytes_read", snap.meta.io.bytes_read);
        Ok(snap)
    }

    /// Diffs a truth-side snapshot against the high-level lie, classifying
    /// each finding (Figure 3 categories and noise classes).
    pub fn diff(&self, truth: &Snapshot<FileFact>, lie: &Snapshot<FileFact>) -> DiffReport {
        let span = MaybeSpan::start(self.telemetry.as_ref(), "files.diff");
        let lie_taken = lie.meta.taken_at;
        let mut report = {
            let _cross = MaybeSpan::start(self.telemetry.as_ref(), "files.cross_view_diff");
            cross_view_diff(truth, lie, |key, fact| Detection {
                kind: ResourceKind::File,
                identity: key.to_string(),
                detail: fact.path.clone(),
                category: (!fact.is_dir).then(|| FileCategory::from_path(&fact.path)),
                noise: NoiseClass::Suspicious,
            })
        };
        {
            let _noise = MaybeSpan::start(self.telemetry.as_ref(), "files.noise_classification");
            for detection in &mut report.detections {
                let mut noise = self.noise.classify_path(&detection.detail);
                if noise == NoiseClass::Suspicious {
                    // Anything created after the lie-side scan cannot have
                    // been hidden from it — it is scan-gap churn.
                    let created = truth.get(&detection.identity).and_then(|f| f.created);
                    if created.is_some_and(|c| c > lie_taken) {
                        noise = NoiseClass::LikelyServiceChurn;
                    }
                }
                detection.noise = noise;
            }
        }
        span.set_attr("hidden", report.net_detections().len());
        span.set_attr("noise", report.noise_detections().len());
        report
    }

    /// One-call inside-the-box hidden-file detection.
    ///
    /// # Errors
    ///
    /// Propagates scan failures.
    pub fn scan_inside(
        &self,
        machine: &Machine,
        ctx: &CallContext,
    ) -> Result<DiffReport, NtStatus> {
        let _span = MaybeSpan::start(self.telemetry.as_ref(), "files.scan_inside");
        let lie = self.high_scan(machine, ctx, ChainEntry::Win32)?;
        self.supervision.checkpoint().map_err(interrupt_status)?;
        let truth = self.low_scan(machine)?;
        Ok(self.diff(&truth, &lie))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_ghostware::{Ghostware, HackerDefender, NamingTrick, Vanquish};

    fn gb_ctx(machine: &mut Machine) -> CallContext {
        machine
            .ensure_process("ghostbuster.exe", "C:\\ghostbuster.exe")
            .unwrap()
    }

    #[test]
    fn clean_machine_has_zero_findings() {
        let mut m = Machine::with_base_system("clean").unwrap();
        let ctx = gb_ctx(&mut m);
        let report = FileScanner::new().scan_inside(&m, &ctx).unwrap();
        assert!(!report.has_detections(), "{report}");
    }

    #[test]
    fn hxdef_files_detected_and_categorized() {
        let mut m = Machine::with_base_system("victim").unwrap();
        let inf = HackerDefender::default().infect(&mut m).unwrap();
        let ctx = gb_ctx(&mut m);
        let report = FileScanner::new().scan_inside(&m, &ctx).unwrap();
        let found: Vec<&str> = report
            .net_detections()
            .iter()
            .map(|d| d.detail.as_str())
            .collect();
        for hidden in &inf.hidden_files {
            assert!(
                found.contains(&hidden.to_string().as_str()),
                "missing {hidden} in {found:?}"
            );
        }
        let (bin, data, _) = report.category_counts();
        assert_eq!(bin, 2, "exe + sys");
        assert_eq!(data, 1, "ini");
    }

    #[test]
    fn naming_tricks_detected_without_any_hook() {
        let mut m = Machine::with_base_system("victim").unwrap();
        let inf = NamingTrick.infect(&mut m).unwrap();
        let ctx = gb_ctx(&mut m);
        let report = FileScanner::new().scan_inside(&m, &ctx).unwrap();
        let found: Vec<String> = report
            .net_detections()
            .iter()
            .map(|d| d.detail.clone())
            .collect();
        for hidden in &inf.hidden_files {
            assert!(
                found.contains(&hidden.to_string()),
                "missing {hidden} in {found:?}"
            );
        }
    }

    #[test]
    fn hidden_directory_children_are_detected() {
        let mut m = Machine::with_base_system("victim").unwrap();
        Vanquish::default().infect(&mut m).unwrap();
        // Files inside a *vanquish* directory are unreachable by the walk.
        m.volume_mut()
            .mkdir_p(&"C:\\vanquish-stash".parse().unwrap())
            .unwrap();
        m.volume_mut()
            .create_file(&"C:\\vanquish-stash\\loot.txt".parse().unwrap(), b"x")
            .unwrap();
        let ctx = gb_ctx(&mut m);
        let report = FileScanner::new().scan_inside(&m, &ctx).unwrap();
        assert!(report
            .net_detections()
            .iter()
            .any(|d| d.detail == "C:\\vanquish-stash\\loot.txt"));
    }

    #[test]
    fn native_high_scan_catches_win32_only_hiders() {
        // Urbin hooks only the IAT: the Win32 walk lies, the native walk
        // does not, so diffing native-vs-win32 already exposes it.
        let mut m = Machine::with_base_system("victim").unwrap();
        strider_ghostware::Urbin.infect(&mut m).unwrap();
        let ctx = gb_ctx(&mut m);
        let s = FileScanner::new();
        let win32 = s.high_scan(&m, &ctx, ChainEntry::Win32).unwrap();
        let native = s.high_scan(&m, &ctx, ChainEntry::Native).unwrap();
        let report = s.diff(&native, &win32);
        assert!(report
            .net_detections()
            .iter()
            .any(|d| d.detail.contains("msvsres")));
    }

    #[test]
    fn outside_scan_flags_reboot_churn_as_noise() {
        let mut m = Machine::with_base_system("victim").unwrap();
        strider_workload::services::install_standard_services(&mut m, false);
        m.tick(1);
        let ctx = gb_ctx(&mut m);
        let s = FileScanner::new();
        let lie = s.high_scan(&m, &ctx, ChainEntry::Win32).unwrap();
        m.tick(150); // the WinPE reboot window
        let image = m.snapshot_disk().unwrap();
        let truth = s.outside_scan(&image).unwrap();
        let report = s.diff(&truth, &lie);
        assert!(report.net_detections().is_empty(), "no real ghostware");
        assert!(
            !report.noise_detections().is_empty(),
            "service churn must be present and classified"
        );
    }

    #[test]
    fn ads_detection_reveals_streams_only_when_enabled() {
        let mut m = Machine::with_base_system("victim").unwrap();
        strider_ghostware::AdsHider::default()
            .infect(&mut m)
            .unwrap();
        let ctx = gb_ctx(&mut m);
        // Default scanner: streams are out of scope, nothing to report.
        let plain = FileScanner::new().scan_inside(&m, &ctx).unwrap();
        assert!(!plain.has_detections(), "{plain}");
        // ADS-aware scanner: both streams are findings.
        let ads = FileScanner::new().with_ads_detection();
        let report = ads.scan_inside(&m, &ctx).unwrap();
        let details: Vec<&str> = report
            .net_detections()
            .iter()
            .map(|d| d.detail.as_str())
            .collect();
        assert!(details.contains(&"C:\\windows\\system32\\calc.txt:payload.exe"));
        assert!(details.contains(&"C:\\windows\\system32\\calc.txt:keys.log"));
        assert_eq!(report.net_detections().len(), 2);
    }

    #[test]
    fn ads_detection_is_quiet_on_stream_free_machines() {
        let mut m = Machine::with_base_system("clean").unwrap();
        let ctx = gb_ctx(&mut m);
        let report = FileScanner::new()
            .with_ads_detection()
            .scan_inside(&m, &ctx)
            .unwrap();
        assert!(!report.has_detections(), "{report}");
    }

    #[test]
    fn telemetry_records_phases_and_divergence_level() {
        let mut m = Machine::with_base_system("victim").unwrap();
        HackerDefender::default().infect(&mut m).unwrap();
        let ctx = gb_ctx(&mut m);
        let telemetry = strider_support::obs::Telemetry::new();
        let report = FileScanner::new()
            .with_telemetry(telemetry.clone())
            .scan_inside(&m, &ctx)
            .unwrap();
        assert!(report.has_detections());
        let tel = telemetry.report();
        let scan = tel.find_span("files.scan_inside").expect("root span");
        let high = scan.child("files.high_scan").expect("high phase");
        assert_eq!(
            high.attr("diverted_at").map(ToString::to_string),
            Some("NtdllCode".to_string()),
            "the hxdef detour level is attributed"
        );
        assert!(scan.child("files.low_scan").is_some());
        let diff = scan.child("files.diff").expect("diff phase");
        assert!(diff.child("files.noise_classification").is_some());
        assert!(tel.counters["files.entries.LowLevelMft"] > 0);
        assert!(
            tel.counters["files.entries.LowLevelMft"]
                > tel.counters["files.entries.HighLevelWin32"],
            "the lie saw fewer files than the truth"
        );
        let dir_queries = tel
            .histograms
            .get("files.dir_query_ns")
            .expect("per-directory query latency sketch");
        assert!(
            dir_queries.count() > 1,
            "one latency sample per directory walked"
        );
    }

    #[test]
    fn io_stats_are_recorded() {
        let mut m = Machine::with_base_system("t").unwrap();
        let ctx = gb_ctx(&mut m);
        let s = FileScanner::new();
        let high = s.high_scan(&m, &ctx, ChainEntry::Win32).unwrap();
        assert!(high.meta.io.api_calls > 5, "one call per directory");
        let low = s.low_scan(&m).unwrap();
        assert!(low.meta.io.bytes_read > 1000, "sequential image read");
    }
}
