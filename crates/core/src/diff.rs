//! The cross-view diff engine.
//!
//! "The goal of a cross-view diff is to detect hiding behavior by comparing
//! two snapshots of the same state at exactly the same point in time, but
//! from two different points of view (one through the ghostware and one
//! not)" (paper, Introduction). The engine itself is resource-agnostic: it
//! compares identity-keyed snapshots and hands each truth-only entry to a
//! caller-provided detection builder.

use crate::report::{Detection, DiffReport};
use crate::snapshot::Snapshot;

/// Diffs a truth-side snapshot against a lie-side snapshot.
///
/// * Every identity in `truth` missing from `lie` becomes a [`Detection`]
///   via `build` — the hidden resources.
/// * Every identity in `lie` missing from `truth` is reported in
///   [`DiffReport::phantom_in_lie`]; phantoms appear when a view renames an
///   entry (e.g. Win32 truncating a NUL-embedded Registry name) rather than
///   dropping it.
pub fn cross_view_diff<T, F>(truth: &Snapshot<T>, lie: &Snapshot<T>, build: F) -> DiffReport
where
    F: Fn(&str, &T) -> Detection,
{
    let mut detections = Vec::new();
    for (key, fact) in truth.iter() {
        if !lie.contains(key) {
            detections.push(build(key, fact));
        }
    }
    let mut phantom_in_lie = Vec::new();
    for (key, _) in lie.iter() {
        if !truth.contains(key) {
            phantom_in_lie.push(key.clone());
        }
    }
    DiffReport {
        truth_meta: truth.meta.clone(),
        lie_meta: lie.meta.clone(),
        detections,
        phantom_in_lie,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{NoiseClass, ResourceKind};
    use crate::snapshot::{ScanMeta, ViewKind};
    use strider_nt_core::Tick;

    fn snap(view: ViewKind, keys: &[&str]) -> Snapshot<String> {
        let mut s = Snapshot::new(ScanMeta::new(view, Tick(1)));
        for k in keys {
            s.insert(k.to_string(), k.to_string());
        }
        s
    }

    fn build(key: &str, fact: &str) -> Detection {
        Detection {
            kind: ResourceKind::File,
            identity: key.to_string(),
            detail: fact.to_string(),
            category: None,
            noise: NoiseClass::Suspicious,
        }
    }

    #[test]
    fn identical_snapshots_produce_empty_report() {
        let t = snap(ViewKind::LowLevelMft, &["a", "b"]);
        let l = snap(ViewKind::HighLevelWin32, &["a", "b"]);
        let r = cross_view_diff(&t, &l, |k, f: &String| build(k, f));
        assert!(!r.has_detections());
        assert!(r.phantom_in_lie.is_empty());
    }

    #[test]
    fn truth_only_entries_are_detections() {
        let t = snap(ViewKind::LowLevelMft, &["a", "b", "hidden"]);
        let l = snap(ViewKind::HighLevelWin32, &["a", "b"]);
        let r = cross_view_diff(&t, &l, |k, f: &String| build(k, f));
        assert_eq!(r.detections.len(), 1);
        assert_eq!(r.detections[0].identity, "hidden");
    }

    #[test]
    fn lie_only_entries_are_phantoms() {
        let t = snap(ViewKind::LowLevelMft, &["a"]);
        let l = snap(ViewKind::HighLevelWin32, &["a", "mirage"]);
        let r = cross_view_diff(&t, &l, |k, f: &String| build(k, f));
        assert!(r.detections.is_empty());
        assert_eq!(r.phantom_in_lie, vec!["mirage".to_string()]);
    }

    #[test]
    fn renamed_identity_shows_on_both_sides() {
        // The NUL-truncation case: truth has "run|e\0x", lie has "run|e".
        let t = snap(ViewKind::LowLevelHiveParse, &["run|e\\0x"]);
        let l = snap(ViewKind::HighLevelWin32, &["run|e"]);
        let r = cross_view_diff(&t, &l, |k, f: &String| build(k, f));
        assert_eq!(r.detections.len(), 1);
        assert_eq!(r.phantom_in_lie.len(), 1);
    }
}
