//! The GhostBuster facade: one-call sweeps, outside-the-box flows, and
//! remediation.

use crate::files::FileScanner;
use crate::policy::{PipelineStatus, ScanPolicy, SweepHealth};
use crate::process::{AdvancedSource, ProcessScanner};
use crate::registry::{OutsideRegistryMode, RegistryScanner};
use crate::report::DiffReport;
use crate::snapshot::{ScanMeta, ViewKind};
use std::fmt;
use strider_hive::prelude::AsepHook;
use strider_kernel::MemoryDump;
use strider_nt_core::{NtStatus, NtString, Tick};
use strider_support::obs::{FlightDump, MaybeSpan, Telemetry, TelemetryReport};
use strider_support::prof::PerfReport;
use strider_support::sync::run_isolated;
use strider_support::task::{
    BreakerState, CancellationToken, CircuitBreaker, Deadline, Supervision,
};
use strider_winapi::{CallContext, ChainEntry, Machine};

/// The image name GhostBuster runs under — itself a targetable artifact,
/// which is what motivates the DLL-injection extension.
pub const GHOSTBUSTER_IMAGE: &str = "ghostbuster.exe";

/// Results of a full sweep across all four resource types.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Hidden-file findings.
    pub files: DiffReport,
    /// Hidden-ASEP findings.
    pub hooks: DiffReport,
    /// Hidden-process findings.
    pub processes: DiffReport,
    /// Hidden-module findings.
    pub modules: DiffReport,
    /// Per-pipeline health: which truth sources were clean, salvaged, or
    /// lost entirely. A degraded pipeline contributes an empty [`DiffReport`]
    /// above — check here before trusting its silence.
    pub health: SweepHealth,
    /// The telemetry captured during the sweep, when the detector was built
    /// with [`GhostBuster::with_telemetry`].
    pub telemetry: Option<TelemetryReport>,
    /// Flight-recorder black boxes, one per pipeline that ended degraded
    /// (timed out, cancelled, panicked, breaker-rejected, or truth-source
    /// lost): the recorder tail snapshotted at the failure, ending with
    /// the failure itself. Empty when every pipeline ran clean or no
    /// telemetry was attached.
    pub black_boxes: Vec<(String, FlightDump)>,
}

impl SweepReport {
    /// The black box snapshotted when `pipeline` degraded, if any.
    pub fn black_box(&self, pipeline: &str) -> Option<&FlightDump> {
        self.black_boxes
            .iter()
            .find(|(name, _)| name == pipeline)
            .map(|(_, dump)| dump)
    }

    /// Whether anything suspicious (post-noise-classification) was found.
    pub fn is_infected(&self) -> bool {
        !self.files.net_detections().is_empty()
            || !self.hooks.net_detections().is_empty()
            || !self.processes.net_detections().is_empty()
            || !self.modules.net_detections().is_empty()
    }

    /// Total suspicious findings.
    pub fn suspicious_count(&self) -> usize {
        self.files.net_detections().len()
            + self.hooks.net_detections().len()
            + self.processes.net_detections().len()
            + self.modules.net_detections().len()
    }

    /// Wall time each pipeline spent scanning (summed across stabilization
    /// passes), keyed by pipeline name, read from the sweep's telemetry
    /// span forest. Empty when the sweep ran without telemetry; a pipeline
    /// that never scanned (restored from a checkpoint, breaker-rejected
    /// before its span opened) reports 0.
    pub fn pipeline_durations(&self) -> std::collections::BTreeMap<String, u64> {
        let mut durations = std::collections::BTreeMap::new();
        if let Some(report) = &self.telemetry {
            let totals = report.phase_totals();
            for pipeline in ["files", "registry", "processes", "modules"] {
                let span_name = format!("{pipeline}.scan_inside");
                durations.insert(
                    pipeline.to_string(),
                    totals.get(&span_name).map_or(0, |t| t.total_ns),
                );
            }
        }
        durations
    }

    /// Total findings classified [`NoiseClass::Flickering`](crate::report::NoiseClass::Flickering) — resources
    /// that appeared and vanished across quorum passes, the signature of
    /// scan-aware evasive hiding. Zero on any sweep run without
    /// [`EvasionHardening`](crate::policy::EvasionHardening) (single-shot
    /// diffs cannot observe flicker).
    pub fn flicker_score(&self) -> usize {
        self.files.flicker_score()
            + self.hooks.flicker_score()
            + self.processes.flicker_score()
            + self.modules.flicker_score()
    }

    /// The sweep's critical-path attribution report — self-time hotspots,
    /// the longest root-to-leaf span chain, and the work/wait/alloc
    /// decomposition — computed over the captured telemetry span forest.
    /// `label` names the analysis (and any `SCAN_PERF_<label>.json` export
    /// via [`PerfReport::write_json`]). `None` when the sweep ran without
    /// telemetry: there is no span tree to attribute.
    pub fn perf_report(&self, label: &str) -> Option<PerfReport> {
        self.telemetry
            .as_ref()
            .map(|report| PerfReport::from_telemetry(label, report))
    }

    /// Total noise-classified findings (false-positive candidates).
    pub fn noise_count(&self) -> usize {
        self.files.noise_detections().len()
            + self.hooks.noise_detections().len()
            + self.processes.noise_detections().len()
            + self.modules.noise_detections().len()
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "GhostBuster sweep: {} suspicious, {} noise",
            self.suspicious_count(),
            self.noise_count()
        )?;
        // Output is byte-identical to the pre-policy report when every
        // pipeline ran clean.
        if !self.health.is_all_ok() {
            writeln!(f, "health: {}", self.health)?;
        }
        // Likewise only degraded sweeps carry (and print) black boxes.
        for (name, dump) in &self.black_boxes {
            match dump.last() {
                Some(event) => writeln!(
                    f,
                    "black box {name}: {} events, last: {} {}",
                    dump.len(),
                    event.kind,
                    event.what
                )?,
                None => writeln!(f, "black box {name}: empty")?,
            }
        }
        for report in [&self.files, &self.hooks, &self.processes, &self.modules] {
            write!(f, "{report}")?;
        }
        // Output is byte-identical to the untelemetered report when
        // telemetry is disabled.
        if let Some(telemetry) = &self.telemetry {
            for line in telemetry.summary_lines(2) {
                writeln!(f, "{line}")?;
            }
            // Attribution rides below the span summary so existing
            // consumers see strictly appended lines.
            write!(
                f,
                "{}",
                PerfReport::from_telemetry("sweep", telemetry).render()
            )?;
        }
        Ok(())
    }
}

/// One finished pipeline's persisted outcome, as stored in a
/// [`SweepCheckpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineCheckpoint {
    /// The pipeline's diff report.
    pub report: DiffReport,
    /// The pipeline's health verdict.
    pub status: PipelineStatus,
}

strider_support::impl_json!(struct PipelineCheckpoint { report, status });

/// Durable progress of an inside sweep: each pipeline's outcome is recorded
/// here as soon as it finishes (interrupted pipelines are *not* recorded —
/// a timeout or cancellation is a reason to re-run, not a result).
///
/// Serialize with [`SweepCheckpoint::serialize`] after a sweep dies, and
/// hand the parsed checkpoint to [`GhostBuster::resume`] to re-run only the
/// unfinished pipelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCheckpoint {
    /// The machine the sweep was observing — resuming against a different
    /// machine is rejected.
    pub machine: String,
    /// The machine clock when the sweep started.
    pub taken_at: Tick,
    /// The file pipeline's outcome, once finished.
    pub files: Option<PipelineCheckpoint>,
    /// The Registry pipeline's outcome, once finished.
    pub registry: Option<PipelineCheckpoint>,
    /// The process pipeline's outcome, once finished.
    pub processes: Option<PipelineCheckpoint>,
    /// The module pipeline's outcome, once finished.
    pub modules: Option<PipelineCheckpoint>,
}

strider_support::impl_json!(
    struct SweepCheckpoint { machine, taken_at, files, registry, processes, modules }
);

impl SweepCheckpoint {
    /// An empty checkpoint for a fresh sweep of `machine`.
    pub fn new(machine: &Machine) -> Self {
        SweepCheckpoint {
            machine: machine.name().to_string(),
            taken_at: machine.now(),
            files: None,
            registry: None,
            processes: None,
            modules: None,
        }
    }

    /// Whether every pipeline has a recorded outcome.
    pub fn is_complete(&self) -> bool {
        self.files.is_some()
            && self.registry.is_some()
            && self.processes.is_some()
            && self.modules.is_some()
    }

    /// The pipelines still to run, in sweep order.
    pub fn unfinished(&self) -> Vec<&'static str> {
        [
            ("files", self.files.is_some()),
            ("registry", self.registry.is_some()),
            ("processes", self.processes.is_some()),
            ("modules", self.modules.is_some()),
        ]
        .into_iter()
        .filter_map(|(name, done)| (!done).then_some(name))
        .collect()
    }

    /// Renders the checkpoint as a JSON document.
    pub fn serialize(&self) -> String {
        use strider_support::json::ToJson;
        self.to_json().render()
    }

    /// Parses a checkpoint from [`SweepCheckpoint::serialize`] output.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a document that is not a checkpoint.
    pub fn deserialize(text: &str) -> Result<Self, strider_support::json::JsonError> {
        use strider_support::json::{FromJson, JsonValue};
        Self::from_json(&JsonValue::parse(text)?)
    }

    /// Commits the checkpoint to `store` as a new generation — an atomic
    /// temp+rename publish that also retains the previous generation, so
    /// post-crash corruption of the newest record falls back instead of
    /// losing the sweep's progress.
    ///
    /// # Errors
    ///
    /// Propagates store I/O errors (including injected crashes).
    pub fn save_to(&self, store: &strider_support::store::RecordStore) -> std::io::Result<u64> {
        store.commit(self.serialize().as_bytes())
    }

    /// Loads the newest recoverable checkpoint from `store`. `Ok(None)`
    /// means no usable checkpoint survived — a first run, or damage past
    /// every generation — which callers treat as a cold start, never a
    /// panic.
    ///
    /// # Errors
    ///
    /// Propagates store I/O errors; damaged records fall back silently to
    /// the previous generation.
    pub fn load_from(store: &strider_support::store::RecordStore) -> std::io::Result<Option<Self>> {
        let recovered = store.recover()?;
        for record in recovered.records.iter().rev() {
            if let Some(checkpoint) = std::str::from_utf8(&record.payload)
                .ok()
                .and_then(|text| Self::deserialize(text).ok())
            {
                return Ok(Some(checkpoint));
            }
        }
        Ok(None)
    }
}

/// The four per-pipeline circuit breakers of a supervised sweep. Clones
/// share breaker state, so the same `SweepBreakers` (via a cloned
/// [`GhostBuster`]) accumulates failures across successive sweeps.
#[derive(Debug, Clone)]
pub struct SweepBreakers {
    files: CircuitBreaker,
    registry: CircuitBreaker,
    processes: CircuitBreaker,
    modules: CircuitBreaker,
}

impl SweepBreakers {
    /// Breakers configured from the policy's threshold/cool-down knobs,
    /// ticking on the policy clock.
    pub fn from_policy(policy: &ScanPolicy) -> Self {
        let make = || {
            CircuitBreaker::new(
                policy.clock().clone(),
                policy.breaker_threshold,
                policy.breaker_cooldown_ns,
            )
        };
        SweepBreakers {
            files: make(),
            registry: make(),
            processes: make(),
            modules: make(),
        }
    }

    /// The named pipeline's breaker state.
    pub fn state_of(&self, pipeline: &str) -> Option<BreakerState> {
        match pipeline {
            "files" => Some(self.files.state()),
            "registry" => Some(self.registry.state()),
            "processes" => Some(self.processes.state()),
            "modules" => Some(self.modules.state()),
            _ => None,
        }
    }
}

/// What one supervised pipeline run produced. `interrupted` marks a timeout
/// or cancellation: the pipeline's (empty) report still flows into the
/// sweep, but the outcome is not checkpointed — resuming re-runs it.
struct PipelineOutcome {
    report: DiffReport,
    status: PipelineStatus,
    interrupted: bool,
    /// The flight-recorder tail at the moment of failure; `None` for
    /// pipelines that completed (black boxes are for degradation only).
    flight: Option<FlightDump>,
}

impl PipelineOutcome {
    fn save(&self, slot: &mut Option<PipelineCheckpoint>) {
        if !self.interrupted {
            *slot = Some(PipelineCheckpoint {
                report: self.report.clone(),
                status: self.status.clone(),
            });
        }
    }
}

/// The detector.
///
/// # Examples
///
/// ```
/// use strider_ghostbuster::GhostBuster;
/// use strider_ghostware::{Ghostware, HackerDefender};
/// use strider_winapi::Machine;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut machine = Machine::with_base_system("victim")?;
/// HackerDefender::default().infect(&mut machine)?;
/// let report = GhostBuster::new().inside_sweep(&mut machine)?;
/// assert!(report.is_infected());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GhostBuster {
    files: FileScanner,
    registry: RegistryScanner,
    processes: ProcessScanner,
    advanced: Option<AdvancedSource>,
    telemetry: Option<Telemetry>,
    policy: ScanPolicy,
    cancellation: CancellationToken,
    breakers: Option<SweepBreakers>,
}

impl GhostBuster {
    /// Creates a detector in normal mode (Active Process List truth).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables advanced mode: the process truth additionally traverses the
    /// given kernel structure, defeating DKOM.
    pub fn with_advanced(mut self, source: AdvancedSource) -> Self {
        self.advanced = Some(source);
        self
    }

    /// Replaces the resilience policy, threading it through every scanner:
    /// transient low-level read failures are retried with backoff, damaged
    /// truth images are salvage-parsed, cross-view diffs are re-run until
    /// two consecutive passes agree, and a pipeline whose truth source is
    /// unrecoverable is marked [`PipelineStatus::Degraded`] in the sweep's
    /// [`SweepHealth`] instead of failing the other three.
    pub fn with_policy(mut self, policy: ScanPolicy) -> Self {
        self.files = self.files.with_policy(policy.clone());
        self.registry = self.registry.with_policy(policy.clone());
        self.breakers = (policy.breaker_threshold > 0).then(|| SweepBreakers::from_policy(&policy));
        self.policy = policy;
        self
    }

    /// Hands the detector an externally owned cancellation token: cancelling
    /// it (from any thread) makes every in-flight pipeline stop at its next
    /// checkpoint and land as [`PipelineStatus::Degraded`].
    pub fn with_cancellation(mut self, token: CancellationToken) -> Self {
        self.cancellation = token;
        self
    }

    /// The cancellation token sweeps observe.
    pub fn cancellation(&self) -> &CancellationToken {
        &self.cancellation
    }

    /// The resilience policy in use.
    pub fn policy(&self) -> &ScanPolicy {
        &self.policy
    }

    /// The per-pipeline circuit breakers, when the policy armed them
    /// (`breaker_threshold > 0`).
    pub fn breakers(&self) -> Option<&SweepBreakers> {
        self.breakers.as_ref()
    }

    /// Threads one telemetry registry through every scanner, and attaches
    /// the captured [`TelemetryReport`] to each sweep's [`SweepReport`].
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.files = self.files.with_telemetry(telemetry.clone());
        self.registry = self.registry.with_telemetry(telemetry.clone());
        self.processes = self.processes.with_telemetry(telemetry.clone());
        self.telemetry = Some(telemetry);
        self
    }

    /// The file scanner in use.
    pub fn file_scanner(&self) -> &FileScanner {
        &self.files
    }

    /// The Registry scanner in use.
    pub fn registry_scanner(&self) -> &RegistryScanner {
        &self.registry
    }

    /// The process scanner in use.
    pub fn process_scanner(&self) -> &ProcessScanner {
        &self.processes
    }

    /// Enters the machine as the `ghostbuster.exe` process.
    ///
    /// # Errors
    ///
    /// Propagates spawn failures.
    pub fn enter(&self, machine: &mut Machine) -> Result<CallContext, NtStatus> {
        machine.ensure_process(
            GHOSTBUSTER_IMAGE,
            "C:\\Program Files\\strider\\ghostbuster.exe",
        )
    }

    /// Inside-the-box hidden-file detection.
    ///
    /// # Errors
    ///
    /// Propagates scan failures.
    pub fn scan_files_inside(&self, machine: &mut Machine) -> Result<DiffReport, NtStatus> {
        let ctx = self.enter(machine)?;
        self.files.scan_inside(machine, &ctx)
    }

    /// Inside-the-box hidden-ASEP detection.
    ///
    /// # Errors
    ///
    /// Propagates scan failures.
    pub fn scan_registry_inside(&self, machine: &mut Machine) -> Result<DiffReport, NtStatus> {
        let ctx = self.enter(machine)?;
        self.registry.scan_inside(machine, &ctx)
    }

    /// Inside-the-box full-Registry hidden-key/value detection: walks every
    /// hive entirely instead of just the ASEP catalog — slower, broader.
    ///
    /// # Errors
    ///
    /// Propagates scan failures.
    pub fn scan_registry_full_inside(&self, machine: &mut Machine) -> Result<DiffReport, NtStatus> {
        let ctx = self.enter(machine)?;
        self.registry.scan_full_inside(machine, &ctx)
    }

    /// Inside-the-box hidden-process detection (honours advanced mode).
    ///
    /// # Errors
    ///
    /// Propagates scan failures.
    pub fn scan_processes_inside(&self, machine: &mut Machine) -> Result<DiffReport, NtStatus> {
        let ctx = self.enter(machine)?;
        self.processes.scan_inside(machine, &ctx, self.advanced)
    }

    /// Inside-the-box hidden-module detection.
    ///
    /// # Errors
    ///
    /// Propagates scan failures.
    pub fn scan_modules_inside(&self, machine: &mut Machine) -> Result<DiffReport, NtStatus> {
        let ctx = self.enter(machine)?;
        self.processes.scan_modules_inside(machine, &ctx)
    }

    /// The sweep's root supervision scope: the detector's cancellation
    /// token, plus the whole-sweep deadline when the policy budgets one.
    fn root_supervision(&self) -> Supervision {
        let deadline = self
            .policy
            .sweep_budget_ns
            .map(|budget| Deadline::after(self.policy.clock().clone(), budget));
        Supervision::new(self.cancellation.clone(), deadline)
    }

    fn count_degraded(&self, name: &str) {
        if let Some(t) = &self.telemetry {
            t.counter_add(&format!("sweep.degraded.{name}"), 1);
        }
    }

    /// Runs one pipeline as a supervised task: gated by its circuit breaker,
    /// isolated on its own thread (a panicking parser degrades one pipeline,
    /// not the sweep), stabilization passes inside, and on any unrecoverable
    /// error an empty report marked degraded — the sweep's
    /// graceful-degradation seam.
    fn run_pipeline(
        &self,
        name: &str,
        truth_view: ViewKind,
        now: Tick,
        span: &MaybeSpan,
        breaker: Option<&CircuitBreaker>,
        scan: impl FnMut() -> Result<DiffReport, NtStatus> + Send,
    ) -> PipelineOutcome {
        let recorder = self.telemetry.as_ref().map(Telemetry::recorder);
        if let Some(b) = breaker {
            if !b.try_acquire() {
                self.count_degraded(name);
                let flight = recorder.map(|r| {
                    r.breaker(name, "circuit breaker open: pipeline rejected");
                    r.snapshot()
                });
                return PipelineOutcome {
                    report: degraded_report(truth_view, now),
                    status: PipelineStatus::Degraded {
                        reason: "circuit breaker open".to_string(),
                    },
                    interrupted: false,
                    flight,
                };
            }
        }
        let degrade = |reason: String, interrupted: bool| {
            self.count_degraded(name);
            if let Some(b) = breaker {
                if b.record_failure() == BreakerState::Open {
                    if let Some(t) = &self.telemetry {
                        t.counter_add("breaker.open", 1);
                    }
                    if let Some(r) = recorder {
                        r.breaker(name, "opened after repeated failures");
                    }
                }
            }
            // The degradation mark goes in last, so the snapshot's final
            // event *is* the failure.
            let flight = recorder.map(|r| {
                r.mark(name, &format!("pipeline degraded: {reason}"));
                r.snapshot()
            });
            PipelineOutcome {
                report: degraded_report(truth_view, now),
                status: PipelineStatus::Degraded { reason },
                interrupted,
                flight,
            }
        };
        // `quorum_diff` is plain stabilization when hardening is off, and
        // majority-vote flicker scoring over K passes when it is armed.
        match run_isolated(name, || self.policy.quorum_diff(scan)) {
            Ok(Ok(report)) => {
                if let Some(b) = breaker {
                    b.record_success();
                }
                let status = pipeline_status(&report);
                PipelineOutcome {
                    report,
                    status,
                    interrupted: false,
                    flight: None,
                }
            }
            Ok(Err(e)) => {
                let interrupted = matches!(e, NtStatus::TimedOut | NtStatus::Cancelled);
                if e == NtStatus::TimedOut {
                    if let Some(t) = &self.telemetry {
                        t.counter_add("sweep.timeouts", 1);
                    }
                    if let Some(r) = recorder {
                        r.cancel(name, "pipeline budget exhausted");
                    }
                }
                if e == NtStatus::Cancelled {
                    span.set_attr("cancelled_at", name);
                    if let Some(r) = recorder {
                        r.cancel(name, "cancellation observed at checkpoint");
                    }
                }
                degrade(e.to_string(), interrupted)
            }
            Err(panic_msg) => {
                if let Some(r) = recorder {
                    r.fault(name, &format!("panicked: {panic_msg}"));
                }
                degrade(format!("panicked: {panic_msg}"), false)
            }
        }
    }

    /// The full inside-the-box sweep: files, ASEPs, processes, modules.
    ///
    /// Each pipeline runs as an independently supervised task: on its own
    /// thread, under its own deadline (the tighter of the policy's pipeline
    /// and sweep budgets), observing the detector's cancellation token, and
    /// gated by its circuit breaker when the policy arms them. A pipeline
    /// whose truth source fails permanently — or that times out, is
    /// cancelled, or panics — no longer aborts the sweep: it yields an empty
    /// report and a [`PipelineStatus::Degraded`] entry in
    /// [`SweepReport::health`], while the remaining pipelines scan normally.
    ///
    /// # Errors
    ///
    /// Fails only when the scanner cannot even enter the machine.
    pub fn inside_sweep(&self, machine: &mut Machine) -> Result<SweepReport, NtStatus> {
        let mut checkpoint = SweepCheckpoint::new(machine);
        self.sweep_core(machine, &mut checkpoint)
    }

    /// [`GhostBuster::inside_sweep`], but recording each pipeline's outcome
    /// into `checkpoint` as it finishes — serialize the checkpoint if the
    /// sweep dies and [`GhostBuster::resume`] from it later.
    ///
    /// # Errors
    ///
    /// Fails only when the scanner cannot even enter the machine.
    pub fn inside_sweep_checkpointed(
        &self,
        machine: &mut Machine,
        checkpoint: &mut SweepCheckpoint,
    ) -> Result<SweepReport, NtStatus> {
        self.sweep_core(machine, checkpoint)
    }

    /// Resumes a sweep from a checkpoint: pipelines with a recorded outcome
    /// are *not* re-run (their reports are restored verbatim, and no scan
    /// spans are emitted for them); the rest run normally and the checkpoint
    /// is updated in place.
    ///
    /// # Errors
    ///
    /// [`NtStatus::InvalidParameter`] when the checkpoint was taken on a
    /// different machine; otherwise as [`GhostBuster::inside_sweep`].
    pub fn resume(
        &self,
        machine: &mut Machine,
        checkpoint: &mut SweepCheckpoint,
    ) -> Result<SweepReport, NtStatus> {
        if checkpoint.machine != machine.name() {
            return Err(NtStatus::InvalidParameter);
        }
        self.sweep_core(machine, checkpoint)
    }

    fn sweep_core(
        &self,
        machine: &mut Machine,
        checkpoint: &mut SweepCheckpoint,
    ) -> Result<SweepReport, NtStatus> {
        let span = MaybeSpan::start(self.telemetry.as_ref(), "sweep.inside");
        // The machine's low-level read paths log injected faults into the
        // sweep's black box, so a degraded pipeline's dump shows the
        // device-level trouble that led up to the failure.
        if let Some(t) = &self.telemetry {
            machine.set_flight_recorder(t.recorder().clone());
        }
        let ctx = self.enter(machine)?;
        let machine = &*machine;
        let now = machine.now();
        let root = self.root_supervision();
        let clock = self.policy.clock().clone();
        let budget = self.policy.pipeline_budget_ns;
        let mut black_boxes: Vec<(String, FlightDump)> = Vec::new();

        // Hardened sweeps run the pipelines in a seed-derived order, so an
        // adversary watching the query stream cannot rely on "files first,
        // modules last" to schedule its lies. The order is a pure function
        // of the hardening seed — fixed seed, byte-identical sweep.
        let mut order = ["files", "registry", "processes", "modules"];
        if let Some(h) = self.policy.hardening {
            h.stream("pipeline-order").shuffle(&mut order);
        }
        let mut slot_files = None;
        let mut slot_registry = None;
        let mut slot_processes = None;
        let mut slot_modules = None;
        for name in order {
            match name {
                "files" => {
                    slot_files = Some(match &checkpoint.files {
                        Some(done) => (done.report.clone(), done.status.clone()),
                        None => {
                            let scanner = self
                                .files
                                .clone()
                                .with_supervision(root.child(clock.clone(), budget));
                            let outcome = self.run_pipeline(
                                "files",
                                ViewKind::LowLevelMft,
                                now,
                                &span,
                                self.breakers.as_ref().map(|b| &b.files),
                                || scanner.scan_inside(machine, &ctx),
                            );
                            outcome.save(&mut checkpoint.files);
                            if let Some(flight) = outcome.flight {
                                black_boxes.push(("files".to_string(), flight));
                            }
                            (outcome.report, outcome.status)
                        }
                    });
                }
                "registry" => {
                    slot_registry = Some(match &checkpoint.registry {
                        Some(done) => (done.report.clone(), done.status.clone()),
                        None => {
                            let scanner = self
                                .registry
                                .clone()
                                .with_supervision(root.child(clock.clone(), budget));
                            let outcome = self.run_pipeline(
                                "registry",
                                ViewKind::LowLevelHiveParse,
                                now,
                                &span,
                                self.breakers.as_ref().map(|b| &b.registry),
                                || scanner.scan_inside(machine, &ctx),
                            );
                            outcome.save(&mut checkpoint.registry);
                            if let Some(flight) = outcome.flight {
                                black_boxes.push(("registry".to_string(), flight));
                            }
                            (outcome.report, outcome.status)
                        }
                    });
                }
                "processes" => {
                    slot_processes = Some(match &checkpoint.processes {
                        Some(done) => (done.report.clone(), done.status.clone()),
                        None => {
                            let scanner = self
                                .processes
                                .clone()
                                .with_supervision(root.child(clock.clone(), budget));
                            let outcome = self.run_pipeline(
                                "processes",
                                ViewKind::LowLevelApl,
                                now,
                                &span,
                                self.breakers.as_ref().map(|b| &b.processes),
                                || scanner.scan_inside(machine, &ctx, self.advanced),
                            );
                            outcome.save(&mut checkpoint.processes);
                            if let Some(flight) = outcome.flight {
                                black_boxes.push(("processes".to_string(), flight));
                            }
                            (outcome.report, outcome.status)
                        }
                    });
                }
                _ => {
                    slot_modules = Some(match &checkpoint.modules {
                        Some(done) => (done.report.clone(), done.status.clone()),
                        None => {
                            let scanner = self
                                .processes
                                .clone()
                                .with_supervision(root.child(clock.clone(), budget));
                            let outcome = self.run_pipeline(
                                "modules",
                                ViewKind::LowLevelKernelModules,
                                now,
                                &span,
                                self.breakers.as_ref().map(|b| &b.modules),
                                || scanner.scan_modules_inside(machine, &ctx),
                            );
                            outcome.save(&mut checkpoint.modules);
                            if let Some(flight) = outcome.flight {
                                black_boxes.push(("modules".to_string(), flight));
                            }
                            (outcome.report, outcome.status)
                        }
                    });
                }
            }
        }
        let (files, files_status) = slot_files.expect("files pipeline always runs");
        let (hooks, registry_status) = slot_registry.expect("registry pipeline always runs");
        let (processes, processes_status) = slot_processes.expect("processes pipeline always runs");
        let (modules, modules_status) = slot_modules.expect("modules pipeline always runs");
        drop(span);
        Ok(SweepReport {
            files,
            hooks,
            processes,
            modules,
            health: SweepHealth {
                files: files_status,
                registry: registry_status,
                processes: processes_status,
                modules: modules_status,
            },
            telemetry: self.telemetry.as_ref().map(Telemetry::report),
            black_boxes,
        })
    }

    /// The WinPE CD outside-the-box flow: take the high-level scans and a
    /// crash dump now, reboot (`reboot_ticks` of service churn — the paper's
    /// 1.5–3 minutes), then scan the captured disk from the clean OS and
    /// diff against the pre-reboot high-level views.
    ///
    /// # Errors
    ///
    /// Propagates scan failures.
    pub fn winpe_outside_sweep(
        &self,
        machine: &mut Machine,
        reboot_ticks: u64,
    ) -> Result<SweepReport, NtStatus> {
        let span = MaybeSpan::start(self.telemetry.as_ref(), "sweep.outside");
        span.set_attr("reboot_ticks", reboot_ticks);
        if let Some(t) = &self.telemetry {
            machine.set_flight_recorder(t.recorder().clone());
        }
        // Snapshots the black box for a pipeline whose truth source was
        // lost, marking the failure as the dump's final event.
        let snap_failure = |pipeline: &str, reason: &str| -> Option<(String, FlightDump)> {
            self.telemetry.as_ref().map(|t| {
                let recorder = t.recorder();
                recorder.mark(pipeline, &format!("pipeline degraded: {reason}"));
                (pipeline.to_string(), recorder.snapshot())
            })
        };
        let mut black_boxes: Vec<(String, FlightDump)> = Vec::new();
        let ctx = self.enter(machine)?;
        // Under a hardened policy the pre-reboot lie is the *intersection*
        // of K captures: ghostware that hides intermittently (flicker
        // tactics) only has to dodge one capture to dodge a single-shot
        // lie, but dodging all K means being visible in every one — and
        // any resource it hid even once lands truth-only in the diff.
        let quorum = self.policy.hardening.map_or(1, |h| h.passes());
        let mut file_caps = Vec::with_capacity(quorum as usize);
        let mut hook_caps = Vec::with_capacity(quorum as usize);
        let mut proc_caps = Vec::with_capacity(quorum as usize);
        let mut module_caps = Vec::with_capacity(quorum as usize);
        for _ in 0..quorum {
            file_caps.push(self.files.high_scan(machine, &ctx, ChainEntry::Win32)?);
            hook_caps.push(self.registry.high_scan(machine, &ctx, ChainEntry::Win32));
            proc_caps.push(self.processes.high_scan(machine, &ctx, ChainEntry::Win32)?);
            module_caps.push(
                self.processes
                    .high_module_scan(machine, &ctx, ChainEntry::Win32)?,
            );
        }
        let file_lie = intersect_captures(file_caps);
        let hook_lie = intersect_captures(hook_caps);
        let proc_lie = intersect_captures(proc_caps);
        let module_lie = intersect_captures(module_caps);
        // The dump is captured pre-reboot, while the ghostware (and any
        // injected dump faults) are live. A permanently failing or
        // unparseable dump degrades the two volatile pipelines only.
        let dump = self.capture_dump(machine);

        machine.tick(reboot_ticks);
        let image = machine.snapshot_disk()?;
        let mut health = SweepHealth::default();

        let files = match self.files.outside_scan(&image) {
            Ok(file_truth) => {
                let report = self.files.diff(&file_truth, &file_lie);
                health.files = pipeline_status(&report);
                report
            }
            Err(e) => {
                health.files = PipelineStatus::Degraded {
                    reason: e.to_string(),
                };
                black_boxes.extend(snap_failure("files", &e.to_string()));
                degraded_report(ViewKind::OutsideDisk, image.taken_at)
            }
        };
        let hooks = match self
            .registry
            .outside_scan(&image, OutsideRegistryMode::MountedWin32)
        {
            Ok(hook_truth) => {
                let report = self.registry.diff(&hook_truth, &hook_lie);
                health.registry = pipeline_status(&report);
                report
            }
            Err(e) => {
                health.registry = PipelineStatus::Degraded {
                    reason: e.to_string(),
                };
                black_boxes.extend(snap_failure("registry", &e.to_string()));
                degraded_report(ViewKind::OutsideMountedHives, image.taken_at)
            }
        };
        let (processes, modules) = match dump {
            Ok((dump, dump_defects)) => {
                let proc_truth = self.processes.outside_scan(&dump, self.advanced.is_some());
                // Outside module truth: the dump's kernel-side lists for
                // processes the high-level view could see.
                let mut module_truth = crate::snapshot::Snapshot::new(ScanMeta::new(
                    ViewKind::OutsideDump,
                    image.taken_at,
                ));
                for (_, pf) in proc_lie.iter() {
                    if let Some(p) = dump.process(pf.pid) {
                        for m in &p.kernel_modules {
                            module_truth.insert(
                                format!(
                                    "pid:{}|{}",
                                    pf.pid.0,
                                    m.name.to_win32_lossy().to_ascii_lowercase()
                                ),
                                crate::snapshot::ModuleFact {
                                    pid: pf.pid,
                                    process_name: pf.image_name.clone(),
                                    module: m.name.to_win32_lossy(),
                                    path: m.path.to_win32_lossy(),
                                },
                            );
                        }
                    }
                }
                if dump_defects > 0 {
                    health.processes = PipelineStatus::Salvaged {
                        defects: dump_defects,
                    };
                    health.modules = PipelineStatus::Salvaged {
                        defects: dump_defects,
                    };
                }
                (
                    self.processes.diff(&proc_truth, &proc_lie),
                    self.processes.diff_modules(&module_truth, &module_lie),
                )
            }
            Err(e) => {
                if let Some(t) = &self.telemetry {
                    t.counter_add("sweep.degraded.processes", 1);
                    t.counter_add("sweep.degraded.modules", 1);
                }
                health.processes = PipelineStatus::Degraded {
                    reason: e.to_string(),
                };
                health.modules = PipelineStatus::Degraded {
                    reason: e.to_string(),
                };
                black_boxes.extend(snap_failure("processes", &e.to_string()));
                black_boxes.extend(snap_failure("modules", &e.to_string()));
                (
                    degraded_report(ViewKind::OutsideDump, image.taken_at),
                    degraded_report(ViewKind::OutsideDump, image.taken_at),
                )
            }
        };
        drop(span);
        Ok(SweepReport {
            files,
            hooks,
            processes,
            modules,
            health,
            telemetry: self.telemetry.as_ref().map(Telemetry::report),
            black_boxes,
        })
    }

    /// Reads and parses the crash dump per the policy: transient device
    /// failures are retried with backoff, stalled reads are polled under the
    /// sweep's supervision (so a stalled dump device cannot hang the flow
    /// past its budget), and a damaged dump is salvaged (returning the
    /// defect count) when salvage is on.
    fn capture_dump(&self, machine: &Machine) -> Result<(MemoryDump, u64), NtStatus> {
        let sup = self.root_supervision();
        let bytes = self
            .policy
            .supervised_retry(&sup, || machine.try_crash_dump())?;
        if self.policy.salvage {
            let salvaged = MemoryDump::parse_salvage(&bytes);
            Ok((salvaged.value, salvaged.defects.len() as u64))
        } else {
            let dump =
                MemoryDump::parse(&bytes).map_err(|e| NtStatus::CorruptStructure(e.to_string()))?;
            Ok((dump, 0))
        }
    }

    /// The RIS (network-boot) outside flow of Section 5: identical scans to
    /// the WinPE CD flow — only the boot transport differs, so enterprises
    /// can run it remotely on many desktops. The reboot gap is typically
    /// shorter than a CD boot.
    ///
    /// # Errors
    ///
    /// Propagates scan failures.
    pub fn ris_outside_sweep(
        &self,
        machine: &mut Machine,
        reboot_ticks: u64,
    ) -> Result<SweepReport, NtStatus> {
        self.winpe_outside_sweep(machine, reboot_ticks)
    }

    /// The VM-based outside flow of Section 5: the guest is paused rather
    /// than rebooted, so both scans describe *exactly* the same disk image —
    /// zero time gap, zero false positives.
    ///
    /// # Errors
    ///
    /// Propagates scan failures.
    pub fn vm_outside_files(&self, machine: &mut Machine) -> Result<DiffReport, NtStatus> {
        let ctx = self.enter(machine)?;
        let lie = self.files.high_scan(machine, &ctx, ChainEntry::Win32)?;
        // "Power down" the VM: no further ticks happen before capture.
        let image = machine.snapshot_disk()?;
        let truth = self.files.outside_scan(&image)?;
        Ok(self.files.diff(&truth, &lie))
    }

    /// The fully-automated VM flow, exchanging the guest's scan through a
    /// scan-result *file* exactly as Section 5 describes: the guest scans and
    /// serializes, the host "powers down" the VM, grabs the released drive,
    /// parses the guest's file, and diffs.
    ///
    /// # Errors
    ///
    /// Propagates scan and parse failures.
    pub fn vm_outside_files_via_scanfile(
        &self,
        machine: &mut Machine,
    ) -> Result<DiffReport, NtStatus> {
        // Inside the guest: high-level scan, saved to the result file.
        let ctx = self.enter(machine)?;
        let guest_scan = self.files.high_scan(machine, &ctx, ChainEntry::Win32)?;
        let result_file = crate::scanfile::write_scan_file(&guest_scan);

        // Host side: power down, take the drive, parse the guest's file.
        let image = machine.snapshot_disk()?;
        let lie = crate::scanfile::parse_scan_file(&result_file)
            .map_err(|e| NtStatus::CorruptStructure(e.to_string()))?;
        let truth = self.files.outside_scan(&image)?;
        Ok(self.files.diff(&truth, &lie))
    }

    /// Computes the hidden ASEP hooks (the structured form of
    /// [`GhostBuster::scan_registry_inside`]) for remediation.
    ///
    /// # Errors
    ///
    /// Propagates scan failures.
    pub fn hidden_hooks(&self, machine: &mut Machine) -> Result<Vec<AsepHook>, NtStatus> {
        let ctx = self.enter(machine)?;
        let lie = self.registry.high_scan(machine, &ctx, ChainEntry::Win32);
        let truth = self.registry.low_scan(machine)?;
        Ok(truth
            .iter()
            .filter(|(key, _)| !lie.contains(key))
            .map(|(_, hook)| hook.clone())
            .collect())
    }

    /// Deletes the Registry entries behind hidden hooks — the paper's
    /// removal story: "it locates the Registry keys that can be deleted to
    /// disable the ghostware after a reboot". Returns how many were removed.
    pub fn remediate_hooks(&self, machine: &mut Machine, hooks: &[AsepHook]) -> usize {
        let catalog_paths: Vec<_> = self
            .registry
            .catalog()
            .iter()
            .map(|l| l.key_path.clone())
            .collect();
        let mut removed = 0;
        for hook in hooks {
            let is_subkey_hook = !catalog_paths
                .iter()
                .any(|p| p.eq_ignore_case(&hook.key_path));
            let ok = if is_subkey_hook {
                machine.registry_mut().delete_key(&hook.key_path).is_ok()
            } else {
                machine
                    .registry_mut()
                    .delete_value(&hook.key_path, &NtString::from(hook.entry.as_str()))
                    .is_ok()
            };
            if ok {
                removed += 1;
            }
        }
        removed
    }
}

/// Intersects repeated lie captures by identity key: a resource absent from
/// *any* capture was hidden at some point during the window, so it must not
/// count as honestly visible. Flicker-hiding ghostware that dodges a single
/// pre-reboot capture by coin-flip cannot dodge the intersection of K. The
/// final capture supplies the metadata (its I/O totals already include the
/// earlier passes' machine-side work).
fn intersect_captures<T: Clone>(
    mut captures: Vec<crate::snapshot::Snapshot<T>>,
) -> crate::snapshot::Snapshot<T> {
    let last = captures.pop().expect("at least one lie capture");
    if captures.is_empty() {
        return last;
    }
    let mut out = crate::snapshot::Snapshot::new(last.meta.clone());
    for (key, fact) in last.iter() {
        if captures.iter().all(|earlier| earlier.contains(key)) {
            out.insert(key.clone(), fact.clone());
        }
    }
    out
}

/// An empty report standing in for a pipeline whose truth source was lost:
/// both metas are present (so downstream consumers need no special case) but
/// nothing was compared.
fn degraded_report(truth_view: ViewKind, now: Tick) -> DiffReport {
    DiffReport {
        truth_meta: ScanMeta::new(truth_view, now),
        lie_meta: ScanMeta::new(ViewKind::HighLevelWin32, now),
        detections: Vec::new(),
        phantom_in_lie: Vec::new(),
    }
}

/// A completed pipeline's status: clean, or salvaged with however many
/// defects its truth-side parse recorded.
fn pipeline_status(report: &DiffReport) -> PipelineStatus {
    match report.truth_meta.io.defects {
        0 => PipelineStatus::Ok,
        defects => PipelineStatus::Salvaged { defects },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_ghostware::{Ghostware, HackerDefender};

    #[test]
    fn inside_sweep_on_clean_machine_is_clean() {
        let mut m = Machine::with_base_system("clean").unwrap();
        let report = GhostBuster::new().inside_sweep(&mut m).unwrap();
        assert!(!report.is_infected());
        assert_eq!(report.suspicious_count(), 0);
    }

    #[test]
    fn inside_sweep_detects_hxdef_everywhere() {
        let mut m = Machine::with_base_system("victim").unwrap();
        HackerDefender::default().infect(&mut m).unwrap();
        let report = GhostBuster::new().inside_sweep(&mut m).unwrap();
        assert!(report.is_infected());
        assert!(report.files.has_detections());
        assert!(report.hooks.has_detections());
        assert!(report.processes.has_detections());
        let rendered = report.to_string();
        assert!(rendered.contains("suspicious"));
    }

    #[test]
    fn sweep_with_telemetry_attaches_report_and_phase_summary() {
        let mut m = Machine::with_base_system("victim").unwrap();
        HackerDefender::default().infect(&mut m).unwrap();
        let telemetry = Telemetry::new();
        let report = GhostBuster::new()
            .with_telemetry(telemetry)
            .inside_sweep(&mut m)
            .unwrap();
        let captured = report.telemetry.as_ref().expect("telemetry attached");
        let sweep = captured.find_span("sweep.inside").unwrap();
        for child in [
            "files.scan_inside",
            "registry.scan_inside",
            "processes.scan_inside",
            "modules.scan_inside",
        ] {
            assert!(sweep.child(child).is_some(), "missing {child}");
        }
        let rendered = report.to_string();
        assert!(rendered.contains("sweep.inside"), "{rendered}");

        // Without telemetry the Display output carries no phase lines.
        let plain = GhostBuster::new().inside_sweep(&mut m).unwrap().to_string();
        assert!(!plain.contains("sweep.inside"));
    }

    #[test]
    fn winpe_flow_detects_hxdef_with_bounded_noise() {
        let mut m = Machine::with_base_system("victim").unwrap();
        strider_workload::services::install_standard_services(&mut m, false);
        m.tick(400); // the machine has been running for a while
        HackerDefender::default().infect(&mut m).unwrap();
        let report = GhostBuster::new().winpe_outside_sweep(&mut m, 150).unwrap();
        assert!(report.is_infected());
        assert!(report
            .files
            .net_detections()
            .iter()
            .any(|d| d.detail.contains("hxdef100.exe")));
        assert!(
            report.noise_count() <= 8,
            "noise bounded: {}",
            report.noise_count()
        );
    }

    #[test]
    fn vm_flow_has_zero_false_positives_on_clean_machine() {
        let mut m = Machine::with_base_system("clean").unwrap();
        strider_workload::services::install_standard_services(&mut m, true);
        m.tick(1);
        let report = GhostBuster::new().vm_outside_files(&mut m).unwrap();
        assert!(!report.has_detections(), "{report}");
    }

    #[test]
    fn remediation_deletes_hidden_hooks() {
        let mut m = Machine::with_base_system("victim").unwrap();
        HackerDefender::default().infect(&mut m).unwrap();
        let gb = GhostBuster::new();
        let hooks = gb.hidden_hooks(&mut m).unwrap();
        assert_eq!(hooks.len(), 2);
        let removed = gb.remediate_hooks(&mut m, &hooks);
        assert_eq!(removed, 2);
        assert!(!m.registry().key_exists(
            &"HKLM\\SYSTEM\\CurrentControlSet\\Services\\HackerDefender100"
                .parse()
                .unwrap()
        ));
        // Re-scan: the hooks are gone from the truth too.
        let hooks = gb.hidden_hooks(&mut m).unwrap();
        assert!(hooks.is_empty());
    }
}
