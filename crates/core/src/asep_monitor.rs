//! A Gatekeeper-style ASEP monitor (the paper's [WRV+04] companion work).
//!
//! "By extensively studying 120 real-world spyware programs, we have shown
//! that the ASEP-based monitoring and scanning technique is effective for
//! detecting spyware programs" (paper, Section 3). The monitor is a
//! *cross-time* diff restricted to the auto-start catalog: it checkpoints
//! the visible ASEP hooks and reports later additions/removals. It catches
//! malware that hooks ASEPs *without hiding* (which the cross-view diff,
//! by design, never flags) — the two techniques are complementary, and the
//! `baselines` experiments quantify the overlap.

use crate::registry::RegistryScanner;
use crate::snapshot::HookFact;
use strider_nt_core::NtStatus;
use strider_winapi::{CallContext, ChainEntry, Machine};

/// A point-in-time record of the visible ASEP hooks.
#[derive(Debug, Clone)]
pub struct AsepCheckpoint {
    hooks: Vec<(String, HookFact)>,
}

impl AsepCheckpoint {
    /// Number of hooks recorded.
    pub fn len(&self) -> usize {
        self.hooks.len()
    }

    /// Whether the checkpoint is empty.
    pub fn is_empty(&self) -> bool {
        self.hooks.is_empty()
    }
}

/// Hook changes between a checkpoint and now.
#[derive(Debug, Clone, Default)]
pub struct AsepChanges {
    /// Hooks present now but not at the checkpoint — new auto-start code.
    pub added: Vec<HookFact>,
    /// Hooks gone since the checkpoint.
    pub removed: Vec<HookFact>,
}

impl AsepChanges {
    /// Total change count.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Whether anything changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// The ASEP monitor.
#[derive(Debug, Clone, Default)]
pub struct AsepMonitor {
    scanner: RegistryScanner,
}

impl AsepMonitor {
    /// Creates a monitor over the standard ASEP catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checkpoints the currently *visible* hooks (the monitor is an
    /// ordinary program: it sees what the APIs show it).
    pub fn checkpoint(&self, machine: &Machine, ctx: &CallContext) -> AsepCheckpoint {
        let snap = self.scanner.high_scan(machine, ctx, ChainEntry::Win32);
        AsepCheckpoint {
            hooks: snap.iter().map(|(k, h)| (k.clone(), h.clone())).collect(),
        }
    }

    /// Diffs the current visible hooks against a checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates scan failures.
    pub fn diff(
        &self,
        machine: &Machine,
        ctx: &CallContext,
        baseline: &AsepCheckpoint,
    ) -> Result<AsepChanges, NtStatus> {
        let now = self.scanner.high_scan(machine, ctx, ChainEntry::Win32);
        let mut changes = AsepChanges::default();
        for (key, hook) in now.iter() {
            if !baseline.hooks.iter().any(|(k, _)| k == key) {
                changes.added.push(hook.clone());
            }
        }
        for (key, hook) in &baseline.hooks {
            if !now.contains(key) {
                changes.removed.push(hook.clone());
            }
        }
        Ok(changes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_ghostware::{Berbew, Ghostware, HackerDefender};

    fn ctx(machine: &mut Machine) -> CallContext {
        machine
            .ensure_process("gatekeeper.exe", "C:\\tools\\gatekeeper.exe")
            .unwrap()
    }

    #[test]
    fn catches_non_hiding_asep_malware_that_cross_view_misses() {
        let mut m = Machine::with_base_system("victim").unwrap();
        let c = ctx(&mut m);
        let monitor = AsepMonitor::new();
        let baseline = monitor.checkpoint(&m, &c);
        // Berbew hides its process but leaves its Run hook visible.
        Berbew::default().infect(&mut m).unwrap();
        let changes = monitor.diff(&m, &c, &baseline).unwrap();
        assert_eq!(changes.added.len(), 1);
        assert_eq!(changes.added[0].asep_id, "Run");
        // The cross-view Registry diff sees nothing: the hook is not hidden.
        let report = crate::ghostbuster::GhostBuster::new()
            .scan_registry_inside(&mut m)
            .unwrap();
        assert!(!report.has_detections());
    }

    #[test]
    fn blind_to_hidden_hooks_the_cross_view_diff_catches() {
        // The complementarity in the other direction: hidden hooks never
        // appear in the monitor's visible view, at install or after.
        let mut m = Machine::with_base_system("victim").unwrap();
        let c = ctx(&mut m);
        let monitor = AsepMonitor::new();
        let baseline = monitor.checkpoint(&m, &c);
        HackerDefender::default().infect(&mut m).unwrap();
        let changes = monitor.diff(&m, &c, &baseline).unwrap();
        assert!(
            !changes
                .added
                .iter()
                .any(|h| h.entry.contains("HackerDefender")),
            "{changes:?}"
        );
        let report = crate::ghostbuster::GhostBuster::new()
            .scan_registry_inside(&mut m)
            .unwrap();
        assert!(report.has_detections());
    }

    #[test]
    fn removal_is_reported() {
        let mut m = Machine::with_base_system("victim").unwrap();
        let c = ctx(&mut m);
        let monitor = AsepMonitor::new();
        let baseline = monitor.checkpoint(&m, &c);
        assert!(!baseline.is_empty());
        m.registry_mut()
            .delete_value(
                &"HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run"
                    .parse()
                    .unwrap(),
                &strider_nt_core::NtString::from("ctfmon"),
            )
            .unwrap();
        let changes = monitor.diff(&m, &c, &baseline).unwrap();
        assert_eq!(changes.removed.len(), 1);
        assert_eq!(changes.len(), 1);
    }

    #[test]
    fn quiet_registry_quiet_monitor() {
        let mut m = Machine::with_base_system("q").unwrap();
        let c = ctx(&mut m);
        let monitor = AsepMonitor::new();
        let baseline = monitor.checkpoint(&m, &c);
        assert!(monitor.diff(&m, &c, &baseline).unwrap().is_empty());
    }
}
