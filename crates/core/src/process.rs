//! Hidden-process and hidden-module detection (paper, Section 4).

use crate::diff::cross_view_diff;
use crate::instrument::{record_chain, record_view_entries, LatencyProbe};
use crate::policy::interrupt_status;
use crate::report::{Detection, DiffReport, NoiseClass, ResourceKind};
use crate::snapshot::{ModuleFact, ProcessFact, ScanMeta, Snapshot, ViewKind};
use strider_kernel::MemoryDump;
use strider_nt_core::{NtStatus, Pid};
use strider_support::obs::{MaybeSpan, Telemetry};
use strider_support::task::Supervision;
use strider_winapi::{CallContext, ChainEntry, ChainStats, Machine, Query, Row};

/// Which kernel structure the advanced-mode low-level scan traverses in
/// addition to the Active Process List.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvancedSource {
    /// The scheduler thread table: every schedulable thread names its owner.
    ThreadTable,
    /// The subsystem (csrss) handle table.
    HandleTable,
}

/// The hidden-process/hidden-module scanner.
#[derive(Debug, Clone, Default)]
pub struct ProcessScanner {
    telemetry: Option<Telemetry>,
    supervision: Supervision,
}

impl ProcessScanner {
    /// Creates a scanner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Threads a telemetry registry through every scan: per-phase spans,
    /// per-view entry counters, and chain-divergence attribution.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Places the scanner under `supervision`: each per-process module
    /// enumeration and phase boundary checks the cancellation token and
    /// deadline. The default is [`Supervision::unsupervised`] — never
    /// interrupted.
    pub fn with_supervision(mut self, supervision: Supervision) -> Self {
        self.supervision = supervision;
        self
    }

    /// The high-level scan through the (possibly hooked) API chain.
    ///
    /// # Errors
    ///
    /// Propagates API failures.
    pub fn high_scan(
        &self,
        machine: &Machine,
        ctx: &CallContext,
        entry: ChainEntry,
    ) -> Result<Snapshot<ProcessFact>, NtStatus> {
        let view = match entry {
            ChainEntry::Win32 => ViewKind::HighLevelWin32,
            ChainEntry::Native => ViewKind::HighLevelNative,
        };
        let span = MaybeSpan::start(self.telemetry.as_ref(), "processes.high_scan");
        let mut snap = Snapshot::new(ScanMeta::new(view, machine.now()));
        snap.meta.io.record_api_call();
        let rows = if span.is_recording() {
            let (rows, trace) = machine.query_traced(ctx, &Query::ProcessList, entry)?;
            let mut chain = ChainStats::default();
            chain.absorb(&trace);
            record_chain(&span, &chain);
            rows
        } else {
            machine.query(ctx, &Query::ProcessList, entry)?
        };
        snap.meta.io.record_entries(rows.len() as u64);
        for row in rows {
            if let Row::Process(p) = row {
                snap.insert(
                    format!("pid:{}", p.pid.0),
                    ProcessFact {
                        pid: p.pid,
                        image_name: p.image_name.to_win32_lossy(),
                        image_path: p.image_path,
                    },
                );
            }
        }
        record_view_entries(
            self.telemetry.as_ref(),
            &span,
            "processes",
            view,
            snap.len(),
        );
        Ok(snap)
    }

    /// The normal-mode low-level scan: a driver walks the Active Process
    /// List. Catches every API-intercepting hider; blind to DKOM, because
    /// this list is only the truth *approximation* the APIs themselves use.
    pub fn low_scan_apl(&self, machine: &Machine) -> Snapshot<ProcessFact> {
        let span = MaybeSpan::start(self.telemetry.as_ref(), "processes.low_scan");
        let mut snap = Snapshot::new(ScanMeta::new(ViewKind::LowLevelApl, machine.now()));
        for pid in machine.kernel().active_process_list() {
            self.push_kernel_fact(machine, pid, &mut snap);
        }
        record_view_entries(
            self.telemetry.as_ref(),
            &span,
            "processes",
            ViewKind::LowLevelApl,
            snap.len(),
        );
        snap
    }

    /// The advanced-mode low-level scan: traverse a kernel structure that
    /// exists for OS bookkeeping other than answering enumeration queries.
    /// DKOM-hidden processes reappear here.
    pub fn low_scan_advanced(
        &self,
        machine: &Machine,
        source: AdvancedSource,
    ) -> Snapshot<ProcessFact> {
        let (view, mut pids) = match source {
            AdvancedSource::ThreadTable => (
                ViewKind::LowLevelThreadTable,
                machine.kernel().processes_via_threads(),
            ),
            AdvancedSource::HandleTable => (
                ViewKind::LowLevelHandleTable,
                machine.kernel().processes_via_handles(),
            ),
        };
        // Union with the APL: the advanced structure augments rather than
        // replaces the primary one (csrss tracks no System process, etc.).
        let span = MaybeSpan::start(self.telemetry.as_ref(), "processes.low_scan");
        span.set_attr("source", format!("{source:?}"));
        pids.extend(machine.kernel().active_process_list());
        pids.sort();
        pids.dedup();
        let mut snap = Snapshot::new(ScanMeta::new(view, machine.now()));
        for pid in pids {
            self.push_kernel_fact(machine, pid, &mut snap);
        }
        record_view_entries(
            self.telemetry.as_ref(),
            &span,
            "processes",
            view,
            snap.len(),
        );
        snap
    }

    fn push_kernel_fact(&self, machine: &Machine, pid: Pid, snap: &mut Snapshot<ProcessFact>) {
        if let Some(p) = machine.kernel().process(pid) {
            snap.meta.io.record_entries(1);
            snap.insert(
                format!("pid:{}", pid.0),
                ProcessFact {
                    pid,
                    image_name: p.image_name.to_win32_lossy(),
                    image_path: p.image_path.to_string(),
                },
            );
        }
    }

    /// The outside-the-box scan over a crash-dump image.
    pub fn outside_scan(&self, dump: &MemoryDump, advanced: bool) -> Snapshot<ProcessFact> {
        let span = MaybeSpan::start(self.telemetry.as_ref(), "processes.outside_scan");
        span.set_attr("advanced", advanced);
        let mut snap = Snapshot::new(ScanMeta::new(
            ViewKind::OutsideDump,
            strider_nt_core::Tick::ZERO,
        ));
        snap.meta.io.record_sequential(dump.byte_len());
        let mut pids = dump.processes_via_apl();
        if advanced {
            pids.extend(dump.processes_via_threads());
            pids.sort();
            pids.dedup();
        }
        for pid in pids {
            if let Some(p) = dump.process(pid) {
                snap.meta.io.record_entries(1);
                snap.insert(
                    format!("pid:{}", pid.0),
                    ProcessFact {
                        pid,
                        image_name: p.image_name.to_win32_lossy(),
                        image_path: p.image_path.to_string(),
                    },
                );
            }
        }
        record_view_entries(
            self.telemetry.as_ref(),
            &span,
            "processes",
            ViewKind::OutsideDump,
            snap.len(),
        );
        span.set_attr("bytes_read", snap.meta.io.bytes_read);
        snap
    }

    /// Diffs process snapshots.
    pub fn diff(&self, truth: &Snapshot<ProcessFact>, lie: &Snapshot<ProcessFact>) -> DiffReport {
        let span = MaybeSpan::start(self.telemetry.as_ref(), "processes.diff");
        let report = cross_view_diff(truth, lie, |key, fact: &ProcessFact| Detection {
            kind: ResourceKind::Process,
            identity: key.to_string(),
            detail: format!("{} {} ({})", fact.pid, fact.image_name, fact.image_path),
            category: None,
            noise: NoiseClass::Suspicious,
        });
        span.set_attr("hidden", report.net_detections().len());
        span.set_attr("noise", report.noise_detections().len());
        report
    }

    /// One-call inside-the-box hidden-process detection.
    ///
    /// # Errors
    ///
    /// Propagates scan failures.
    pub fn scan_inside(
        &self,
        machine: &Machine,
        ctx: &CallContext,
        advanced: Option<AdvancedSource>,
    ) -> Result<DiffReport, NtStatus> {
        let _span = MaybeSpan::start(self.telemetry.as_ref(), "processes.scan_inside");
        let lie = self.high_scan(machine, ctx, ChainEntry::Win32)?;
        self.supervision.checkpoint().map_err(interrupt_status)?;
        let truth = match advanced {
            Some(source) => self.low_scan_advanced(machine, source),
            None => self.low_scan_apl(machine),
        };
        Ok(self.diff(&truth, &lie))
    }

    // ------------------------------------------------------------------
    // Modules
    // ------------------------------------------------------------------

    /// The high-level module scan: enumerate modules of every *visible*
    /// process through the API chain (PEB-based, Tool Help semantics).
    ///
    /// # Errors
    ///
    /// Propagates API failures other than processes that die mid-scan.
    pub fn high_module_scan(
        &self,
        machine: &Machine,
        ctx: &CallContext,
        entry: ChainEntry,
    ) -> Result<Snapshot<ModuleFact>, NtStatus> {
        let procs = self.high_scan(machine, ctx, entry)?;
        let view = match entry {
            ChainEntry::Win32 => ViewKind::HighLevelWin32,
            ChainEntry::Native => ViewKind::HighLevelNative,
        };
        let span = MaybeSpan::start(self.telemetry.as_ref(), "modules.high_scan");
        let probe = LatencyProbe::new(self.telemetry.as_ref(), "modules.proc_query_ns");
        let mut chain = ChainStats::default();
        let mut snap = Snapshot::new(ScanMeta::new(view, machine.now()));
        for (_, proc_fact) in procs.iter() {
            self.supervision.checkpoint().map_err(interrupt_status)?;
            snap.meta.io.record_api_call();
            let query = Query::ModuleList { pid: proc_fact.pid };
            let query_started = probe.start();
            let result = if span.is_recording() {
                machine
                    .query_traced(ctx, &query, entry)
                    .map(|(rows, trace)| {
                        chain.absorb(&trace);
                        rows
                    })
            } else {
                machine.query(ctx, &query, entry)
            };
            probe.finish(query_started);
            let rows = match result {
                Ok(rows) => rows,
                Err(NtStatus::NoSuchProcess) => continue,
                Err(e) => return Err(e),
            };
            snap.meta.io.record_entries(rows.len() as u64);
            for row in rows {
                if let Row::Module(m) = row {
                    snap.insert(
                        module_key(proc_fact.pid, &m.name.to_win32_lossy()),
                        ModuleFact {
                            pid: proc_fact.pid,
                            process_name: proc_fact.image_name.clone(),
                            module: m.name.to_win32_lossy(),
                            path: m.path.to_win32_lossy(),
                        },
                    );
                }
            }
        }
        record_view_entries(self.telemetry.as_ref(), &span, "modules", view, snap.len());
        span.set_attr("api_calls", snap.meta.io.api_calls);
        record_chain(&span, &chain);
        Ok(snap)
    }

    /// The low-level module scan: the kernel's own mapped-image lists,
    /// restricted to processes visible in `visible` (module hiding in
    /// *hidden* processes is already covered by process detection).
    pub fn low_module_scan(
        &self,
        machine: &Machine,
        visible: &Snapshot<ProcessFact>,
    ) -> Snapshot<ModuleFact> {
        let span = MaybeSpan::start(self.telemetry.as_ref(), "modules.low_scan");
        let mut snap = Snapshot::new(ScanMeta::new(
            ViewKind::LowLevelKernelModules,
            machine.now(),
        ));
        for (_, proc_fact) in visible.iter() {
            let Some(p) = machine.kernel().process(proc_fact.pid) else {
                continue;
            };
            for m in &p.kernel_modules {
                snap.meta.io.record_entries(1);
                snap.insert(
                    module_key(p.pid, &m.name.to_win32_lossy()),
                    ModuleFact {
                        pid: p.pid,
                        process_name: proc_fact.image_name.clone(),
                        module: m.name.to_win32_lossy(),
                        path: m.path.to_win32_lossy(),
                    },
                );
            }
        }
        record_view_entries(
            self.telemetry.as_ref(),
            &span,
            "modules",
            ViewKind::LowLevelKernelModules,
            snap.len(),
        );
        snap
    }

    /// Diffs module snapshots.
    pub fn diff_modules(
        &self,
        truth: &Snapshot<ModuleFact>,
        lie: &Snapshot<ModuleFact>,
    ) -> DiffReport {
        let span = MaybeSpan::start(self.telemetry.as_ref(), "modules.diff");
        let report = cross_view_diff(truth, lie, |key, fact: &ModuleFact| Detection {
            kind: ResourceKind::Module,
            identity: key.to_string(),
            detail: format!(
                "{} hidden inside {} {}",
                fact.module, fact.pid, fact.process_name
            ),
            category: None,
            noise: NoiseClass::Suspicious,
        });
        span.set_attr("hidden", report.net_detections().len());
        span.set_attr("noise", report.noise_detections().len());
        report
    }

    /// One-call inside-the-box hidden-module detection.
    ///
    /// # Errors
    ///
    /// Propagates scan failures.
    pub fn scan_modules_inside(
        &self,
        machine: &Machine,
        ctx: &CallContext,
    ) -> Result<DiffReport, NtStatus> {
        let _span = MaybeSpan::start(self.telemetry.as_ref(), "modules.scan_inside");
        let lie = self.high_module_scan(machine, ctx, ChainEntry::Win32)?;
        self.supervision.checkpoint().map_err(interrupt_status)?;
        let visible = self.high_scan(machine, ctx, ChainEntry::Win32)?;
        let truth = self.low_module_scan(machine, &visible);
        Ok(self.diff_modules(&truth, &lie))
    }
}

fn module_key(pid: Pid, module: &str) -> String {
    format!("pid:{}|{}", pid.0, module.to_ascii_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_ghostware::{Berbew, Fu, Ghostware, HackerDefender, Vanquish};
    use strider_kernel::MemoryDump;

    fn gb_ctx(machine: &mut Machine) -> CallContext {
        machine
            .ensure_process("ghostbuster.exe", "C:\\ghostbuster.exe")
            .unwrap()
    }

    #[test]
    fn clean_machine_zero_findings_both_modes() {
        let mut m = Machine::with_base_system("clean").unwrap();
        let ctx = gb_ctx(&mut m);
        let s = ProcessScanner::new();
        for advanced in [
            None,
            Some(AdvancedSource::ThreadTable),
            Some(AdvancedSource::HandleTable),
        ] {
            let report = s.scan_inside(&m, &ctx, advanced).unwrap();
            assert!(!report.has_detections(), "{advanced:?}: {report}");
        }
    }

    #[test]
    fn api_hiders_caught_by_normal_mode() {
        for sample in [
            Box::new(HackerDefender::default()) as Box<dyn Ghostware>,
            Box::new(Berbew::default()),
        ] {
            let mut m = Machine::with_base_system("victim").unwrap();
            let inf = sample.infect(&mut m).unwrap();
            let ctx = gb_ctx(&mut m);
            let report = ProcessScanner::new().scan_inside(&m, &ctx, None).unwrap();
            for name in &inf.hidden_process_names {
                assert!(
                    report
                        .net_detections()
                        .iter()
                        .any(|d| d.detail.contains(name)),
                    "{} missed {name}",
                    inf.ghostware
                );
            }
        }
    }

    #[test]
    fn fu_requires_advanced_mode() {
        let mut m = Machine::with_base_system("victim").unwrap();
        Fu::default().infect(&mut m).unwrap();
        let ctx = gb_ctx(&mut m);
        let s = ProcessScanner::new();
        let normal = s.scan_inside(&m, &ctx, None).unwrap();
        assert!(
            !normal.has_detections(),
            "normal mode cannot see DKOM: {normal}"
        );
        for source in [AdvancedSource::ThreadTable, AdvancedSource::HandleTable] {
            let advanced = s.scan_inside(&m, &ctx, Some(source)).unwrap();
            assert!(
                advanced
                    .net_detections()
                    .iter()
                    .any(|d| d.detail.contains("fu_payload.exe")),
                "{source:?} must reveal the DKOM-hidden process"
            );
        }
    }

    #[test]
    fn vanquish_module_hiding_detected_in_many_processes() {
        let mut m = Machine::with_base_system("victim").unwrap();
        let inf = Vanquish::default().infect(&mut m).unwrap();
        let ctx = gb_ctx(&mut m);
        let report = ProcessScanner::new().scan_modules_inside(&m, &ctx).unwrap();
        let vanquish_hits = report
            .net_detections()
            .iter()
            .filter(|d| d.detail.contains("vanquish.dll"))
            .count();
        assert_eq!(vanquish_hits, inf.hidden_module_names.len());
        assert!(vanquish_hits >= 6, "many such entries, as in the paper");
    }

    #[test]
    fn clean_module_scan_is_silent() {
        let mut m = Machine::with_base_system("clean").unwrap();
        let ctx = gb_ctx(&mut m);
        let report = ProcessScanner::new().scan_modules_inside(&m, &ctx).unwrap();
        assert!(!report.has_detections(), "{report}");
    }

    #[test]
    fn telemetry_records_phases_and_divergence_level() {
        let mut m = Machine::with_base_system("victim").unwrap();
        HackerDefender::default().infect(&mut m).unwrap();
        let ctx = gb_ctx(&mut m);
        let telemetry = strider_support::obs::Telemetry::new();
        let s = ProcessScanner::new().with_telemetry(telemetry.clone());
        s.scan_inside(&m, &ctx, None).unwrap();

        // Counters checked before the module sweep re-runs high_scan.
        let report = telemetry.report();
        let scan = report.find_span("processes.scan_inside").unwrap();
        let high = scan.child("processes.high_scan").unwrap();
        assert!(high.attr("diverted_at").is_some(), "{high:?}");
        assert!(scan.child("processes.low_scan").is_some());
        assert!(scan.child("processes.diff").is_some());
        assert!(
            report.counters["processes.entries.LowLevelApl"]
                > report.counters["processes.entries.HighLevelWin32"],
            "truth view must see the hidden process"
        );

        s.scan_modules_inside(&m, &ctx).unwrap();
        let report = telemetry.report();
        let mods = report.find_span("modules.scan_inside").unwrap();
        assert!(mods.child("modules.high_scan").is_some());
        assert!(mods.child("modules.low_scan").is_some());
        assert!(mods.child("modules.diff").is_some());
    }

    #[test]
    fn outside_dump_scan_detects_dkom_with_advanced_parse() {
        let mut m = Machine::with_base_system("victim").unwrap();
        Fu::default().infect(&mut m).unwrap();
        let ctx = gb_ctx(&mut m);
        let s = ProcessScanner::new();
        let lie = s.high_scan(&m, &ctx, ChainEntry::Win32).unwrap();
        let dump = MemoryDump::parse(&m.kernel().crash_dump()).unwrap();
        let normal = s.diff(&s.outside_scan(&dump, false), &lie);
        assert!(!normal.has_detections(), "APL in the dump is also doctored");
        let advanced = s.diff(&s.outside_scan(&dump, true), &lie);
        assert!(advanced
            .net_detections()
            .iter()
            .any(|d| d.detail.contains("fu_payload.exe")));
    }

    #[test]
    fn dump_scrubbing_defeats_even_the_outside_dump_scan() {
        // The paper's caveat: a future ghostware trapping the blue screen
        // makes the dump a truth approximation too.
        let mut m = Machine::with_base_system("victim").unwrap();
        Fu::default().infect(&mut m).unwrap();
        let pid = m.kernel().find_by_name("fu_payload.exe")[0];
        m.kernel_mut()
            .register_dump_scrubber(strider_kernel::DumpScrub {
                pids: vec![pid],
                module_names: Vec::new(),
            });
        let ctx = gb_ctx(&mut m);
        let s = ProcessScanner::new();
        let lie = s.high_scan(&m, &ctx, ChainEntry::Win32).unwrap();
        let dump = MemoryDump::parse(&m.kernel().crash_dump()).unwrap();
        let advanced = s.diff(&s.outside_scan(&dump, true), &lie);
        assert!(
            !advanced
                .net_detections()
                .iter()
                .any(|d| d.detail.contains("fu_payload.exe")),
            "scrubbed dump hides the process"
        );
    }
}
