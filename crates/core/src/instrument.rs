//! Crate-private helpers wiring the scanners into [`strider_support::obs`]:
//! the attribute/counter vocabulary every pipeline shares, so the telemetry
//! report reads uniformly across files, registry, processes, and modules.

use crate::snapshot::ViewKind;
use std::sync::Arc;
use strider_support::obs::{Clock, MaybeSpan, Telemetry};
use strider_winapi::ChainStats;

/// Feeds per-iteration latencies from a hot scan loop into a named
/// bounded [`HistogramSketch`](strider_support::obs::HistogramSketch).
///
/// With no telemetry attached the probe is inert — `start()` returns
/// `None` and `finish()` is a no-op — so uninstrumented scans pay only a
/// branch per iteration, never a clock read.
pub(crate) struct LatencyProbe {
    telemetry: Option<Telemetry>,
    clock: Option<Arc<dyn Clock>>,
    name: &'static str,
}

impl LatencyProbe {
    pub(crate) fn new(telemetry: Option<&Telemetry>, name: &'static str) -> Self {
        LatencyProbe {
            telemetry: telemetry.cloned(),
            clock: telemetry.map(Telemetry::clock),
            name,
        }
    }

    /// Reads the clock at the top of an iteration.
    pub(crate) fn start(&self) -> Option<u64> {
        self.clock.as_ref().map(|c| c.now_ns())
    }

    /// Records the elapsed time since `start()` into the histogram.
    pub(crate) fn finish(&self, started: Option<u64>) {
        if let (Some(t), Some(c), Some(s)) = (&self.telemetry, &self.clock, started) {
            t.histogram_record(self.name, c.now_ns().saturating_sub(s) as f64);
        }
    }
}

/// Records a scan's per-view entry count as both span attributes and a
/// `<pipeline>.entries.<View>` counter.
pub(crate) fn record_view_entries(
    telemetry: Option<&Telemetry>,
    span: &MaybeSpan,
    pipeline: &str,
    view: ViewKind,
    entries: usize,
) {
    span.set_attr("view", format!("{view:?}"));
    span.set_attr("entries", entries);
    if let Some(t) = telemetry {
        t.counter_add(&format!("{pipeline}.entries.{view:?}"), entries as u64);
    }
}

/// Attaches chain-traversal aggregates to a high-scan span: how many
/// queries a hook diverted, and `diverted_at` naming the chain level that
/// mutated the result — the paper's attribution of a lie to a layer.
pub(crate) fn record_chain(span: &MaybeSpan, chain: &ChainStats) {
    if !span.is_recording() {
        return;
    }
    span.set_attr("queries", chain.queries);
    span.set_attr("diverted_queries", chain.diverted);
    if chain.marshal_mutations > 0 {
        span.set_attr("marshal_mutations", chain.marshal_mutations);
    }
    if let Some(level) = chain.dominant_level() {
        span.set_attr("diverted_at", level);
    }
}
