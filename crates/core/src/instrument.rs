//! Crate-private helpers wiring the scanners into [`strider_support::obs`]:
//! the attribute/counter vocabulary every pipeline shares, so the telemetry
//! report reads uniformly across files, registry, processes, and modules.

use crate::snapshot::ViewKind;
use strider_support::obs::{MaybeSpan, Telemetry};
use strider_winapi::ChainStats;

/// Records a scan's per-view entry count as both span attributes and a
/// `<pipeline>.entries.<View>` counter.
pub(crate) fn record_view_entries(
    telemetry: Option<&Telemetry>,
    span: &MaybeSpan,
    pipeline: &str,
    view: ViewKind,
    entries: usize,
) {
    span.set_attr("view", format!("{view:?}"));
    span.set_attr("entries", entries);
    if let Some(t) = telemetry {
        t.counter_add(&format!("{pipeline}.entries.{view:?}"), entries as u64);
    }
}

/// Attaches chain-traversal aggregates to a high-scan span: how many
/// queries a hook diverted, and `diverted_at` naming the chain level that
/// mutated the result — the paper's attribution of a lie to a layer.
pub(crate) fn record_chain(span: &MaybeSpan, chain: &ChainStats) {
    if !span.is_recording() {
        return;
    }
    span.set_attr("queries", chain.queries);
    span.set_attr("diverted_queries", chain.diverted);
    if chain.marshal_mutations > 0 {
        span.set_attr("marshal_mutations", chain.marshal_mutations);
    }
    if let Some(level) = chain.dominant_level() {
        span.set_attr("diverted_at", level);
    }
}
