//! Strider GhostBuster: cross-view diff detection of hidden files, Registry
//! entries, processes, and loaded modules.
//!
//! This crate is the paper's primary contribution. Ghostware hides its
//! resources from the OS query/enumeration APIs; GhostBuster "leverages the
//! hiding behavior as a detection mechanism" by comparing two views of the
//! same state at the same time:
//!
//! * **inside-the-box** — a high-level scan through the (hooked) APIs
//!   versus a low-level scan of the underlying structures: the raw MFT for
//!   files ([`FileScanner`]), raw hive files for the Registry
//!   ([`RegistryScanner`]), and kernel process structures — the Active
//!   Process List, or in *advanced mode* the scheduler thread table /
//!   subsystem handle table, which defeats FU-style DKOM
//!   ([`ProcessScanner`]);
//! * **outside-the-box** — the inside high-level scan versus a clean-boot
//!   scan of the captured disk image (WinPE flow) or a crash-dump image for
//!   volatile state ([`GhostBuster::winpe_outside_sweep`]), or the
//!   zero-gap VM variant ([`GhostBuster::vm_outside_files`]).
//!
//! Extensions from Section 5: per-process injected scans
//! ([`injected_sweep`]) that defeat utility-targeted and scanner-aware
//! hiding, the signature-scanner dilemma ([`SignatureScanner`]), and the
//! Unix port ([`UnixGhostBuster`]). Two baselines exist for head-to-head
//! benchmarks: the Tripwire-style [`CrossTimeDiff`] and the VICE-style
//! [`HookScanner`].
//!
//! # The operational layer
//!
//! The paper's detector is a loop body; this crate also ships the loop.
//! A [`ScanPolicy`] turns a sweep into a *supervised* sweep: retries with
//! backoff, salvage-mode parsing, per-pipeline/per-sweep time budgets,
//! cooperative cancellation, and circuit breakers
//! ([`ScanPolicy::supervised`] is the production posture). A sweep records
//! per-pipeline progress into a [`SweepCheckpoint`]
//! ([`GhostBuster::inside_sweep_checkpointed`]) that serializes to JSON and
//! [`resume`](GhostBuster::resume)s after a kill — interrupted pipelines
//! are deliberately *not* checkpointed: a timeout is a reason to re-run,
//! not a result. [`SweepMonitor`] runs the loop continuously against a
//! recorded baseline and raises [`MonitorIncident`]s, each carrying the
//! flight-recorder dump of the pass that tripped it. Fleet-scale fan-out of
//! these supervised sweeps lives upstream in `strider-fleet`.
//!
//! # Examples
//!
//! ```
//! use strider_ghostbuster::GhostBuster;
//! use strider_ghostbuster::AdvancedSource;
//! use strider_ghostware::{Ghostware, Fu};
//! use strider_winapi::Machine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = Machine::with_base_system("victim")?;
//! Fu::default().infect(&mut machine)?; // DKOM process hiding
//!
//! // Normal mode cannot see DKOM…
//! let normal = GhostBuster::new().scan_processes_inside(&mut machine)?;
//! assert!(!normal.has_detections());
//!
//! // …advanced mode can.
//! let advanced = GhostBuster::new()
//!     .with_advanced(AdvancedSource::ThreadTable)
//!     .scan_processes_inside(&mut machine)?;
//! assert!(advanced.has_detections());
//! # Ok(())
//! # }
//! ```
//!
//! A supervised whole-machine sweep on a fake clock, checkpointed so it
//! could resume after a kill:
//!
//! ```
//! use std::sync::Arc;
//! use strider_ghostbuster::{GhostBuster, ScanPolicy, SweepCheckpoint};
//! use strider_ghostware::{Ghostware, HackerDefender};
//! use strider_support::obs::FakeClock;
//! use strider_winapi::Machine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = Machine::with_base_system("victim")?;
//! HackerDefender::default().infect(&mut machine)?;
//!
//! let clock = Arc::new(FakeClock::new());
//! let detector = GhostBuster::new()
//!     .with_policy(ScanPolicy::supervised().with_clock(clock));
//! let mut checkpoint = SweepCheckpoint::new(&machine);
//! let report = detector.inside_sweep_checkpointed(&mut machine, &mut checkpoint)?;
//!
//! assert!(report.is_infected());
//! assert!(report.health.files.is_ok());
//! assert!(checkpoint.is_complete()); // nothing left to resume
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asep_monitor;
mod crosstime;
mod diff;
mod drivers;
mod files;
mod ghostbuster;
mod harden;
mod hookscan;
mod inject;
mod instrument;
mod monitor;
mod policy;
mod process;
mod registry;
mod report;
mod scanfile;
mod signature;
mod snapshot;
mod unixgb;

pub use asep_monitor::{AsepChanges, AsepCheckpoint, AsepMonitor};
pub use crosstime::{ChangeSet, Checkpoint, CrossTimeDiff};
pub use diff::cross_view_diff;
pub use drivers::{DriverAnomaly, DriverFinding, DriverScanner};
pub use files::FileScanner;
pub use ghostbuster::{
    GhostBuster, PipelineCheckpoint, SweepBreakers, SweepCheckpoint, SweepReport, GHOSTBUSTER_IMAGE,
};
pub use hookscan::{install_benign_wrapper, HookFinding, HookScanner};
pub use inject::{injected_sweep, InjectedSweepReport, PerProcessReport};
pub use monitor::{
    MetricSeries, MonitorConfig, MonitorIncident, MonitorObservation, SweepBaseline, SweepMonitor,
};
pub use policy::{interrupt_status, EvasionHardening, PipelineStatus, ScanPolicy, SweepHealth};
pub use process::{AdvancedSource, ProcessScanner};
pub use registry::{OutsideRegistryMode, RegistryScanner};
pub use report::{Detection, DiffReport, FileCategory, NoiseClass, NoiseFilter, ResourceKind};
pub use scanfile::{parse_scan_file, write_scan_file, ScanFileError};
pub use signature::{Signature, SignatureHit, SignatureScanner};
pub use snapshot::{FileFact, HookFact, ModuleFact, ProcessFact, ScanMeta, Snapshot, ViewKind};
pub use strider_support::alert::{
    AlertCondition, AlertEngine, AlertLog, AlertRule, AlertState, AlertTransition, Exposition,
    Severity, TimeSeries,
};
pub use strider_support::obs::{
    FakeClock, FlightDump, FlightEvent, FlightEventKind, FlightRecorder, HistogramSketch,
    MonotonicClock, Telemetry, TelemetryReport,
};
pub use strider_support::task::{
    BreakerState, CancellationToken, CircuitBreaker, Deadline, Interrupt, Supervision, TimeBudget,
};
pub use unixgb::{UnixBinaryIntegrity, UnixDetection, UnixGhostBuster, UnixReport};

/// Convenient re-exports.
pub mod prelude {
    pub use crate::{
        cross_view_diff, injected_sweep, install_benign_wrapper, AdvancedSource, AlertCondition,
        AlertEngine, AlertRule, AlertState, AsepMonitor, BreakerState, CancellationToken,
        CircuitBreaker, CrossTimeDiff, Deadline, Detection, DiffReport, DriverScanner,
        EvasionHardening, FileCategory, FileScanner, FlightDump, FlightRecorder, GhostBuster,
        HistogramSketch, HookScanner, InjectedSweepReport, MonitorConfig, MonitorIncident,
        NoiseClass, NoiseFilter, OutsideRegistryMode, PipelineCheckpoint, PipelineStatus,
        ProcessScanner, RegistryScanner, ResourceKind, ScanMeta, ScanPolicy, Severity,
        SignatureScanner, Snapshot, Supervision, SweepBaseline, SweepBreakers, SweepCheckpoint,
        SweepHealth, SweepMonitor, SweepReport, Telemetry, TelemetryReport, TimeBudget, TimeSeries,
        UnixGhostBuster, ViewKind,
    };
}
