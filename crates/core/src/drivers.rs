//! An AskStrider-style loaded-driver cross-check.
//!
//! The paper notes that "AskStrider can be used to quickly detect a Hacker
//! Defender infection today by revealing its unhidden hxdefdrv.sys driver":
//! rootkits that hide their *service keys* often cannot hide the driver
//! object itself from the kernel's loaded-driver list. This scanner
//! correlates the two views — every loaded driver should be accounted for
//! by a *visible* service entry; a driver whose service is hidden (or
//! absent entirely, as with FU's exploit-loaded `msdirectx.sys`) is an
//! anomaly.

use std::fmt;
use strider_nt_core::{NtPath, NtStatus};
use strider_winapi::{CallContext, ChainEntry, Machine, Query, Row};

/// Why a driver was flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverAnomaly {
    /// No visible service references the driver's image at all.
    NoVisibleService,
}

impl fmt::Display for DriverAnomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverAnomaly::NoVisibleService => write!(f, "no visible service references it"),
        }
    }
}

/// One flagged driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverFinding {
    /// Driver name from the loaded-driver list.
    pub driver: String,
    /// Driver image path.
    pub image_path: String,
    /// Why it was flagged.
    pub anomaly: DriverAnomaly,
}

impl fmt::Display for DriverFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "driver {} ({}): {}",
            self.driver, self.image_path, self.anomaly
        )
    }
}

/// The loaded-driver cross-checker.
#[derive(Debug, Clone, Default)]
pub struct DriverScanner;

impl DriverScanner {
    /// Creates the scanner.
    pub fn new() -> Self {
        Self
    }

    /// Flags every loaded driver not referenced by any *visible* service
    /// entry (name match or ImagePath match, case-insensitive).
    ///
    /// # Errors
    ///
    /// Propagates Registry enumeration failures.
    pub fn scan(
        &self,
        machine: &Machine,
        ctx: &CallContext,
    ) -> Result<Vec<DriverFinding>, NtStatus> {
        let services_key: NtPath = "HKLM\\SYSTEM\\CurrentControlSet\\Services"
            .parse()
            .expect("static");
        // The visible view of services, through the (possibly hooked) APIs.
        let service_rows = machine.query(
            ctx,
            &Query::RegEnumKeys {
                key: services_key.clone(),
            },
            ChainEntry::Win32,
        )?;
        let mut references: Vec<String> = Vec::new();
        for row in service_rows {
            let Row::RegKey(k) = row else { continue };
            references.push(k.name.to_win32_lossy().to_ascii_lowercase());
            let values = machine.query(
                ctx,
                &Query::RegEnumValues { key: k.path },
                ChainEntry::Win32,
            )?;
            for v in values {
                if let Row::RegValue(v) = v {
                    if v.name.to_win32_lossy().eq_ignore_ascii_case("ImagePath") {
                        references.push(v.data.to_ascii_lowercase());
                    }
                }
            }
        }

        let mut findings = Vec::new();
        for driver in machine.kernel().drivers() {
            let name = driver.name.to_win32_lossy().to_ascii_lowercase();
            let image = driver
                .image_path
                .file_name()
                .map(|n| n.to_win32_lossy().to_ascii_lowercase())
                .unwrap_or_default();
            let referenced = references
                .iter()
                .any(|r| r == &name || (!image.is_empty() && r.contains(&image)));
            if !referenced {
                findings.push(DriverFinding {
                    driver: driver.name.to_win32_lossy(),
                    image_path: driver.image_path.to_string(),
                    anomaly: DriverAnomaly::NoVisibleService,
                });
            }
        }
        Ok(findings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_ghostware::{Fu, Ghostware, HackerDefender, ProBotSe};

    fn ctx(machine: &mut Machine) -> CallContext {
        machine
            .ensure_process("askstrider.exe", "C:\\tools\\askstrider.exe")
            .unwrap()
    }

    #[test]
    fn clean_machine_drivers_all_accounted_for() {
        let mut m = Machine::with_base_system("clean").unwrap();
        let c = ctx(&mut m);
        assert!(DriverScanner::new().scan(&m, &c).unwrap().is_empty());
    }

    #[test]
    fn hxdef_driver_flagged_because_its_service_is_hidden() {
        // The paper's AskStrider observation: the driver is visible, the
        // service key is not — the mismatch is the tell.
        let mut m = Machine::with_base_system("victim").unwrap();
        HackerDefender::default().infect(&mut m).unwrap();
        let c = ctx(&mut m);
        let findings = DriverScanner::new().scan(&m, &c).unwrap();
        assert!(
            findings.iter().any(|f| f.driver == "hxdefdrv"),
            "{findings:?}"
        );
    }

    #[test]
    fn fu_msdirectx_flagged_no_service_at_all() {
        let mut m = Machine::with_base_system("victim").unwrap();
        Fu::default().infect(&mut m).unwrap();
        let c = ctx(&mut m);
        let findings = DriverScanner::new().scan(&m, &c).unwrap();
        assert!(findings.iter().any(|f| f.driver == "msdirectx"));
    }

    #[test]
    fn probot_drivers_flagged_hidden_services() {
        let mut m = Machine::with_base_system("victim").unwrap();
        ProBotSe::default().infect(&mut m).unwrap();
        let c = ctx(&mut m);
        let findings = DriverScanner::new().scan(&m, &c).unwrap();
        assert_eq!(findings.len(), 2, "{findings:?}");
    }
}
