//! Detection reports, categorization, and the noise classifier.

use crate::snapshot::ScanMeta;
use std::fmt;

/// Which resource type a detection concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// A file or directory.
    File,
    /// An ASEP hook / Registry entry.
    AsepHook,
    /// A process.
    Process,
    /// A loaded module.
    Module,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::File => "file",
            ResourceKind::AsepHook => "ASEP hook",
            ResourceKind::Process => "process",
            ResourceKind::Module => "module",
        };
        f.write_str(s)
    }
}

/// Figure 3's hidden-file categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileCategory {
    /// Ghostware binaries: EXEs, DLLs, drivers.
    Binary,
    /// Ghostware data files: configuration and logs.
    Data,
    /// Other target files hidden on behalf of the user or rootkit config.
    OtherTarget,
}

impl FileCategory {
    /// Categorizes by file extension, per the paper's three classes.
    pub fn from_path(path: &str) -> Self {
        let lower = path.to_ascii_lowercase();
        let ext = lower.rsplit('.').next().unwrap_or("");
        match ext {
            "exe" | "dll" | "sys" | "drv" | "ocx" | "com" | "scr" => FileCategory::Binary,
            "ini" | "log" | "dat" | "cfg" | "conf" | "tmp" | "db" => FileCategory::Data,
            _ => FileCategory::OtherTarget,
        }
    }
}

impl fmt::Display for FileCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FileCategory::Binary => "binary",
            FileCategory::Data => "data",
            FileCategory::OtherTarget => "other target",
        };
        f.write_str(s)
    }
}

/// The noise classifier's verdict on one detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseClass {
    /// No benign explanation: treat as ghostware.
    Suspicious,
    /// Matches a known always-running-service churn location (AV logs, CCM
    /// inventory, System Restore change logs, prefetch, browser cache) —
    /// the paper's outside-the-box false positives, "easily filtered out
    /// through manual inspection".
    LikelyServiceChurn,
    /// The backing Registry record is corrupt rather than hidden — the
    /// paper's single Registry false positive.
    LikelyCorruption,
    /// Appeared in some quorum passes and vanished in others — the
    /// signature of scan-aware evasion (flicker hiding, unhide-on-scan).
    /// Counted with [`NoiseClass::Suspicious`] in
    /// [`DiffReport::net_detections`]: an unstable lie is still a lie.
    Flickering,
}

impl fmt::Display for NoiseClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NoiseClass::Suspicious => "suspicious",
            NoiseClass::LikelyServiceChurn => "likely service churn",
            NoiseClass::LikelyCorruption => "likely corruption",
            NoiseClass::Flickering => "flickering (evasion suspected)",
        };
        f.write_str(s)
    }
}

/// One cross-view finding: present in the truth view, absent from the lie.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// Resource type.
    pub kind: ResourceKind,
    /// The identity key the diff matched on.
    pub identity: String,
    /// Human-readable description of the hidden resource.
    pub detail: String,
    /// File category (files only).
    pub category: Option<FileCategory>,
    /// Noise verdict.
    pub noise: NoiseClass,
}

impl fmt::Display for Detection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} ({})", self.kind, self.detail, self.noise)
    }
}

/// The classifier applied to raw diff output.
///
/// The paper's position is that cross-view diffs have near-zero false
/// positives and the residue is trivially explainable; this classifier
/// encodes those explanations. It never *drops* a finding — it labels it,
/// and [`DiffReport::net_detections`] is the "after manual inspection" view.
#[derive(Debug, Clone)]
pub struct NoiseFilter {
    churn_patterns: Vec<String>,
}

impl Default for NoiseFilter {
    fn default() -> Self {
        Self {
            churn_patterns: [
                "\\etrust\\logs\\",
                "\\ccm\\",
                "\\system volume information\\",
                "\\prefetch\\",
                "\\temporary internet files\\",
                "\\windows\\temp\\",
                "/var/log/",
                "/tmp/",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        }
    }
}

impl NoiseFilter {
    /// Creates the standard filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a site-specific churn location.
    pub fn add_pattern(&mut self, pattern: &str) {
        self.churn_patterns.push(pattern.to_ascii_lowercase());
    }

    /// Classifies a path-shaped identity.
    pub fn classify_path(&self, path: &str) -> NoiseClass {
        let lower = path.to_ascii_lowercase();
        if self
            .churn_patterns
            .iter()
            .any(|p| lower.contains(p.as_str()))
        {
            NoiseClass::LikelyServiceChurn
        } else {
            NoiseClass::Suspicious
        }
    }
}

/// A complete cross-view diff report for one resource kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffReport {
    /// Metadata of the truth-side scan.
    pub truth_meta: ScanMeta,
    /// Metadata of the lie-side scan.
    pub lie_meta: ScanMeta,
    /// Resources present in the truth but missing from the lie.
    pub detections: Vec<Detection>,
    /// Resources present in the lie but missing from the truth — rare, but
    /// e.g. a NUL-truncated Registry name appears as a different identity.
    pub phantom_in_lie: Vec<String>,
}

impl DiffReport {
    /// Whether anything at all was hidden.
    pub fn has_detections(&self) -> bool {
        !self.detections.is_empty()
    }

    /// Findings still suspicious after noise classification — the paper's
    /// "after easy manual filtering" number.
    pub fn net_detections(&self) -> Vec<&Detection> {
        self.detections
            .iter()
            .filter(|d| matches!(d.noise, NoiseClass::Suspicious | NoiseClass::Flickering))
            .collect()
    }

    /// Findings classified as benign noise — the false-positive count when
    /// the machine is actually clean.
    pub fn noise_detections(&self) -> Vec<&Detection> {
        self.detections
            .iter()
            .filter(|d| !matches!(d.noise, NoiseClass::Suspicious | NoiseClass::Flickering))
            .collect()
    }

    /// Findings that appeared and vanished across quorum passes — the
    /// per-pipeline evasion signal ([`NoiseClass::Flickering`]).
    pub fn flicker_score(&self) -> usize {
        self.detections
            .iter()
            .filter(|d| d.noise == NoiseClass::Flickering)
            .count()
    }

    /// The scan-pair time gap in ticks — the FP driver.
    pub fn scan_gap(&self) -> u64 {
        self.truth_meta
            .taken_at
            .gap_since(self.lie_meta.taken_at)
            .max(self.lie_meta.taken_at.gap_since(self.truth_meta.taken_at))
    }

    /// Counts detections per file category (Figure 3's columns).
    pub fn category_counts(&self) -> (usize, usize, usize) {
        let mut bins = (0, 0, 0);
        for d in &self.detections {
            match d.category {
                Some(FileCategory::Binary) => bins.0 += 1,
                Some(FileCategory::Data) => bins.1 += 1,
                Some(FileCategory::OtherTarget) => bins.2 += 1,
                None => {}
            }
        }
        bins
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cross-view diff: {} vs {} — {} hidden, {} noise",
            self.truth_meta.view,
            self.lie_meta.view,
            self.net_detections().len(),
            self.noise_detections().len()
        )?;
        for d in &self.detections {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// JSON serialization (see `strider_support::json`, replacing the former
// serde derives)
// ---------------------------------------------------------------------

strider_support::impl_json!(
    enum ResourceKind {
        File,
        AsepHook,
        Process,
        Module,
    }
);
strider_support::impl_json!(
    enum FileCategory {
        Binary,
        Data,
        OtherTarget,
    }
);
strider_support::impl_json!(
    enum NoiseClass {
        Suspicious,
        LikelyServiceChurn,
        LikelyCorruption,
        Flickering,
    }
);
strider_support::impl_json!(struct Detection { kind, identity, detail, category, noise });
strider_support::impl_json!(struct DiffReport { truth_meta, lie_meta, detections, phantom_in_lie });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::ViewKind;
    use strider_nt_core::Tick;

    fn det(kind: ResourceKind, detail: &str, noise: NoiseClass) -> Detection {
        Detection {
            kind,
            identity: detail.to_ascii_lowercase(),
            detail: detail.to_string(),
            category: (kind == ResourceKind::File).then(|| FileCategory::from_path(detail)),
            noise,
        }
    }

    #[test]
    fn categorization_follows_extension() {
        assert_eq!(
            FileCategory::from_path("C:\\a\\hxdef100.exe"),
            FileCategory::Binary
        );
        assert_eq!(
            FileCategory::from_path("C:\\a\\hxdefdrv.sys"),
            FileCategory::Binary
        );
        assert_eq!(
            FileCategory::from_path("C:\\a\\hxdef100.ini"),
            FileCategory::Data
        );
        assert_eq!(
            FileCategory::from_path("C:\\a\\vanquish.log"),
            FileCategory::Data
        );
        assert_eq!(
            FileCategory::from_path("C:\\a\\diary.txt"),
            FileCategory::OtherTarget
        );
        assert_eq!(FileCategory::from_path("noext"), FileCategory::OtherTarget);
    }

    #[test]
    fn noise_filter_recognizes_service_locations() {
        let f = NoiseFilter::new();
        assert_eq!(
            f.classify_path("C:\\Program Files\\eTrust\\logs\\av-000120.log"),
            NoiseClass::LikelyServiceChurn
        );
        assert_eq!(
            f.classify_path("C:\\windows\\prefetch\\X.pf"),
            NoiseClass::LikelyServiceChurn
        );
        assert_eq!(
            f.classify_path("C:\\windows\\system32\\hxdef100.exe"),
            NoiseClass::Suspicious
        );
        assert_eq!(
            f.classify_path("/var/log/xferlog"),
            NoiseClass::LikelyServiceChurn
        );
    }

    #[test]
    fn custom_patterns_extend_the_filter() {
        let mut f = NoiseFilter::new();
        f.add_pattern("\\sitelocal\\spool\\");
        assert_eq!(
            f.classify_path("C:\\SiteLocal\\Spool\\x.tmp"),
            NoiseClass::LikelyServiceChurn
        );
    }

    #[test]
    fn report_counters() {
        let report = DiffReport {
            truth_meta: ScanMeta::new(ViewKind::LowLevelMft, Tick(10)),
            lie_meta: ScanMeta::new(ViewKind::HighLevelWin32, Tick(7)),
            detections: vec![
                det(
                    ResourceKind::File,
                    "C:\\x\\evil.exe",
                    NoiseClass::Suspicious,
                ),
                det(
                    ResourceKind::File,
                    "C:\\x\\evil.log",
                    NoiseClass::Suspicious,
                ),
                det(
                    ResourceKind::File,
                    "C:\\prefetch\\A.pf",
                    NoiseClass::LikelyServiceChurn,
                ),
            ],
            phantom_in_lie: Vec::new(),
        };
        assert!(report.has_detections());
        assert_eq!(report.net_detections().len(), 2);
        assert_eq!(report.noise_detections().len(), 1);
        assert_eq!(report.scan_gap(), 3);
        assert_eq!(report.category_counts(), (1, 1, 1));
        let rendered = report.to_string();
        assert!(rendered.contains("2 hidden"));
        assert!(rendered.contains("1 noise"));
    }
}
