//! The DLL-injection extension (paper, Section 5).
//!
//! "Instead of running the GhostBuster EXE that can be easily targeted, we
//! inject the GhostBuster DLL into every running process and perform the
//! scans and diff from inside each process, essentially turning every
//! process into a GhostBuster." A per-process diff catches ghostware that
//! lies only to selected utilities, and ghostware that spares only the
//! known scanner image; it also reveals *which* processes are being lied
//! to.

use crate::files::FileScanner;
use crate::process::ProcessScanner;
use crate::report::DiffReport;
use strider_nt_core::{NtStatus, Pid};
use strider_winapi::{CallContext, ChainEntry, Machine};

/// The result of scanning from inside one process.
#[derive(Debug, Clone)]
pub struct PerProcessReport {
    /// The process the GhostBuster DLL ran inside.
    pub host_pid: Pid,
    /// The host's image name.
    pub host_image: String,
    /// Hidden files as seen from this process's view.
    pub files: DiffReport,
    /// Hidden processes as seen from this process's view.
    pub processes: DiffReport,
}

impl PerProcessReport {
    /// Whether this process was being lied to.
    pub fn was_lied_to(&self) -> bool {
        !self.files.net_detections().is_empty() || !self.processes.net_detections().is_empty()
    }
}

/// The injected-scan report across all processes.
#[derive(Debug, Clone)]
pub struct InjectedSweepReport {
    /// One report per host process.
    pub per_process: Vec<PerProcessReport>,
}

impl InjectedSweepReport {
    /// Processes that experienced hiding.
    pub fn lied_to(&self) -> Vec<&PerProcessReport> {
        self.per_process
            .iter()
            .filter(|r| r.was_lied_to())
            .collect()
    }

    /// Whether any process anywhere was lied to.
    pub fn is_infected(&self) -> bool {
        !self.lied_to().is_empty()
    }

    /// Union of all hidden-file details across hosts.
    pub fn all_hidden_files(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .per_process
            .iter()
            .flat_map(|r| {
                r.files
                    .net_detections()
                    .into_iter()
                    .map(|d| d.detail.clone())
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// Runs the file and process diffs from inside every running process.
///
/// The truth sides (raw MFT parse; APL/thread-table traversal) are shared;
/// the lie side is re-scanned once per host so each process's own view —
/// through its own IAT and whatever scoped hooks apply to it — is compared.
///
/// # Errors
///
/// Propagates scan failures.
pub fn injected_sweep(machine: &Machine) -> Result<InjectedSweepReport, NtStatus> {
    let files = FileScanner::new();
    let processes = ProcessScanner::new();
    let file_truth = files.low_scan(machine)?;
    let proc_truth =
        processes.low_scan_advanced(machine, crate::process::AdvancedSource::ThreadTable);

    let mut per_process = Vec::new();
    for pid in machine.kernel().processes_via_threads() {
        let Some(proc_obj) = machine.kernel().process(pid) else {
            continue;
        };
        let host_image = proc_obj.image_name.to_win32_lossy();
        if host_image == "System" {
            continue;
        }
        let ctx = CallContext::new(pid, &host_image);
        let file_lie = files.high_scan(machine, &ctx, ChainEntry::Win32)?;
        let proc_lie = processes.high_scan(machine, &ctx, ChainEntry::Win32)?;
        per_process.push(PerProcessReport {
            host_pid: pid,
            host_image,
            files: files.diff(&file_truth, &file_lie),
            processes: processes.diff(&proc_truth, &proc_lie),
        });
    }
    Ok(InjectedSweepReport { per_process })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ghostbuster::GhostBuster;
    use strider_ghostware::prelude::{ScannerAwareHider, UtilityTargetedHider};
    use strider_ghostware::Ghostware;

    #[test]
    fn plain_ghostbuster_misses_utility_targeted_hiding() {
        let mut m = Machine::with_base_system("victim").unwrap();
        UtilityTargetedHider::default().infect(&mut m).unwrap();
        let report = GhostBuster::new().inside_sweep(&mut m).unwrap();
        assert!(
            !report.is_infected(),
            "the tool's own process is not lied to, so the plain EXE sees no diff"
        );
    }

    #[test]
    fn injected_sweep_catches_utility_targeted_hiding() {
        let mut m = Machine::with_base_system("victim").unwrap();
        UtilityTargetedHider::default().infect(&mut m).unwrap();
        m.spawn_process("taskmgr.exe", "C:\\windows\\system32\\taskmgr.exe")
            .unwrap();
        let report = injected_sweep(&m).unwrap();
        assert!(report.is_infected());
        let liars: Vec<&str> = report
            .lied_to()
            .iter()
            .map(|r| r.host_image.as_str())
            .collect();
        assert!(liars.contains(&"taskmgr.exe"));
        assert!(liars.contains(&"explorer.exe"));
        assert!(report
            .all_hidden_files()
            .iter()
            .any(|f| f.contains("targbot")));
    }

    #[test]
    fn injected_sweep_catches_scanner_aware_hiding() {
        let mut m = Machine::with_base_system("victim").unwrap();
        ScannerAwareHider::default().infect(&mut m).unwrap();
        // The plain tool is spared the lie and so sees nothing.
        let plain = GhostBuster::new().inside_sweep(&mut m).unwrap();
        assert!(!plain.is_infected());
        // Every *other* process is lied to; injection exposes it.
        let report = injected_sweep(&m).unwrap();
        assert!(report.is_infected());
        assert!(report
            .all_hidden_files()
            .iter()
            .any(|f| f.contains("sneaky")));
    }

    #[test]
    fn clean_machine_injected_sweep_is_silent() {
        let m = Machine::with_base_system("clean").unwrap();
        let report = injected_sweep(&m).unwrap();
        assert!(!report.is_infected());
        assert!(report.per_process.len() >= 8);
    }
}
