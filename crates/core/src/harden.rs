//! Scanner-side anti-evasion plumbing shared by the pipelines.
//!
//! Two pieces live here. [`DecoyPump`] interleaves discarded queries of
//! *other* kinds into a scanner's real query stream, so the same-kind
//! bursts that burst-sensing ghostware fingerprints never form (see
//! [`EvasionHardening::decoy_every`]). [`PassCounter`] hands each scan
//! pass a fresh index for [`EvasionHardening::pass_stream`], so
//! consecutive quorum passes shuffle their enumeration differently while
//! the whole sequence stays derivable from the policy seed — the counter
//! is reset whenever a scanner is re-supervised for a pipeline run, which
//! keeps fleet shards deterministic regardless of work-stealing order.
//!
//! [`EvasionHardening`]: crate::policy::EvasionHardening
//! [`EvasionHardening::decoy_every`]: crate::policy::EvasionHardening::decoy_every
//! [`EvasionHardening::pass_stream`]: crate::policy::EvasionHardening::pass_stream

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use strider_winapi::{CallContext, ChainEntry, Machine, Query};

/// Issues one discarded decoy query per `every` real queries, rotating
/// through `rotation`. Call sites pass a rotation that excludes their own
/// query kind (a files decoy during a Registry probe run must not extend
/// the Registry burst it is there to break).
#[derive(Debug)]
pub(crate) struct DecoyPump {
    every: u32,
    since_last: u32,
    rotation: Vec<Query>,
    next: usize,
    issued: u64,
}

impl DecoyPump {
    /// `every == 0` (or an empty rotation) disables the pump.
    pub fn new(every: u32, rotation: Vec<Query>) -> Self {
        Self {
            every,
            since_last: 0,
            rotation,
            next: 0,
            issued: 0,
        }
    }

    /// A pump for a policy without hardening: never fires.
    pub fn disabled() -> Self {
        Self::new(0, Vec::new())
    }

    /// Counts one real query; fires a decoy when the interval fills. The
    /// decoy's result (and any error — a decoy may probe a path hidden
    /// from this caller) is discarded: its only job is to appear in the
    /// adversary-observable query stream.
    pub fn tick(&mut self, machine: &Machine, ctx: &CallContext) {
        if self.every == 0 || self.rotation.is_empty() {
            return;
        }
        self.since_last += 1;
        if self.since_last < self.every {
            return;
        }
        self.since_last = 0;
        let query = &self.rotation[self.next % self.rotation.len()];
        self.next += 1;
        let _ = machine.query(ctx, query, ChainEntry::Win32);
        self.issued += 1;
    }

    /// Decoys issued so far (for the `<pipeline>.decoys` telemetry
    /// counter and the DESIGN cost model).
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

/// The standard decoy rotation for a file-enumeration scan: process and
/// Registry queries, never more directory enumeration.
pub(crate) fn file_scan_decoys() -> Vec<Query> {
    vec![
        Query::ProcessList,
        Query::RegEnumKeys {
            key: "HKLM\\SOFTWARE".parse().expect("static decoy key"),
        },
    ]
}

/// The standard decoy rotation for a Registry probe run: process and
/// root-directory queries, never more Registry enumeration.
pub(crate) fn registry_scan_decoys(volume_label: &str) -> Vec<Query> {
    vec![
        Query::ProcessList,
        Query::DirectoryEnum {
            path: strider_nt_core::NtPath::root_of(volume_label),
        },
    ]
}

/// A clone-shared pass counter. Each scan pass calls [`PassCounter::next`]
/// to index its [`pass_stream`]; re-supervising a scanner replaces the
/// counter with a fresh one so every pipeline run starts from pass 0.
///
/// [`pass_stream`]: crate::policy::EvasionHardening::pass_stream
#[derive(Debug, Clone, Default)]
pub(crate) struct PassCounter {
    inner: Arc<AtomicU64>,
}

impl PassCounter {
    /// The next pass index (0, 1, 2, … per counter instance).
    pub fn next(&self) -> u64 {
        self.inner.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pump_fires_on_the_interval_and_rotates() {
        let m = Machine::with_base_system("t").unwrap();
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let mut pump = DecoyPump::new(2, file_scan_decoys());
        let before = m.scan_tap().queries();
        for _ in 0..6 {
            pump.tick(&m, &ctx);
        }
        assert_eq!(pump.issued(), 3);
        assert_eq!(m.scan_tap().queries() - before, 3);
        let mut off = DecoyPump::disabled();
        for _ in 0..6 {
            off.tick(&m, &ctx);
        }
        assert_eq!(off.issued(), 0);
    }

    #[test]
    fn pass_counter_resets_with_a_fresh_instance() {
        let counter = PassCounter::default();
        let shared = counter.clone();
        assert_eq!(counter.next(), 0);
        assert_eq!(shared.next(), 1);
        let fresh = PassCounter::default();
        assert_eq!(fresh.next(), 0);
    }
}
