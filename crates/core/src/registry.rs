//! Hidden-ASEP and hidden-Registry detection (paper, Section 3).

use crate::diff::cross_view_diff;
use crate::harden::{registry_scan_decoys, DecoyPump, PassCounter};
use crate::instrument::{record_chain, record_view_entries, LatencyProbe};
use crate::policy::{interrupt_status, ScanPolicy};
use crate::report::{Detection, DiffReport, NoiseClass, ResourceKind};
use crate::snapshot::{HookFact, ScanMeta, Snapshot, ViewKind};
use std::cell::RefCell;
use std::rc::Rc;
use strider_hive::prelude::{AsepHook, AsepLocation, KeyView, ViewedValue};
use strider_hive::{asep, RawHive};
use strider_nt_core::{IoStats, NtPath, NtStatus, NtString};
use strider_support::obs::{MaybeSpan, Telemetry};
use strider_support::task::Supervision;
use strider_winapi::{CallContext, ChainEntry, ChainStats, DiskImage, Machine, Query, Row};

/// How the outside-the-box Registry scan reads the hive files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutsideRegistryMode {
    /// Mount the hive files under the clean OS and scan with the ordinary
    /// Win32 APIs (the paper's flow): corrupt records and NUL-embedded names
    /// are invisible here too.
    MountedWin32,
    /// Parse the raw bytes with the forensic parser: everything visible.
    RawParse,
}

/// A [`KeyView`] over the machine's live query chain — the high-level scan.
struct ApiKeyView<'a> {
    machine: &'a Machine,
    ctx: &'a CallContext,
    entry: ChainEntry,
    path: NtPath,
    io: Rc<RefCell<IoStats>>,
    chain: Option<Rc<RefCell<ChainStats>>>,
    pump: Option<Rc<RefCell<DecoyPump>>>,
}

impl<'a> ApiKeyView<'a> {
    fn query(&self, query: Query) -> Vec<Row> {
        let mut io = self.io.borrow_mut();
        io.record_api_call();
        let rows = match &self.chain {
            Some(chain) => match self.machine.query_traced(self.ctx, &query, self.entry) {
                Ok((rows, trace)) => {
                    chain.borrow_mut().absorb(&trace);
                    rows
                }
                Err(_) => Vec::new(),
            },
            None => self
                .machine
                .query(self.ctx, &query, self.entry)
                .unwrap_or_default(),
        };
        io.record_entries(rows.len() as u64);
        drop(io);
        if let Some(pump) = &self.pump {
            pump.borrow_mut().tick(self.machine, self.ctx);
        }
        rows
    }
}

impl<'a> KeyView for ApiKeyView<'a> {
    fn subkey(&self, name: &NtString) -> Option<Self> {
        self.subkeys()
            .into_iter()
            .find(|(n, _)| n.eq_ignore_case(name))
            .map(|(_, v)| v)
    }

    fn subkeys(&self) -> Vec<(NtString, Self)> {
        self.query(Query::RegEnumKeys {
            key: self.path.clone(),
        })
        .into_iter()
        .filter_map(|row| match row {
            Row::RegKey(k) => Some((
                k.name.clone(),
                ApiKeyView {
                    machine: self.machine,
                    ctx: self.ctx,
                    entry: self.entry,
                    path: self.path.join(k.name),
                    io: Rc::clone(&self.io),
                    chain: self.chain.clone(),
                    pump: self.pump.clone(),
                },
            )),
            _ => None,
        })
        .collect()
    }

    fn values(&self) -> Vec<ViewedValue> {
        self.query(Query::RegEnumValues {
            key: self.path.clone(),
        })
        .into_iter()
        .filter_map(|row| match row {
            Row::RegValue(v) => Some(ViewedValue {
                name: v.name,
                target: v.data,
                corrupt: false,
            }),
            _ => None,
        })
        .collect()
    }

    fn render_name(&self, name: &NtString) -> String {
        match self.entry {
            ChainEntry::Win32 => name.to_win32_lossy(),
            ChainEntry::Native => name.to_display_string(),
        }
    }
}

/// A Win32 lens over raw parsed hives: what mounting the files under a clean
/// OS shows (corrupt records dropped, names truncated at `NUL`s).
struct Win32OverRaw<'a>(asep::RawKeyView<'a>);

impl<'a> KeyView for Win32OverRaw<'a> {
    fn subkey(&self, name: &NtString) -> Option<Self> {
        self.0.subkey(name).map(Win32OverRaw)
    }

    fn subkeys(&self) -> Vec<(NtString, Self)> {
        self.0
            .subkeys()
            .into_iter()
            .map(|(n, v)| (n, Win32OverRaw(v)))
            .collect()
    }

    fn values(&self) -> Vec<ViewedValue> {
        self.0.values().into_iter().filter(|v| !v.corrupt).collect()
    }

    fn render_name(&self, name: &NtString) -> String {
        name.to_win32_lossy()
    }
}

/// The hidden-ASEP scanner.
#[derive(Debug, Clone)]
pub struct RegistryScanner {
    catalog: Vec<AsepLocation>,
    telemetry: Option<Telemetry>,
    policy: ScanPolicy,
    supervision: Supervision,
    pass_counter: PassCounter,
}

impl Default for RegistryScanner {
    fn default() -> Self {
        Self {
            catalog: asep::catalog(),
            telemetry: None,
            policy: ScanPolicy::default(),
            supervision: Supervision::unsupervised(),
            pass_counter: PassCounter::default(),
        }
    }
}

impl RegistryScanner {
    /// Creates a scanner over the standard ASEP catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Threads a telemetry registry through every scan: per-phase spans,
    /// per-view entry counters, and chain-divergence attribution.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Replaces the resilience policy: retries for transient hive-copy
    /// failures, and salvage-mode parsing of damaged hive bytes (skipped
    /// bins are recorded as defects in the scan's
    /// [`IoStats`] and, when telemetry is attached, the `registry.defects`
    /// counter).
    pub fn with_policy(mut self, policy: ScanPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Places the scanner under `supervision`: each per-hive copy/parse
    /// iteration and phase boundary checks the cancellation token and
    /// deadline, and stalled ([`NtStatus::Pending`]) hive copies are
    /// abandoned when supervision interrupts. The default is
    /// [`Supervision::unsupervised`] — never interrupted.
    pub fn with_supervision(mut self, supervision: Supervision) -> Self {
        self.supervision = supervision;
        // A re-supervised scanner starts a fresh pipeline run; see
        // `harden::PassCounter`.
        self.pass_counter = PassCounter::default();
        self
    }

    /// The catalog in use.
    pub fn catalog(&self) -> &[AsepLocation] {
        &self.catalog
    }

    /// The high-level scan: extract every ASEP hook through the (possibly
    /// hooked) Registry enumeration APIs.
    pub fn high_scan(
        &self,
        machine: &Machine,
        ctx: &CallContext,
        entry: ChainEntry,
    ) -> Snapshot<HookFact> {
        let view = match entry {
            ChainEntry::Win32 => ViewKind::HighLevelWin32,
            ChainEntry::Native => ViewKind::HighLevelNative,
        };
        let span = MaybeSpan::start(self.telemetry.as_ref(), "registry.high_scan");
        let latency = LatencyProbe::new(self.telemetry.as_ref(), "registry.key_probe_ns");
        let io = Rc::new(RefCell::new(IoStats::default()));
        let chain = span
            .is_recording()
            .then(|| Rc::new(RefCell::new(ChainStats::default())));
        // Hardened scans probe the ASEP catalog in a per-pass shuffled
        // order and interleave non-Registry decoy queries, so probe runs
        // neither enumerate predictably nor form same-kind bursts.
        let mut catalog = self.catalog.clone();
        let pump = self.policy.hardening.map(|h| {
            h.pass_stream("registry", self.pass_counter.next())
                .shuffle(&mut catalog);
            Rc::new(RefCell::new(DecoyPump::new(
                h.decoy_every,
                registry_scan_decoys(machine.volume().label()),
            )))
        });
        let hooks = asep::extract_hooks_with(
            |path| {
                // The key must be enumerable for the view to exist.
                let probe = Query::RegEnumValues { key: path.clone() };
                let probe_started = latency.start();
                let reachable = match &chain {
                    Some(chain) => match machine.query_traced(ctx, &probe, entry) {
                        Ok((_, trace)) => {
                            chain.borrow_mut().absorb(&trace);
                            true
                        }
                        Err(_) => false,
                    },
                    None => machine.query(ctx, &probe, entry).is_ok(),
                };
                latency.finish(probe_started);
                if let Some(pump) = &pump {
                    pump.borrow_mut().tick(machine, ctx);
                }
                reachable.then(|| ApiKeyView {
                    machine,
                    ctx,
                    entry,
                    path: path.clone(),
                    io: Rc::clone(&io),
                    chain: chain.clone(),
                    pump: pump.clone(),
                })
            },
            &catalog,
        );
        let mut snap = Snapshot::new(ScanMeta::new(view, machine.now()));
        snap.meta.io = *io.borrow();
        for hook in hooks {
            snap.insert(hook.identity(), hook);
        }
        record_view_entries(self.telemetry.as_ref(), &span, "registry", view, snap.len());
        if let Some(pump) = &pump {
            let issued = pump.borrow().issued();
            if issued > 0 {
                if let Some(t) = &self.telemetry {
                    t.counter_add("registry.decoys", issued);
                }
            }
        }
        span.set_attr("api_calls", snap.meta.io.api_calls);
        if let Some(chain) = &chain {
            record_chain(&span, &chain.borrow());
        }
        snap
    }

    /// Parses hive bytes per the policy: strict, or salvage mode with the
    /// defect count accumulated into `defects`.
    fn parse_hive(&self, bytes: &[u8], defects: &mut u64) -> Result<RawHive, NtStatus> {
        if self.policy.salvage {
            let salvaged = RawHive::parse_salvage(bytes);
            *defects += salvaged.defects.len() as u64;
            Ok(salvaged.value)
        } else {
            RawHive::parse(bytes).map_err(|e| NtStatus::CorruptStructure(e.to_string()))
        }
    }

    fn record_defect_counter(&self, span: &MaybeSpan, defects: u64) {
        if defects > 0 {
            span.set_attr("defects", defects);
            if let Some(t) = &self.telemetry {
                t.counter_add("registry.defects", defects);
            }
        }
    }

    /// The low-level inside-the-box scan: copy each hive's bytes (a step
    /// privileged ghostware may tamper with) and parse them with the
    /// forensic parser.
    ///
    /// # Errors
    ///
    /// Fails when a hive copy fails permanently (transient failures are
    /// retried per the [`ScanPolicy`]) or does not parse with salvage off.
    pub fn low_scan(&self, machine: &Machine) -> Result<Snapshot<HookFact>, NtStatus> {
        let span = MaybeSpan::start(self.telemetry.as_ref(), "registry.low_scan");
        let mut parsed = Vec::new();
        let mut io = IoStats::default();
        let mut defects = 0;
        for hive in machine.registry().hives() {
            self.supervision.checkpoint().map_err(interrupt_status)?;
            let mount = hive.mount().clone();
            let bytes = self
                .policy
                .supervised_retry(&self.supervision, || machine.try_copy_hive_bytes(&mount))?;
            io.record_sequential(bytes.len() as u64);
            let raw = self.parse_hive(&bytes, &mut defects)?;
            parsed.push((mount, raw));
        }
        io.record_defects(defects);
        self.record_defect_counter(&span, defects);
        let hooks = asep::extract_raw(&parsed, &self.catalog);
        let mut snap = Snapshot::new(ScanMeta::new(ViewKind::LowLevelHiveParse, machine.now()));
        snap.meta.io = io;
        snap.meta.io.record_entries(hooks.len() as u64);
        for hook in hooks {
            snap.insert(hook.identity(), hook);
        }
        record_view_entries(
            self.telemetry.as_ref(),
            &span,
            "registry",
            ViewKind::LowLevelHiveParse,
            snap.len(),
        );
        span.set_attr("bytes_read", snap.meta.io.bytes_read);
        Ok(snap)
    }

    /// The outside-the-box scan over a captured disk image.
    ///
    /// # Errors
    ///
    /// Fails when a hive image does not parse.
    pub fn outside_scan(
        &self,
        image: &DiskImage,
        mode: OutsideRegistryMode,
    ) -> Result<Snapshot<HookFact>, NtStatus> {
        let span = MaybeSpan::start(self.telemetry.as_ref(), "registry.outside_scan");
        let mut parsed = Vec::new();
        let mut io = IoStats::default();
        let mut defects = 0;
        for (mount, bytes) in &image.hives {
            io.record_sequential(bytes.len() as u64);
            let raw = self.parse_hive(bytes, &mut defects)?;
            parsed.push((mount.clone(), raw));
        }
        io.record_defects(defects);
        self.record_defect_counter(&span, defects);
        let hooks = match mode {
            OutsideRegistryMode::RawParse => asep::extract_raw(&parsed, &self.catalog),
            OutsideRegistryMode::MountedWin32 => asep::extract_hooks_with(
                |path| {
                    let (mount, raw) = parsed
                        .iter()
                        .filter(|(m, _)| path.starts_with(m))
                        .max_by_key(|(m, _)| m.components().len())?;
                    let rel = path.components()[mount.components().len()..].to_vec();
                    raw.descend(&rel).map(|k| Win32OverRaw(asep::RawKeyView(k)))
                },
                &self.catalog,
            ),
        };
        let view = match mode {
            OutsideRegistryMode::RawParse => ViewKind::OutsideDisk,
            OutsideRegistryMode::MountedWin32 => ViewKind::OutsideMountedHives,
        };
        let mut snap = Snapshot::new(ScanMeta::new(view, image.taken_at));
        snap.meta.io = io;
        for hook in hooks {
            snap.insert(hook.identity(), hook);
        }
        record_view_entries(self.telemetry.as_ref(), &span, "registry", view, snap.len());
        span.set_attr("bytes_read", snap.meta.io.bytes_read);
        Ok(snap)
    }

    /// Diffs hook snapshots, classifying corrupt-record findings as the
    /// paper's Registry false positive.
    pub fn diff(&self, truth: &Snapshot<HookFact>, lie: &Snapshot<HookFact>) -> DiffReport {
        let span = MaybeSpan::start(self.telemetry.as_ref(), "registry.diff");
        let mut report = {
            let _cross = MaybeSpan::start(self.telemetry.as_ref(), "registry.cross_view_diff");
            cross_view_diff(truth, lie, |key, hook: &AsepHook| Detection {
                kind: ResourceKind::AsepHook,
                identity: key.to_string(),
                detail: hook.to_string(),
                category: None,
                noise: NoiseClass::Suspicious,
            })
        };
        {
            let _noise = MaybeSpan::start(self.telemetry.as_ref(), "registry.noise_classification");
            for detection in &mut report.detections {
                let corrupt = truth
                    .get(&detection.identity)
                    .is_some_and(|hook: &AsepHook| hook.corrupt);
                if corrupt {
                    detection.noise = NoiseClass::LikelyCorruption;
                }
            }
        }
        span.set_attr("hidden", report.net_detections().len());
        span.set_attr("noise", report.noise_detections().len());
        report
    }

    /// One-call inside-the-box hidden-ASEP detection.
    ///
    /// # Errors
    ///
    /// Propagates scan failures.
    pub fn scan_inside(
        &self,
        machine: &Machine,
        ctx: &CallContext,
    ) -> Result<DiffReport, NtStatus> {
        let _span = MaybeSpan::start(self.telemetry.as_ref(), "registry.scan_inside");
        let lie = self.high_scan(machine, ctx, ChainEntry::Win32);
        self.supervision.checkpoint().map_err(interrupt_status)?;
        let truth = self.low_scan(machine)?;
        Ok(self.diff(&truth, &lie))
    }

    // ------------------------------------------------------------------
    // Full-tree scans: hidden keys/values anywhere, not just ASEPs
    // ------------------------------------------------------------------

    /// The full-tree high-level scan: every key and value in every hive,
    /// enumerated through the API chain. Slower than the ASEP scan (the
    /// paper's 18–63 s vs minutes trade-off) but catches hiding outside
    /// the auto-start catalog.
    pub fn full_high_scan(
        &self,
        machine: &Machine,
        ctx: &CallContext,
        entry: ChainEntry,
    ) -> Snapshot<String> {
        let view = match entry {
            ChainEntry::Win32 => ViewKind::HighLevelWin32,
            ChainEntry::Native => ViewKind::HighLevelNative,
        };
        let span = MaybeSpan::start(self.telemetry.as_ref(), "registry.full_high_scan");
        let io = Rc::new(RefCell::new(IoStats::default()));
        let chain = span
            .is_recording()
            .then(|| Rc::new(RefCell::new(ChainStats::default())));
        let mut snap = Snapshot::new(ScanMeta::new(view, machine.now()));
        for hive in machine.registry().hives() {
            let root = ApiKeyView {
                machine,
                ctx,
                entry,
                path: hive.mount().clone(),
                io: Rc::clone(&io),
                chain: chain.clone(),
                pump: None,
            };
            walk_key_view(
                &root,
                &hive.mount().to_string().to_ascii_lowercase(),
                &mut snap,
            );
        }
        snap.meta.io = *io.borrow();
        record_view_entries(self.telemetry.as_ref(), &span, "registry", view, snap.len());
        span.set_attr("api_calls", snap.meta.io.api_calls);
        if let Some(chain) = &chain {
            record_chain(&span, &chain.borrow());
        }
        snap
    }

    /// The full-tree low-level scan over copied hive bytes.
    ///
    /// # Errors
    ///
    /// Fails when a hive copy does not parse.
    pub fn full_low_scan(&self, machine: &Machine) -> Result<Snapshot<String>, NtStatus> {
        let span = MaybeSpan::start(self.telemetry.as_ref(), "registry.full_low_scan");
        let mut snap = Snapshot::new(ScanMeta::new(ViewKind::LowLevelHiveParse, machine.now()));
        let mut defects = 0;
        for hive in machine.registry().hives() {
            self.supervision.checkpoint().map_err(interrupt_status)?;
            let mount = hive.mount().clone();
            let bytes = self
                .policy
                .supervised_retry(&self.supervision, || machine.try_copy_hive_bytes(&mount))?;
            snap.meta.io.record_sequential(bytes.len() as u64);
            let raw = self.parse_hive(&bytes, &mut defects)?;
            let root = asep::RawKeyView(raw.root());
            walk_key_view(&root, &mount.to_string().to_ascii_lowercase(), &mut snap);
        }
        snap.meta.io.record_defects(defects);
        self.record_defect_counter(&span, defects);
        record_view_entries(
            self.telemetry.as_ref(),
            &span,
            "registry",
            ViewKind::LowLevelHiveParse,
            snap.len(),
        );
        span.set_attr("bytes_read", snap.meta.io.bytes_read);
        Ok(snap)
    }

    /// Diffs full-tree snapshots into a report.
    pub fn diff_full(&self, truth: &Snapshot<String>, lie: &Snapshot<String>) -> DiffReport {
        let span = MaybeSpan::start(self.telemetry.as_ref(), "registry.diff");
        let report = cross_view_diff(truth, lie, |key, display: &String| Detection {
            kind: ResourceKind::AsepHook,
            identity: key.to_string(),
            detail: display.clone(),
            category: None,
            noise: NoiseClass::Suspicious,
        });
        span.set_attr("hidden", report.net_detections().len());
        span.set_attr("noise", report.noise_detections().len());
        report
    }

    /// One-call inside-the-box full-Registry hidden-key/value detection.
    ///
    /// # Errors
    ///
    /// Propagates scan failures.
    pub fn scan_full_inside(
        &self,
        machine: &Machine,
        ctx: &CallContext,
    ) -> Result<DiffReport, NtStatus> {
        let _span = MaybeSpan::start(self.telemetry.as_ref(), "registry.scan_inside");
        let lie = self.full_high_scan(machine, ctx, ChainEntry::Win32);
        let truth = self.full_low_scan(machine)?;
        Ok(self.diff_full(&truth, &lie))
    }
}

/// Walks a [`KeyView`] tree, recording one fact per key and per value.
fn walk_key_view<V: KeyView>(view: &V, path_key: &str, snap: &mut Snapshot<String>) {
    snap.meta.io.record_entries(1);
    for value in view.values() {
        let rendered = view.render_name(&value.name);
        snap.insert(
            format!(
                "val:{path_key}|{}|{}",
                rendered.to_ascii_lowercase(),
                value.target.to_ascii_lowercase()
            ),
            format!("{path_key}\\{rendered} = {}", value.target),
        );
    }
    for (name, sub) in view.subkeys() {
        let rendered = view.render_name(&name);
        let child_key = format!("{path_key}\\{}", rendered.to_ascii_lowercase());
        snap.insert(format!("key:{child_key}"), child_key.clone());
        walk_key_view(&sub, &child_key, snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_ghostware::{Ghostware, HackerDefender, ProBotSe, Urbin, Vanquish};
    use strider_hive::{Value, ValueData};

    fn gb_ctx(machine: &mut Machine) -> CallContext {
        machine
            .ensure_process("ghostbuster.exe", "C:\\ghostbuster.exe")
            .unwrap()
    }

    #[test]
    fn clean_machine_has_zero_hook_findings() {
        let mut m = Machine::with_base_system("clean").unwrap();
        let ctx = gb_ctx(&mut m);
        let report = RegistryScanner::new().scan_inside(&m, &ctx).unwrap();
        assert!(!report.has_detections(), "{report}");
    }

    #[test]
    fn hxdef_service_hooks_detected() {
        let mut m = Machine::with_base_system("victim").unwrap();
        HackerDefender::default().infect(&mut m).unwrap();
        let ctx = gb_ctx(&mut m);
        let report = RegistryScanner::new().scan_inside(&m, &ctx).unwrap();
        let details: Vec<&str> = report
            .net_detections()
            .iter()
            .map(|d| d.detail.as_str())
            .collect();
        assert!(details.iter().any(|d| d.contains("HackerDefender100")));
        assert!(details.iter().any(|d| d.contains("HackerDefenderDrv100")));
    }

    #[test]
    fn urbin_appinit_scrub_detected() {
        let mut m = Machine::with_base_system("victim").unwrap();
        Urbin.infect(&mut m).unwrap();
        let ctx = gb_ctx(&mut m);
        let report = RegistryScanner::new().scan_inside(&m, &ctx).unwrap();
        assert!(report
            .net_detections()
            .iter()
            .any(|d| d.detail.contains("msvsres.dll")));
    }

    #[test]
    fn probot_three_hooks_detected() {
        let mut m = Machine::with_base_system("victim").unwrap();
        let inf = ProBotSe::default().infect(&mut m).unwrap();
        let ctx = gb_ctx(&mut m);
        let report = RegistryScanner::new().scan_inside(&m, &ctx).unwrap();
        assert_eq!(report.net_detections().len(), inf.hidden_asep_entries.len());
    }

    #[test]
    fn vanquish_service_hook_detected() {
        let mut m = Machine::with_base_system("victim").unwrap();
        Vanquish::default().infect(&mut m).unwrap();
        let ctx = gb_ctx(&mut m);
        let report = RegistryScanner::new().scan_inside(&m, &ctx).unwrap();
        assert!(report
            .net_detections()
            .iter()
            .any(|d| d.detail.contains("vanquish.exe")));
    }

    #[test]
    fn corrupt_appinit_value_is_classified_as_corruption_fp() {
        let mut m = Machine::with_base_system("victim").unwrap();
        let win: NtPath = "HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\Windows"
            .parse()
            .unwrap();
        let mut v = Value::new("AppInit_DLLs", ValueData::sz("stale-garbage.dll"));
        v.corrupt_data = true;
        m.registry_mut().set_value_raw(&win, v).unwrap();
        let ctx = gb_ctx(&mut m);
        let report = RegistryScanner::new().scan_inside(&m, &ctx).unwrap();
        assert!(report.net_detections().is_empty());
        let noise = report.noise_detections();
        assert_eq!(noise.len(), 1);
        assert_eq!(noise[0].noise, NoiseClass::LikelyCorruption);
    }

    #[test]
    fn outside_mounted_win32_matches_high_scan_on_clean_machine() {
        let mut m = Machine::with_base_system("clean").unwrap();
        let ctx = gb_ctx(&mut m);
        let s = RegistryScanner::new();
        let lie = s.high_scan(&m, &ctx, ChainEntry::Win32);
        let image = m.snapshot_disk().unwrap();
        let truth = s
            .outside_scan(&image, OutsideRegistryMode::MountedWin32)
            .unwrap();
        let report = s.diff(&truth, &lie);
        assert!(!report.has_detections(), "{report}");
        assert!(report.phantom_in_lie.is_empty());
    }

    #[test]
    fn outside_scan_detects_hxdef_hooks() {
        let mut m = Machine::with_base_system("victim").unwrap();
        HackerDefender::default().infect(&mut m).unwrap();
        let ctx = gb_ctx(&mut m);
        let s = RegistryScanner::new();
        let lie = s.high_scan(&m, &ctx, ChainEntry::Win32);
        let image = m.snapshot_disk().unwrap();
        for mode in [
            OutsideRegistryMode::MountedWin32,
            OutsideRegistryMode::RawParse,
        ] {
            let truth = s.outside_scan(&image, mode).unwrap();
            let report = s.diff(&truth, &lie);
            assert!(
                report
                    .net_detections()
                    .iter()
                    .any(|d| d.detail.contains("HackerDefender100")),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn nul_name_hiding_detected_by_raw_but_not_mounted_outside() {
        let mut m = Machine::with_base_system("victim").unwrap();
        let run: NtPath = "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run"
            .parse()
            .unwrap();
        let mut units: Vec<u16> = "svc".encode_utf16().collect();
        units.push(0);
        units.extend("2".encode_utf16());
        m.registry_mut()
            .set_value_raw(
                &run,
                Value::new(NtString::from_units(&units), ValueData::sz("evil.exe")),
            )
            .unwrap();
        let ctx = gb_ctx(&mut m);
        let s = RegistryScanner::new();
        let lie = s.high_scan(&m, &ctx, ChainEntry::Win32);

        // Inside low-level raw parse sees the counted name.
        let truth = s.low_scan(&m).unwrap();
        let report = s.diff(&truth, &lie);
        assert!(report
            .net_detections()
            .iter()
            .any(|d| d.detail.contains("svc\\02") || d.detail.contains("svc\\0")));

        // Mounted-Win32 outside scan truncates identically to the lie: the
        // documented blind spot of that mode.
        let image = m.snapshot_disk().unwrap();
        let mounted = s
            .outside_scan(&image, OutsideRegistryMode::MountedWin32)
            .unwrap();
        let report = s.diff(&mounted, &lie);
        assert!(!report.has_detections());
    }

    #[test]
    fn full_scan_catches_hidden_keys_outside_the_asep_catalog() {
        let mut m = Machine::with_base_system("victim").unwrap();
        HackerDefender::default().infect(&mut m).unwrap();
        // A configuration key far from any ASEP, hidden by the same detour.
        let cfg: NtPath = "HKLM\\SOFTWARE\\HackerDefenderCfg\\Settings"
            .parse()
            .unwrap();
        m.registry_mut().create_key(&cfg).unwrap();
        let ctx = gb_ctx(&mut m);
        let s = RegistryScanner::new();
        // The ASEP scan does not cover it.
        let asep_report = s.scan_inside(&m, &ctx).unwrap();
        assert!(!asep_report
            .net_detections()
            .iter()
            .any(|d| d.detail.contains("hackerdefendercfg")));
        // The full-tree scan does.
        let full = s.scan_full_inside(&m, &ctx).unwrap();
        assert!(
            full.net_detections()
                .iter()
                .any(|d| d.detail.contains("hackerdefendercfg")),
            "{full}"
        );
    }

    #[test]
    fn full_scan_is_silent_on_clean_machines() {
        let mut m = Machine::with_base_system("clean").unwrap();
        let ctx = gb_ctx(&mut m);
        let report = RegistryScanner::new().scan_full_inside(&m, &ctx).unwrap();
        assert!(!report.has_detections(), "{report}");
        assert!(report.phantom_in_lie.is_empty());
    }

    #[test]
    fn full_scan_detects_scrubbed_value_data() {
        // Urbin leaves the AppInit value visible but scrubs its data; the
        // full scan keys on (name, data) so the mismatch surfaces.
        let mut m = Machine::with_base_system("victim").unwrap();
        Urbin.infect(&mut m).unwrap();
        let ctx = gb_ctx(&mut m);
        let report = RegistryScanner::new().scan_full_inside(&m, &ctx).unwrap();
        assert!(report
            .net_detections()
            .iter()
            .any(|d| d.detail.contains("msvsres.dll")));
    }

    #[test]
    fn telemetry_records_phases_and_divergence_level() {
        let mut m = Machine::with_base_system("victim").unwrap();
        HackerDefender::default().infect(&mut m).unwrap();
        let ctx = gb_ctx(&mut m);
        let telemetry = Telemetry::new();
        RegistryScanner::new()
            .with_telemetry(telemetry.clone())
            .scan_inside(&m, &ctx)
            .unwrap();
        let report = telemetry.report();
        let scan = report.find_span("registry.scan_inside").unwrap();
        let high = scan.child("registry.high_scan").unwrap();
        assert_eq!(
            high.attr("diverted_at").map(|a| a.to_string()),
            Some("NtdllCode".to_string()),
            "{high:?}"
        );
        assert!(scan.child("registry.low_scan").is_some());
        let diff = scan.child("registry.diff").unwrap();
        assert!(diff.child("registry.cross_view_diff").is_some());
        assert!(diff.child("registry.noise_classification").is_some());
        assert!(
            report.counters["registry.entries.LowLevelHiveParse"]
                > report.counters["registry.entries.HighLevelWin32"],
            "truth view must see the hidden service hooks"
        );
    }

    #[test]
    fn registry_io_stats_recorded() {
        let mut m = Machine::with_base_system("t").unwrap();
        let ctx = gb_ctx(&mut m);
        let s = RegistryScanner::new();
        let high = s.high_scan(&m, &ctx, ChainEntry::Win32);
        assert!(high.meta.io.api_calls > 5);
        let low = s.low_scan(&m).unwrap();
        assert!(low.meta.io.bytes_read > 100);
    }
}
