//! GhostBuster for Linux/Unix (paper, Section 5).
//!
//! The same cross-view framework on the Unix substrate:
//!
//! * **inside-the-box**: `ls` versus direct-`getdents` globbing (`echo *`) —
//!   the Brumley check, which exposes trojaned `ls` binaries (T0rnkit);
//! * **outside-the-box**: the recursive `ls` scan versus a clean scan of
//!   the same partitions from a bootable CD — which additionally exposes
//!   LKM-based syscall interception, since the clean kernel runs no LKM.

use crate::report::{NoiseClass, NoiseFilter};
use strider_unixfs::UnixMachine;

/// One Unix finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnixDetection {
    /// The hidden absolute path.
    pub path: String,
    /// Noise verdict.
    pub noise: NoiseClass,
}

/// A Unix cross-view report.
#[derive(Debug, Clone, Default)]
pub struct UnixReport {
    /// All findings.
    pub detections: Vec<UnixDetection>,
}

impl UnixReport {
    /// Suspicious findings after noise classification.
    pub fn net_detections(&self) -> Vec<&UnixDetection> {
        self.detections
            .iter()
            .filter(|d| d.noise == NoiseClass::Suspicious)
            .collect()
    }

    /// Noise-classified findings (daemon temp/log files).
    pub fn noise_detections(&self) -> Vec<&UnixDetection> {
        self.detections
            .iter()
            .filter(|d| d.noise != NoiseClass::Suspicious)
            .collect()
    }

    /// Whether anything suspicious remains.
    pub fn is_infected(&self) -> bool {
        !self.net_detections().is_empty()
    }
}

/// The Unix detector.
#[derive(Debug, Clone, Default)]
pub struct UnixGhostBuster {
    noise: NoiseFilter,
}

impl UnixGhostBuster {
    /// Creates a detector with the standard noise filter.
    pub fn new() -> Self {
        Self::default()
    }

    fn build_report(&self, truth: &[String], lie: &[String]) -> UnixReport {
        let mut detections = Vec::new();
        for path in truth {
            if !lie.contains(path) {
                detections.push(UnixDetection {
                    path: path.clone(),
                    noise: self.noise.classify_path(path),
                });
            }
        }
        UnixReport { detections }
    }

    /// The inside-the-box check: `ls` output versus direct-syscall globbing.
    /// Exposes trojaned `ls` binaries; an LKM lies to both views.
    pub fn inside_diff(&self, machine: &UnixMachine) -> UnixReport {
        let lie = machine.ls_scan_all();
        let truth = machine.glob_scan_all();
        self.build_report(&truth, &lie)
    }

    /// The outside-the-box check: the inside `ls` scan versus the clean-boot
    /// scan of the same partitions. Exposes both LKM and trojan hiding; any
    /// daemon churn between the two scans shows up as classified noise.
    pub fn outside_diff(&self, machine: &UnixMachine, lie: &[String]) -> UnixReport {
        let truth = machine.offline_scan();
        self.build_report(&truth, lie)
    }
}

/// A Tripwire-style binary-integrity baseline for Unix: compares utility
/// binaries against known-good contents. Catches utility-replacement
/// rootkits (T0rnkit) but not LKM interception, which never touches the
/// binaries — the mechanism-vs-behaviour trade-off again.
#[derive(Debug, Clone, Default)]
pub struct UnixBinaryIntegrity {
    known_good: Vec<(String, Vec<u8>)>,
}

impl UnixBinaryIntegrity {
    /// Creates an empty baseline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the current contents of the given binaries as known-good.
    pub fn baseline(machine: &UnixMachine, paths: &[&str]) -> Self {
        let known_good = paths
            .iter()
            .filter_map(|p| {
                machine
                    .fs()
                    .read(p)
                    .ok()
                    .map(|data| (p.to_string(), data.to_vec()))
            })
            .collect();
        Self { known_good }
    }

    /// Binaries whose contents no longer match the baseline.
    pub fn modified_binaries(&self, machine: &UnixMachine) -> Vec<String> {
        self.known_good
            .iter()
            .filter(|(path, good)| {
                machine
                    .fs()
                    .read(path)
                    .map(|d| d != good.as_slice())
                    .unwrap_or(true)
            })
            .map(|(path, _)| path.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_ghostware::prelude::{Darkside, Superkit, Synapsis, T0rnkit, UnixRootkit};
    use strider_ghostware::unix::unix_corpus;
    use strider_workload::populate_unix;

    #[test]
    fn t0rnkit_caught_inside_the_box() {
        let mut m = UnixMachine::with_base_system("u");
        let inf = T0rnkit.infect(&mut m);
        let report = UnixGhostBuster::new().inside_diff(&m);
        assert!(report.is_infected());
        for p in &inf.hidden_paths {
            assert!(report.net_detections().iter().any(|d| &d.path == p));
        }
    }

    #[test]
    fn lkm_rootkits_need_the_outside_diff() {
        for rk in [&Darkside as &dyn UnixRootkit, &Superkit, &Synapsis] {
            let mut m = UnixMachine::with_base_system("u");
            let inf = rk.infect(&mut m);
            let gb = UnixGhostBuster::new();
            assert!(
                !gb.inside_diff(&m).is_infected(),
                "{}: LKM lies to ls AND echo *",
                inf.rootkit
            );
            let lie = m.ls_scan_all();
            let report = gb.outside_diff(&m, &lie);
            for p in &inf.hidden_paths {
                assert!(
                    report.net_detections().iter().any(|d| &d.path == p),
                    "{} leaked {p}",
                    inf.rootkit
                );
            }
        }
    }

    #[test]
    fn daemon_churn_is_classified_noise_and_bounded() {
        let mut m = UnixMachine::with_base_system("u");
        populate_unix(&mut m, 3, 300);
        m.tick(1);
        let lie = m.ls_scan_all();
        m.tick(150); // gap while rebooting into the CD
        let report = UnixGhostBuster::new().outside_diff(&m, &lie);
        assert!(report.net_detections().is_empty(), "clean machine");
        let fp = report.noise_detections().len();
        assert!(
            (1..=4).contains(&fp),
            "paper: four or fewer FPs, mostly temp/log files; got {fp}"
        );
    }

    #[test]
    fn binary_integrity_catches_t0rnkit_but_not_lkms() {
        let mut m = UnixMachine::with_base_system("u");
        let baseline = UnixBinaryIntegrity::baseline(&m, &["/bin/ls", "/bin/ps", "/bin/sh"]);
        T0rnkit.infect(&mut m);
        let modified = baseline.modified_binaries(&m);
        assert_eq!(modified, vec!["/bin/ls".to_string()]);

        let mut m2 = UnixMachine::with_base_system("u2");
        let baseline2 = UnixBinaryIntegrity::baseline(&m2, &["/bin/ls", "/bin/ps", "/bin/sh"]);
        Superkit.infect(&mut m2);
        assert!(
            baseline2.modified_binaries(&m2).is_empty(),
            "LKM interception touches no binaries"
        );
        // But the cross-view diff catches both (earlier tests).
    }

    #[test]
    fn integrity_flags_deleted_binaries_too() {
        let mut m = UnixMachine::with_base_system("u");
        let baseline = UnixBinaryIntegrity::baseline(&m, &["/bin/ps"]);
        m.fs_mut().remove("/bin/ps").unwrap();
        assert_eq!(baseline.modified_binaries(&m), vec!["/bin/ps".to_string()]);
    }

    #[test]
    fn whole_corpus_detected_outside() {
        for rk in unix_corpus() {
            let mut m = UnixMachine::with_base_system("u");
            let inf = rk.infect(&mut m);
            let lie = m.ls_scan_all();
            let report = UnixGhostBuster::new().outside_diff(&m, &lie);
            assert!(report.is_infected(), "{} must be detected", inf.rootkit);
        }
    }
}
