//! The cross-time diff baseline (Tripwire / Strider Troubleshooter style).
//!
//! The Introduction contrasts GhostBuster's cross-view diff with the more
//! common cross-*time* diff: comparing snapshots from two different points
//! in time. Cross-time diffs catch a broader class of malware (hiding or
//! not) but report every legitimate change too, requiring noise filtering.
//! This baseline exists so the benchmark suite can quantify that trade-off.

use std::collections::BTreeMap;
use strider_support::obs::{MaybeSpan, Telemetry};
use strider_winapi::Machine;

/// A point-in-time checkpoint of the volume's file metadata.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    files: BTreeMap<String, (u64, u64)>, // fold-key -> (size, modified tick)
    taken_at: u64,
}

/// A change set between two checkpoints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChangeSet {
    /// Paths present now but not at the checkpoint.
    pub added: Vec<String>,
    /// Paths present at the checkpoint but gone now.
    pub removed: Vec<String>,
    /// Paths whose size or modified time changed.
    pub modified: Vec<String>,
}

impl ChangeSet {
    /// Total number of reported changes — every one an alarm the operator
    /// must triage.
    pub fn alarm_count(&self) -> usize {
        self.added.len() + self.removed.len() + self.modified.len()
    }
}

/// The Tripwire-style cross-time differ.
///
/// Reads the volume truthfully (integrity checkers run with their own
/// baseline database and raw access), so hiding does not defeat it — volume
/// of legitimate change does.
#[derive(Debug, Clone, Default)]
pub struct CrossTimeDiff {
    telemetry: Option<Telemetry>,
}

impl CrossTimeDiff {
    /// Creates the differ.
    pub fn new() -> Self {
        Self::default()
    }

    /// Threads a telemetry registry through checkpoint and diff.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Takes a checkpoint of every file on the volume.
    pub fn checkpoint(&self, machine: &Machine) -> Checkpoint {
        let span = MaybeSpan::start(self.telemetry.as_ref(), "crosstime.checkpoint");
        let mut files = BTreeMap::new();
        for rec in machine.volume().iter() {
            if let Some(path) = machine.volume().path_of(rec.number) {
                files.insert(
                    path.fold_key(),
                    (rec.total_stream_bytes(), rec.std_info.modified.0),
                );
            }
        }
        span.set_attr("entries", files.len());
        Checkpoint {
            files,
            taken_at: machine.now().0,
        }
    }

    /// Diffs the machine's current state against a checkpoint.
    pub fn diff(&self, machine: &Machine, baseline: &Checkpoint) -> ChangeSet {
        let span = MaybeSpan::start(self.telemetry.as_ref(), "crosstime.diff");
        let now = self.checkpoint(machine);
        let mut set = ChangeSet::default();
        for (key, meta) in &now.files {
            match baseline.files.get(key) {
                None => set.added.push(key.clone()),
                Some(old) if old != meta => set.modified.push(key.clone()),
                Some(_) => {}
            }
        }
        for key in baseline.files.keys() {
            if !now.files.contains_key(key) {
                set.removed.push(key.clone());
            }
        }
        span.set_attr("added", set.added.len());
        span.set_attr("removed", set.removed.len());
        span.set_attr("modified", set.modified.len());
        set
    }

    /// The checkpoint's timestamp.
    pub fn taken_at(checkpoint: &Checkpoint) -> u64 {
        checkpoint.taken_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_ghostware::{Ghostware, HackerDefender};
    use strider_workload::services::install_standard_services;

    #[test]
    fn detects_nonhiding_and_hiding_malware_alike() {
        let mut m = Machine::with_base_system("victim").unwrap();
        let ct = CrossTimeDiff::new();
        let baseline = ct.checkpoint(&m);
        HackerDefender::default().infect(&mut m).unwrap();
        let changes = ct.diff(&m, &baseline);
        assert!(changes.added.iter().any(|p| p.contains("hxdef100.exe")));
    }

    #[test]
    fn legitimate_churn_floods_the_report() {
        let mut m = Machine::with_base_system("victim").unwrap();
        install_standard_services(&mut m, true);
        m.tick(1);
        let ct = CrossTimeDiff::new();
        let baseline = ct.checkpoint(&m);
        m.tick(600); // ten minutes of ordinary operation
        let changes = ct.diff(&m, &baseline);
        assert!(
            changes.alarm_count() >= 10,
            "cross-time diff drowns in legitimate changes: {}",
            changes.alarm_count()
        );
    }

    #[test]
    fn quiet_machine_quiet_report() {
        let m = Machine::with_base_system("quiet").unwrap();
        let ct = CrossTimeDiff::new();
        let baseline = ct.checkpoint(&m);
        assert_eq!(ct.diff(&m, &baseline).alarm_count(), 0);
    }

    #[test]
    fn removal_and_modification_are_reported() {
        let mut m = Machine::with_base_system("t").unwrap();
        let ct = CrossTimeDiff::new();
        let baseline = ct.checkpoint(&m);
        m.tick(1);
        m.volume_mut()
            .write_file(&"C:\\windows\\explorer.exe".parse().unwrap(), b"patched!")
            .unwrap();
        m.volume_mut()
            .remove_file(&"C:\\windows\\system32\\notepad.exe".parse().unwrap())
            .unwrap();
        let changes = ct.diff(&m, &baseline);
        assert!(changes.modified.iter().any(|p| p.contains("explorer.exe")));
        assert!(changes.removed.iter().any(|p| p.contains("notepad.exe")));
    }
}
