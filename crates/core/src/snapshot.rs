//! Scan snapshots: what a view saw, when, and at what I/O cost.

use std::collections::BTreeMap;
use std::fmt;
use strider_nt_core::{IoStats, Pid, Tick};

/// Which view produced a snapshot — the axis of the cross-view diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewKind {
    /// High-level scan through the Win32 APIs (`dir /s`, RegEdit, Task
    /// Manager). The ghostware's preferred audience: "the lie".
    HighLevelWin32,
    /// High-level scan through the native NtDll APIs (tlist-style).
    HighLevelNative,
    /// Low-level inside-the-box scan: raw MFT parse.
    LowLevelMft,
    /// Low-level inside-the-box scan: raw hive-file parse.
    LowLevelHiveParse,
    /// Low-level inside-the-box scan: Active Process List traversal by a
    /// driver. A truth *approximation*: DKOM beats it.
    LowLevelApl,
    /// Advanced-mode low-level scan: scheduler thread-table traversal.
    LowLevelThreadTable,
    /// Advanced-mode low-level scan: subsystem handle-table traversal.
    LowLevelHandleTable,
    /// Low-level module truth: the kernel's mapped-image lists.
    LowLevelKernelModules,
    /// Outside-the-box scan of a disk image from a clean (WinPE) boot.
    OutsideDisk,
    /// Outside-the-box scan of hive files mounted under a clean OS.
    OutsideMountedHives,
    /// Outside-the-box scan of a crash-dump memory image.
    OutsideDump,
}

impl ViewKind {
    /// Whether this view is "the truth side" relative to a high-level scan.
    pub fn is_truth_side(self) -> bool {
        !matches!(self, ViewKind::HighLevelWin32 | ViewKind::HighLevelNative)
    }
}

impl fmt::Display for ViewKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViewKind::HighLevelWin32 => "high-level (Win32)",
            ViewKind::HighLevelNative => "high-level (native)",
            ViewKind::LowLevelMft => "low-level (MFT parse)",
            ViewKind::LowLevelHiveParse => "low-level (raw hive parse)",
            ViewKind::LowLevelApl => "low-level (Active Process List)",
            ViewKind::LowLevelThreadTable => "advanced (thread table)",
            ViewKind::LowLevelHandleTable => "advanced (handle table)",
            ViewKind::LowLevelKernelModules => "low-level (kernel module lists)",
            ViewKind::OutsideDisk => "outside (clean-boot disk scan)",
            ViewKind::OutsideMountedHives => "outside (mounted hives)",
            ViewKind::OutsideDump => "outside (memory dump)",
        };
        f.write_str(s)
    }
}

/// Metadata common to every snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanMeta {
    /// The producing view.
    pub view: ViewKind,
    /// Logical time the snapshot was taken.
    pub taken_at: Tick,
    /// Accumulated I/O work (feeds the cost model).
    pub io: IoStats,
}

impl ScanMeta {
    /// Creates metadata for a view at a time.
    pub fn new(view: ViewKind, taken_at: Tick) -> Self {
        Self {
            view,
            taken_at,
            io: IoStats::default(),
        }
    }
}

/// A snapshot of keyed facts: the unit the diff engine consumes.
///
/// Keys are view-independent identities (case-folded paths, hook
/// identities, pids); values are display facts.
#[derive(Debug, Clone)]
pub struct Snapshot<T> {
    /// Scan metadata.
    pub meta: ScanMeta,
    facts: BTreeMap<String, T>,
}

impl<T> Snapshot<T> {
    /// Creates an empty snapshot.
    pub fn new(meta: ScanMeta) -> Self {
        Self {
            meta,
            facts: BTreeMap::new(),
        }
    }

    /// Inserts a fact under its identity key. Last write wins, as with
    /// repeated directory entries in a rescan.
    pub fn insert(&mut self, key: String, fact: T) {
        self.facts.insert(key, fact);
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Whether an identity is present.
    pub fn contains(&self, key: &str) -> bool {
        self.facts.contains_key(key)
    }

    /// Fetches a fact by identity.
    pub fn get(&self, key: &str) -> Option<&T> {
        self.facts.get(key)
    }

    /// Iterates `(identity, fact)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &T)> {
        self.facts.iter()
    }
}

/// A file or directory fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileFact {
    /// Display path.
    pub path: String,
    /// Whether the entry is a directory.
    pub is_dir: bool,
    /// Data size in bytes.
    pub size: u64,
    /// Creation tick, when the view knows it.
    pub created: Option<Tick>,
}

/// An ASEP-hook fact (re-exported identity lives on the hook itself).
pub type HookFact = strider_hive::prelude::AsepHook;

/// A process fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessFact {
    /// Process id.
    pub pid: Pid,
    /// Image name.
    pub image_name: String,
    /// Image path, when the view knows it.
    pub image_path: String,
}

/// A loaded-module fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleFact {
    /// The process the module is loaded in.
    pub pid: Pid,
    /// The hosting process's image name.
    pub process_name: String,
    /// Module name.
    pub module: String,
    /// Module path.
    pub path: String,
}

// ---------------------------------------------------------------------
// JSON serialization (see `strider_support::json`, replacing the former
// serde derives)
// ---------------------------------------------------------------------

strider_support::impl_json!(
    enum ViewKind {
        HighLevelWin32,
        HighLevelNative,
        LowLevelMft,
        LowLevelHiveParse,
        LowLevelApl,
        LowLevelThreadTable,
        LowLevelHandleTable,
        LowLevelKernelModules,
        OutsideDisk,
        OutsideMountedHives,
        OutsideDump,
    }
);
strider_support::impl_json!(struct ScanMeta { view, taken_at, io });
// `Snapshot<T>` is generic, which `impl_json!` does not cover — spell the
// same encoding out by hand.
impl<T: strider_support::json::ToJson> strider_support::json::ToJson for Snapshot<T> {
    fn to_json(&self) -> strider_support::json::JsonValue {
        strider_support::json::JsonValue::Obj(vec![
            (
                "meta".to_string(),
                strider_support::json::ToJson::to_json(&self.meta),
            ),
            (
                "facts".to_string(),
                strider_support::json::ToJson::to_json(&self.facts),
            ),
        ])
    }
}

impl<T: strider_support::json::FromJson> strider_support::json::FromJson for Snapshot<T> {
    fn from_json(
        value: &strider_support::json::JsonValue,
    ) -> Result<Self, strider_support::json::JsonError> {
        Ok(Self {
            meta: strider_support::json::FromJson::from_json(value.field("meta")?)?,
            facts: strider_support::json::FromJson::from_json(value.field("facts")?)?,
        })
    }
}
strider_support::impl_json!(struct FileFact { path, is_dir, size, created });
strider_support::impl_json!(struct ProcessFact { pid, image_name, image_path });
strider_support::impl_json!(struct ModuleFact { pid, process_name, module, path });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_basics() {
        let mut s: Snapshot<FileFact> =
            Snapshot::new(ScanMeta::new(ViewKind::HighLevelWin32, Tick(3)));
        assert!(s.is_empty());
        s.insert(
            "c:\\a".into(),
            FileFact {
                path: "C:\\a".into(),
                is_dir: false,
                size: 1,
                created: None,
            },
        );
        assert_eq!(s.len(), 1);
        assert!(s.contains("c:\\a"));
        assert!(s.get("c:\\a").is_some());
        assert_eq!(s.meta.taken_at, Tick(3));
    }

    #[test]
    fn truth_side_classification() {
        assert!(!ViewKind::HighLevelWin32.is_truth_side());
        assert!(!ViewKind::HighLevelNative.is_truth_side());
        assert!(ViewKind::LowLevelMft.is_truth_side());
        assert!(ViewKind::OutsideDump.is_truth_side());
    }

    #[test]
    fn view_display_names_are_distinct() {
        use std::collections::HashSet;
        let all = [
            ViewKind::HighLevelWin32,
            ViewKind::HighLevelNative,
            ViewKind::LowLevelMft,
            ViewKind::LowLevelHiveParse,
            ViewKind::LowLevelApl,
            ViewKind::LowLevelThreadTable,
            ViewKind::LowLevelHandleTable,
            ViewKind::LowLevelKernelModules,
            ViewKind::OutsideDisk,
            ViewKind::OutsideMountedHives,
            ViewKind::OutsideDump,
        ];
        let names: HashSet<String> = all.iter().map(|v| v.to_string()).collect();
        assert_eq!(names.len(), all.len());
    }
}
