//! The mechanism-targeting baseline: a VICE/ApiHookCheck-style hook scanner.
//!
//! The Introduction's first detection approach "targets the hiding
//! mechanism by, for example, detecting the presence of API interceptions".
//! Its two structural weaknesses, both reproduced here:
//!
//! 1. it cannot catch ghostware that does not use a targeted mechanism —
//!    filter drivers and registry callbacks are legitimate OS extension
//!    points indistinguishable from AV/backup software, DKOM touches no
//!    code at all, and naming-asymmetry hiding has no mechanism whatsoever;
//! 2. it flags *legitimate* uses of interception (in-memory patching,
//!    fault-tolerance wrappers) as false positives.

use std::fmt;
use strider_support::obs::{MaybeSpan, Telemetry};
use strider_winapi::{HookStyle, Level, Machine, QueryKind};

/// One suspicious interception found by the mechanism scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HookFinding {
    /// Where the interception lives.
    pub level: Level,
    /// The implementation mechanism fingerprinted.
    pub style: HookStyle,
    /// Which query kinds are intercepted.
    pub kinds: Vec<QueryKind>,
    /// The owner, recovered for evaluation purposes only — a real hook
    /// scanner sees an anonymous trampoline address, so detection quality
    /// must be judged per finding, not per name.
    pub owner: String,
}

impl fmt::Display for HookFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:?} hook on {:?}",
            self.level, self.style, self.kinds
        )
    }
}

/// The hook scanner baseline.
#[derive(Debug, Clone, Default)]
pub struct HookScanner {
    telemetry: Option<Telemetry>,
}

impl HookScanner {
    /// Creates the scanner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Threads a telemetry registry through the scan.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Scans for API interceptions: IAT entries pointing outside their
    /// export's module, in-memory code differing from the on-disk image,
    /// and SSDT entries outside the kernel image. Reports *every* such
    /// interception, benign or not; cannot see filter drivers, registry
    /// callbacks, DKOM, or naming tricks.
    pub fn scan(&self, machine: &Machine) -> Vec<HookFinding> {
        let span = MaybeSpan::start(self.telemetry.as_ref(), "hookscan.scan");
        let findings: Vec<HookFinding> = machine
            .hooks()
            .hooks()
            .iter()
            .filter(|h| {
                matches!(
                    h.level,
                    Level::Iat | Level::Win32ApiCode | Level::NtdllCode | Level::Ssdt
                )
            })
            .map(|h| HookFinding {
                level: h.level,
                style: h.style,
                kinds: h.kinds.clone(),
                owner: h.owner.clone(),
            })
            .collect();
        span.set_attr("findings", findings.len());
        findings
    }

    /// Owners implicated by the scan (evaluation helper).
    pub fn implicated_owners(&self, machine: &Machine) -> Vec<String> {
        let mut owners: Vec<String> = self
            .scan(machine)
            .into_iter()
            .map(|f| f.owner.to_ascii_lowercase())
            .collect();
        owners.sort();
        owners.dedup();
        owners
    }
}

/// Installs a *benign* interception — an in-memory patch in the spirit of
/// Detours-based fault-tolerance wrappers — used to demonstrate the hook
/// scanner's false positives.
pub fn install_benign_wrapper(machine: &mut Machine, owner: &str) {
    use std::sync::Arc;
    machine.install_win32_code_hook(
        owner,
        vec![QueryKind::Files],
        strider_winapi::HookScope::All,
        HookStyle::Wrapper,
        // A pass-through: observes, hides nothing.
        Arc::new(
            |_: &strider_winapi::CallContext,
             _: &strider_winapi::Query,
             rows: Vec<strider_winapi::Row>| { rows },
        ),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ghostbuster::GhostBuster;
    use strider_ghostware::{FileHider, Fu, Ghostware, HackerDefender, NamingTrick, ProBotSe};

    #[test]
    fn finds_interception_based_hiders() {
        let mut m = Machine::with_base_system("victim").unwrap();
        HackerDefender::default().infect(&mut m).unwrap();
        ProBotSe::default().infect(&mut m).unwrap();
        let owners = HookScanner::new().implicated_owners(&m);
        assert!(owners.contains(&"hackerdefender".to_string()));
        assert!(owners.contains(&"probotse".to_string()));
    }

    #[test]
    fn blind_to_filter_drivers_dkom_and_naming() {
        let mut m = Machine::with_base_system("victim").unwrap();
        FileHider::hide_folders_xp().infect(&mut m).unwrap();
        Fu::default().infect(&mut m).unwrap();
        NamingTrick.infect(&mut m).unwrap();
        let findings = HookScanner::new().scan(&m);
        assert!(
            findings.is_empty(),
            "mechanism scan must miss all three: {findings:?}"
        );
        // The cross-view diff catches all three on the same machine.
        let sweep = GhostBuster::new()
            .with_advanced(crate::process::AdvancedSource::ThreadTable)
            .inside_sweep(&mut m)
            .unwrap();
        assert!(sweep.is_infected());
    }

    #[test]
    fn flags_benign_wrappers_as_false_positives() {
        let mut m = Machine::with_base_system("clean").unwrap();
        install_benign_wrapper(&mut m, "ft-wrapper");
        let findings = HookScanner::new().scan(&m);
        assert_eq!(findings.len(), 1, "benign hook reported — a false positive");
        // The cross-view diff stays silent: nothing is hidden.
        let sweep = GhostBuster::new().inside_sweep(&mut m).unwrap();
        assert!(!sweep.is_infected());
    }
}
