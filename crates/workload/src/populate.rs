//! Deterministic machine population.

use strider_hive::ValueData;
use strider_nt_core::{NtPath, NtStatus};
use strider_support::rng::SplitMix64;
use strider_unixfs::UnixMachine;
use strider_winapi::Machine;

/// How much content to synthesize onto a machine. Counts are *simulation*
/// scale (what the in-memory volume actually holds); the paper-scale GB
/// figures live in the machine profiles and drive the cost model instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// RNG seed; equal seeds produce identical machines.
    pub seed: u64,
    /// Number of regular files to create.
    pub file_count: usize,
    /// Number of directories to spread them over.
    pub dir_count: usize,
    /// Number of extra (non-ASEP) Registry keys.
    pub registry_key_count: usize,
    /// Number of extra user processes.
    pub process_count: usize,
}

impl WorkloadSpec {
    /// A tiny machine for fleet-scale tests and benches, where dozens to
    /// hundreds of machines are populated per run (tens of files each).
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            file_count: 80,
            dir_count: 10,
            registry_key_count: 40,
            process_count: 4,
        }
    }

    /// A small machine for unit tests (hundreds of files).
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            file_count: 300,
            dir_count: 30,
            registry_key_count: 150,
            process_count: 8,
        }
    }

    /// A medium machine for integration tests and examples.
    pub fn medium(seed: u64) -> Self {
        Self {
            seed,
            file_count: 3_000,
            dir_count: 200,
            registry_key_count: 1_500,
            process_count: 20,
        }
    }

    /// A large machine for benchmarks (tens of thousands of files).
    pub fn large(seed: u64) -> Self {
        Self {
            seed,
            file_count: 30_000,
            dir_count: 1_500,
            registry_key_count: 10_000,
            process_count: 40,
        }
    }
}

const FILE_STEMS: &[&str] = &[
    "report", "setup", "readme", "config", "photo", "backup", "notes", "data", "index", "cache",
    "driver", "update", "manual", "invoice", "letter",
];
const EXTENSIONS: &[&str] = &[
    "txt", "doc", "exe", "dll", "ini", "log", "jpg", "dat", "sys", "html", "tmp", "bak",
];
const ROOTS: &[&str] = &[
    "C:\\Program Files",
    "C:\\Documents and Settings\\user",
    "C:\\windows\\system32",
    "C:\\temp",
    "C:\\windows",
];

/// Populates a machine's volume, Registry, and process table from the spec.
/// Deterministic per seed.
///
/// # Errors
///
/// Propagates substrate errors (none occur for well-formed specs on a base
/// machine).
pub fn populate(machine: &mut Machine, spec: &WorkloadSpec) -> Result<(), NtStatus> {
    let mut rng = SplitMix64::seed_from_u64(spec.seed);

    // Directory forest: each new directory hangs off a root or a previously
    // created directory, keeping depths realistic (2–6 components).
    let mut dirs: Vec<NtPath> = ROOTS
        .iter()
        .map(|r| r.parse().expect("static root parses"))
        .collect();
    for i in 0..spec.dir_count {
        let parent = dirs[rng.gen_range(0..dirs.len())].clone();
        if parent.depth() > 6 {
            continue;
        }
        let name = format!("{}-{i:04}", FILE_STEMS[rng.gen_range(0..FILE_STEMS.len())]);
        let dir = parent.join(name);
        machine
            .volume_mut()
            .mkdir_p(&dir)
            .map_err(|_| NtStatus::ObjectPathNotFound)?;
        dirs.push(dir);
    }

    // Files, spread uniformly over the forest with name collisions avoided
    // by index suffix.
    for i in 0..spec.file_count {
        let dir = &dirs[rng.gen_range(0..dirs.len())];
        let stem = FILE_STEMS[rng.gen_range(0..FILE_STEMS.len())];
        let ext = EXTENSIONS[rng.gen_range(0..EXTENSIONS.len())];
        let path = dir.join(format!("{stem}-{i:05}.{ext}"));
        let size = rng.gen_range(16..160u32);
        let content: Vec<u8> = (0..size).map(|_| rng.next_u8()).collect();
        machine
            .volume_mut()
            .create_file(&path, &content)
            .map_err(|_| NtStatus::ObjectNameCollision)?;
    }

    // Registry filler: application keys under SOFTWARE.
    for i in 0..spec.registry_key_count {
        let vendor = FILE_STEMS[rng.gen_range(0..FILE_STEMS.len())];
        let key: NtPath = format!("HKLM\\SOFTWARE\\{vendor}-soft\\component-{i:05}")
            .parse()
            .expect("generated key parses");
        machine
            .registry_mut()
            .create_key(&key)
            .map_err(|_| NtStatus::ObjectNameNotFound)?;
        machine
            .registry_mut()
            .set_value(&key, "Version", ValueData::Dword(rng.gen_range(1..20)))
            .map_err(|_| NtStatus::ObjectNameNotFound)?;
        if i % 7 == 0 {
            machine
                .registry_mut()
                .set_value(
                    &key,
                    "InstallPath",
                    ValueData::sz(format!("C:\\Program Files\\{vendor}-soft").as_str()),
                )
                .map_err(|_| NtStatus::ObjectNameNotFound)?;
        }
    }

    // Extra user processes with a few modules each.
    for i in 0..spec.process_count {
        let name = format!("app{i:02}.exe");
        let pid = machine.spawn_process(&name, &format!("C:\\Program Files\\{name}"))?;
        for m in 0..rng.gen_range(2..6u32) {
            machine
                .kernel_mut()
                .load_module(
                    pid,
                    &format!("lib{m}.dll"),
                    &format!("C:\\windows\\system32\\lib{m}.dll"),
                )
                .map_err(|_| NtStatus::NoSuchProcess)?;
        }
    }
    Ok(())
}

/// Builds a fully-equipped lab machine: base system + workload + the
/// standard always-running services.
///
/// # Errors
///
/// Propagates population errors.
pub fn standard_lab_machine(
    name: &str,
    spec: &WorkloadSpec,
    ccm_enabled: bool,
) -> Result<Machine, NtStatus> {
    let mut machine = Machine::with_base_system(name)?;
    populate(&mut machine, spec)?;
    crate::services::install_standard_services(&mut machine, ccm_enabled);
    // Let prefetch settle for the boot-time process set so later scans
    // aren't polluted by first-tick writes.
    machine.tick(1);
    Ok(machine)
}

/// Populates a Unix machine with filler files and an FTP daemon writing
/// transfer logs and temp files (the paper's Unix false-positive source).
pub fn populate_unix(machine: &mut UnixMachine, seed: u64, file_count: usize) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let roots = ["/usr/lib", "/usr/bin", "/home/user", "/var", "/etc"];
    for i in 0..file_count {
        let root = roots[rng.gen_range(0..roots.len())];
        let stem = FILE_STEMS[rng.gen_range(0..FILE_STEMS.len())];
        machine
            .fs_mut()
            .create_file(&format!("{root}/{stem}-{i:05}"), b"data");
    }
    machine.add_daemon(Box::new(|fs, tick| {
        fs.append_file("/var/log/xferlog", format!("xfer {tick}\n").as_bytes());
        if tick % 60 == 0 {
            fs.create_file(&format!("/tmp/ftp-upload-{tick:06}.tmp"), b"partial");
        }
        if tick % 100 == 0 {
            fs.create_file(&format!("/var/log/messages.{}", tick / 100), b"rotated");
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic_per_seed() {
        let mut a = Machine::with_base_system("a").unwrap();
        let mut b = Machine::with_base_system("b").unwrap();
        populate(&mut a, &WorkloadSpec::small(42)).unwrap();
        populate(&mut b, &WorkloadSpec::small(42)).unwrap();
        assert_eq!(a.volume().record_count(), b.volume().record_count());
        let pa: Vec<String> = a.volume().iter().map(|r| r.name.to_win32_lossy()).collect();
        let pb: Vec<String> = b.volume().iter().map(|r| r.name.to_win32_lossy()).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Machine::with_base_system("a").unwrap();
        let mut b = Machine::with_base_system("b").unwrap();
        populate(&mut a, &WorkloadSpec::small(1)).unwrap();
        populate(&mut b, &WorkloadSpec::small(2)).unwrap();
        let pa: Vec<String> = a.volume().iter().map(|r| r.name.to_win32_lossy()).collect();
        let pb: Vec<String> = b.volume().iter().map(|r| r.name.to_win32_lossy()).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn spec_counts_are_respected() {
        let mut m = Machine::with_base_system("t").unwrap();
        let base_files = m.volume().iter().filter(|r| !r.is_directory()).count();
        let base_keys = m.registry().key_count();
        let spec = WorkloadSpec::small(7);
        populate(&mut m, &spec).unwrap();
        let files = m.volume().iter().filter(|r| !r.is_directory()).count();
        assert_eq!(files, base_files + spec.file_count);
        // Each filler entry adds one component key; the ~15 vendor parent
        // keys are shared.
        let keys = m.registry().key_count();
        assert!(keys >= base_keys + spec.registry_key_count);
        assert!(keys <= base_keys + spec.registry_key_count + FILE_STEMS.len());
        assert!(m.kernel().find_by_name("app00.exe").len() == 1);
    }

    #[test]
    fn standard_lab_machine_boots() {
        let m = standard_lab_machine("lab", &WorkloadSpec::small(3), true).unwrap();
        assert!(m.volume().record_count() > 300);
        assert!(m.now().0 >= 1);
    }

    #[test]
    fn unix_population_and_daemon() {
        let mut m = UnixMachine::with_base_system("u");
        populate_unix(&mut m, 5, 200);
        let before = m.offline_scan().len();
        m.tick(80);
        assert!(m.offline_scan().len() > before, "daemon creates files");
    }
}
