//! The paper's eight test machines and the scan-time cost model.
//!
//! Section 2: seven machines with 5–34 GB used and 550 MHz–2.2 GHz CPUs took
//! 30 s–7 min for the inside-the-box file scan; the eighth — a dual-proc
//! 3 GHz workstation with 95 GB of a 111 GB disk used — took 38 min. The
//! registry ASEP scan took 18–63 s (Section 3) and the combined
//! process+module scan 1–5 s (Section 4). The WinPE boot adds 1.5–3 min and
//! the blue-screen dump 15–45 s.
//!
//! The [`CostModel`] converts a machine's declared scale into estimated scan
//! seconds. Constants are calibrated to land inside the paper's ranges: the
//! absolute numbers are a model, but the *shape* — file scans in minutes
//! dominated by disk scale, registry scans in tens of seconds, process scans
//! in seconds, and the heavily-used workstation as an outlier — is the
//! paper's result being reproduced. The per-GB file density and the
//! fragmentation penalty on heavily-used disks are the two knobs.

use strider_nt_core::IoStats;

/// One test-machine hardware profile.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProfile {
    /// Machine name (`m1`…`m8`).
    pub name: &'static str,
    /// The paper's machine class.
    pub class: &'static str,
    /// CPU clock in MHz (effective single-thread).
    pub cpu_mhz: u32,
    /// Disk space in use, GB.
    pub disk_used_gb: f64,
    /// Sequential disk throughput, MB/s.
    pub disk_seq_mbps: f64,
    /// Average seek latency, ms.
    pub disk_seek_ms: f64,
    /// Whether the chatty CCM service runs here.
    pub ccm_enabled: bool,
    /// Fragmentation/usage penalty ≥ 1.0: heavily-used volumes pay extra
    /// seeks per directory.
    pub frag_factor: f64,
    /// RAM in MB (drives crash-dump size/time).
    pub ram_mb: u32,
}

impl MachineProfile {
    /// Approximate file count: ~9 000 files per used GB (2005-era install
    /// densities).
    pub fn file_count(&self) -> u64 {
        (self.disk_used_gb * 9_000.0) as u64
    }

    /// Approximate directory count (~1 directory per 25 files).
    pub fn dir_count(&self) -> u64 {
        self.file_count() / 25
    }

    /// Approximate Registry key count: a base XP install plus growth with
    /// installed software (∝ disk usage).
    pub fn registry_key_count(&self) -> u64 {
        120_000 + (self.disk_used_gb * 2_500.0) as u64
    }

    /// Approximate running process count.
    pub fn process_count(&self) -> u64 {
        25 + (self.disk_used_gb / 4.0) as u64
    }
}

/// The eight machines of the paper's evaluation: 4 corporate desktops,
/// 3 home machines, 1 laptop (m7), and the dual-proc workstation (m8).
pub fn paper_profiles() -> Vec<MachineProfile> {
    vec![
        MachineProfile {
            name: "m1",
            class: "corporate desktop",
            cpu_mhz: 2200,
            disk_used_gb: 12.0,
            disk_seq_mbps: 45.0,
            disk_seek_ms: 9.0,
            ccm_enabled: true,
            frag_factor: 1.0,
            ram_mb: 512,
        },
        MachineProfile {
            name: "m2",
            class: "corporate desktop",
            cpu_mhz: 1800,
            disk_used_gb: 18.0,
            disk_seq_mbps: 40.0,
            disk_seek_ms: 9.0,
            ccm_enabled: false,
            frag_factor: 1.1,
            ram_mb: 512,
        },
        MachineProfile {
            name: "m3",
            class: "corporate desktop",
            cpu_mhz: 1500,
            disk_used_gb: 24.0,
            disk_seq_mbps: 38.0,
            disk_seek_ms: 10.0,
            ccm_enabled: false,
            frag_factor: 1.2,
            ram_mb: 384,
        },
        MachineProfile {
            name: "m4",
            class: "corporate desktop",
            cpu_mhz: 1000,
            disk_used_gb: 34.0,
            disk_seq_mbps: 32.0,
            disk_seek_ms: 11.0,
            ccm_enabled: false,
            frag_factor: 1.3,
            ram_mb: 384,
        },
        MachineProfile {
            name: "m5",
            class: "home machine",
            cpu_mhz: 550,
            disk_used_gb: 5.0,
            disk_seq_mbps: 20.0,
            disk_seek_ms: 14.0,
            ccm_enabled: false,
            frag_factor: 1.0,
            ram_mb: 256,
        },
        MachineProfile {
            name: "m6",
            class: "home machine",
            cpu_mhz: 800,
            disk_used_gb: 15.0,
            disk_seq_mbps: 25.0,
            disk_seek_ms: 13.0,
            ccm_enabled: false,
            frag_factor: 1.3,
            ram_mb: 256,
        },
        MachineProfile {
            name: "m7",
            class: "laptop",
            cpu_mhz: 1200,
            disk_used_gb: 20.0,
            disk_seq_mbps: 22.0,
            disk_seek_ms: 15.0,
            ccm_enabled: false,
            frag_factor: 1.3,
            ram_mb: 512,
        },
        MachineProfile {
            name: "m8",
            class: "dual-proc workstation",
            cpu_mhz: 3000,
            disk_used_gb: 95.0,
            disk_seq_mbps: 50.0,
            disk_seek_ms: 9.0,
            ccm_enabled: true,
            frag_factor: 6.0,
            ram_mb: 2048,
        },
    ]
}

/// Converts machine scale into estimated scan times.
#[derive(Debug, Clone)]
pub struct CostModel {
    profile: MachineProfile,
}

impl CostModel {
    /// Creates a cost model for a profile.
    pub fn new(profile: MachineProfile) -> Self {
        Self { profile }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &MachineProfile {
        &self.profile
    }

    fn cpu_scale(&self) -> f64 {
        1000.0 / f64::from(self.profile.cpu_mhz)
    }

    /// Inside-the-box hidden-file detection: a `dir /s`-style API walk
    /// (seek per directory, CPU per entry) plus a sequential MFT sweep and
    /// the diff itself.
    pub fn file_scan_seconds(&self) -> f64 {
        let p = &self.profile;
        let files = p.file_count() as f64;
        let dirs = p.dir_count() as f64;
        // High-level walk: directory descents are seek-bound on fragmented
        // volumes, entry marshalling is CPU-bound.
        let walk_seeks = dirs * (p.disk_seek_ms / 1000.0) * p.frag_factor;
        let walk_cpu = files * 0.35e-3 * self.cpu_scale();
        // Low-level sweep: the MFT is ~1 KB per record, read sequentially,
        // with fragmentation forcing extra seeks on heavily-used volumes.
        let mft_bytes = files * 1024.0;
        let sweep = mft_bytes / (p.disk_seq_mbps * 1e6) * p.frag_factor;
        let parse_cpu = files * 0.25e-3 * self.cpu_scale();
        // Sort + diff of two full listings.
        let diff_cpu = files * 0.12e-3 * self.cpu_scale();
        walk_seeks + walk_cpu + sweep + parse_cpu + diff_cpu
    }

    /// Inside-the-box hidden-ASEP detection: hive copy (sequential read of
    /// ~0.2 KB/key) plus parse and a scan over the ASEP subset.
    pub fn registry_scan_seconds(&self) -> f64 {
        let p = &self.profile;
        let keys = p.registry_key_count() as f64;
        let hive_bytes = keys * 200.0;
        let copy = hive_bytes / (p.disk_seq_mbps * 1e6);
        // Registry scan time is less CPU-elastic than raw clock (lots of it
        // is pointer chasing in cache), so scale by sqrt(clock).
        let scale = self.cpu_scale().sqrt();
        let parse = keys * 0.15e-3 * scale;
        let api_walk = keys * 0.10e-3 * scale;
        copy + parse + api_walk
    }

    /// Inside-the-box hidden-process/module detection: two in-memory
    /// traversals and a tiny diff — seconds at most.
    pub fn process_scan_seconds(&self) -> f64 {
        let p = &self.profile;
        let procs = p.process_count() as f64;
        let modules = procs * 40.0;
        0.5 + (procs * 8.0e-3 + modules * 0.9e-3) * self.cpu_scale()
    }

    /// Extra wall time for the WinPE CD boot (paper: 1.5–3 min).
    pub fn winpe_boot_seconds(&self) -> f64 {
        // Slower machines boot the CD slower.
        75.0 + 55_000.0 / f64::from(self.profile.cpu_mhz)
    }

    /// Extra wall time for a Remote Installation Service network boot — the
    /// enterprise replacement for the CD boot (paper, Section 5). Faster
    /// than optical media; dominated by the network loader.
    pub fn ris_boot_seconds(&self) -> f64 {
        45.0 + 30_000.0 / f64::from(self.profile.cpu_mhz)
    }

    /// Extra wall time for the blue-screen kernel dump (paper: 15–45 s),
    /// proportional to RAM over disk throughput.
    pub fn dump_seconds(&self) -> f64 {
        let p = &self.profile;
        12.0 + (f64::from(p.ram_mb) * 1e6 * 0.3) / (p.disk_seq_mbps * 1e6)
    }

    /// Maps actually-measured simulation I/O onto this profile's hardware —
    /// used when benchmarking real scans of a (smaller) simulated machine.
    pub fn seconds_for(&self, io: &IoStats) -> f64 {
        let p = &self.profile;
        io.bytes_read as f64 / (p.disk_seq_mbps * 1e6)
            + io.seeks as f64 * (p.disk_seek_ms / 1000.0) * p.frag_factor
            + io.api_calls as f64 * 0.15e-3 * self.cpu_scale()
            + io.entries as f64 * 0.5e-3 * self.cpu_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_profiles_matching_paper_ranges() {
        let profiles = paper_profiles();
        assert_eq!(profiles.len(), 8);
        for p in &profiles[..7] {
            assert!((5.0..=34.0).contains(&p.disk_used_gb), "{}", p.name);
            assert!((550..=2200).contains(&p.cpu_mhz), "{}", p.name);
        }
        assert_eq!(profiles[7].disk_used_gb, 95.0);
    }

    #[test]
    fn file_scan_times_land_in_paper_ranges() {
        let profiles = paper_profiles();
        for p in &profiles[..7] {
            let t = CostModel::new(p.clone()).file_scan_seconds();
            assert!(
                (30.0..=420.0).contains(&t),
                "{}: {t:.0}s outside 30s–7min",
                p.name
            );
        }
        let t8 = CostModel::new(profiles[7].clone()).file_scan_seconds();
        assert!(
            (1500.0..=2700.0).contains(&t8),
            "workstation: {t8:.0}s should be ≈38min"
        );
    }

    #[test]
    fn registry_scan_times_land_in_paper_range() {
        for p in paper_profiles() {
            let t = CostModel::new(p.clone()).registry_scan_seconds();
            assert!((18.0..=63.0).contains(&t), "{}: {t:.1}s", p.name);
        }
    }

    #[test]
    fn process_scan_times_land_in_paper_range() {
        for p in paper_profiles() {
            let t = CostModel::new(p.clone()).process_scan_seconds();
            assert!((1.0..=5.0).contains(&t), "{}: {t:.2}s", p.name);
        }
    }

    #[test]
    fn boot_and_dump_overheads_land_in_paper_ranges() {
        for p in paper_profiles() {
            let m = CostModel::new(p.clone());
            let boot = m.winpe_boot_seconds();
            assert!(
                (90.0..=180.0).contains(&boot),
                "{}: boot {boot:.0}s",
                p.name
            );
            let dump = m.dump_seconds();
            assert!((15.0..=45.0).contains(&dump), "{}: dump {dump:.0}s", p.name);
        }
    }

    #[test]
    fn io_stats_mapping_is_monotonic() {
        let model = CostModel::new(paper_profiles()[0].clone());
        let mut small = IoStats::default();
        small.record_sequential(1_000_000);
        let mut big = small;
        big.record_sequential(50_000_000);
        big.record_seek();
        assert!(model.seconds_for(&big) > model.seconds_for(&small));
    }
}
