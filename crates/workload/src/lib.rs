//! Deterministic machine population, background churn, and the paper's
//! eight machine profiles with the scan-time cost model.
//!
//! Three concerns live here:
//!
//! * [`populate`]/[`standard_lab_machine`] — building realistic simulated
//!   machines (directory forests, Registry filler, process sets) from a
//!   seeded RNG, so every experiment is reproducible;
//! * [`services`] — the always-running services (anti-virus log writer,
//!   CCM, System Restore, prefetch, browser cache) whose file creation
//!   during scan gaps produces exactly the false-positive behaviour the
//!   paper reports for outside-the-box scans;
//! * [`profiles`] — the eight evaluation machines (Sections 2–4) and the
//!   [`CostModel`] that converts machine scale into estimated scan seconds,
//!   reproducing the shape of the paper's timing results.
//!
//! # Examples
//!
//! ```
//! use strider_workload::{standard_lab_machine, WorkloadSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = standard_lab_machine("lab-1", &WorkloadSpec::small(42), false)?;
//! assert!(machine.volume().record_count() > 300);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod populate;
pub mod profiles;
pub mod services;

pub use populate::{populate, populate_unix, standard_lab_machine, WorkloadSpec};
pub use profiles::{paper_profiles, CostModel, MachineProfile};

/// Convenient re-exports.
pub mod prelude {
    pub use crate::profiles::{paper_profiles, CostModel, MachineProfile};
    pub use crate::services::install_standard_services;
    pub use crate::{populate, populate_unix, standard_lab_machine, WorkloadSpec};
}
