//! Section 5 targeting attacks: ghostware that chooses *whom* to lie to.
//!
//! Two evasions the paper's extensions address:
//!
//! * [`UtilityTargetedHider`] hides resources only from specific OS
//!   utilities (Task Manager, tlist, Explorer). A GhostBuster scan running
//!   as its own process never experiences the hiding, so the plain tool sees
//!   no diff; the DLL-injection extension — running the scan *inside* the
//!   targeted utilities — does.
//! * [`ScannerAwareHider`] hides from every process *except* a known scanner
//!   image name (so the scanner's own high-level view matches the truth).
//!   Injecting GhostBuster into arbitrary processes (notably the anti-virus
//!   scanner) restores the diff.

use crate::filters::hide_names_containing;
use crate::{static_path, Ghostware, Infection, Technique};
use strider_nt_core::NtStatus;
use strider_winapi::{HookScope, Machine, QueryKind};

/// Hides its artifacts only from the named utility processes.
#[derive(Debug, Clone)]
pub struct UtilityTargetedHider {
    /// Utilities lied to (image names).
    pub targets: Vec<String>,
}

impl Default for UtilityTargetedHider {
    fn default() -> Self {
        Self {
            targets: vec![
                "taskmgr.exe".to_string(),
                "tlist.exe".to_string(),
                "explorer.exe".to_string(),
            ],
        }
    }
}

impl Ghostware for UtilityTargetedHider {
    fn name(&self) -> &str {
        "UtilityTargetedHider"
    }

    fn infect(&self, machine: &mut Machine) -> Result<Infection, NtStatus> {
        let exe = static_path("C:\\windows\\system32\\targbot.exe");
        machine.win32_create_file(&exe, b"MZ targbot")?;
        machine.spawn_process("targbot.exe", &exe.to_string())?;
        machine.install_ntdll_hook(
            "UtilityTargetedHider",
            vec![QueryKind::Files, QueryKind::Processes],
            HookScope::OnlyCallers(self.targets.clone()),
            hide_names_containing(&["targbot"]),
        );
        let mut infection = Infection::new("UtilityTargetedHider");
        infection.techniques = vec![Technique::DetourNtdll];
        infection.hidden_files = vec![exe];
        infection.hidden_process_names = vec!["targbot.exe".to_string()];
        Ok(infection)
    }
}

/// Hides from everyone except the named scanner image.
#[derive(Debug, Clone)]
pub struct ScannerAwareHider {
    /// The scanner image name spared from the lie.
    pub spare: String,
}

impl Default for ScannerAwareHider {
    fn default() -> Self {
        Self {
            spare: "ghostbuster.exe".to_string(),
        }
    }
}

impl Ghostware for ScannerAwareHider {
    fn name(&self) -> &str {
        "ScannerAwareHider"
    }

    fn infect(&self, machine: &mut Machine) -> Result<Infection, NtStatus> {
        let exe = static_path("C:\\windows\\system32\\sneaky.exe");
        machine.win32_create_file(&exe, b"MZ sneaky EVILSIG")?;
        machine.spawn_process("sneaky.exe", &exe.to_string())?;
        machine.install_ntdll_hook(
            "ScannerAwareHider",
            vec![QueryKind::Files, QueryKind::Processes],
            HookScope::ExceptCallers(vec![self.spare.clone()]),
            hide_names_containing(&["sneaky"]),
        );
        let mut infection = Infection::new("ScannerAwareHider");
        infection.techniques = vec![Technique::DetourNtdll];
        infection.hidden_files = vec![exe];
        infection.hidden_process_names = vec!["sneaky.exe".to_string()];
        Ok(infection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_winapi::{ChainEntry, Query};

    #[test]
    fn utility_targeted_hider_lies_only_to_its_targets() {
        let mut m = Machine::with_base_system("t").unwrap();
        UtilityTargetedHider::default().infect(&mut m).unwrap();
        m.spawn_process("ghostbuster.exe", "C:\\gb.exe").unwrap();

        let taskmgr = m
            .spawn_process("taskmgr.exe", "C:\\windows\\system32\\taskmgr.exe")
            .unwrap();
        let tm_ctx = m.context_for(taskmgr).unwrap();
        let rows = m
            .query(&tm_ctx, &Query::ProcessList, ChainEntry::Win32)
            .unwrap();
        assert!(!rows
            .iter()
            .any(|r| r.name().to_win32_lossy() == "targbot.exe"));

        // GhostBuster's own process is not lied to: no diff to find.
        let gb_ctx = m.context_for_name("ghostbuster.exe").unwrap();
        let rows = m
            .query(&gb_ctx, &Query::ProcessList, ChainEntry::Win32)
            .unwrap();
        assert!(rows
            .iter()
            .any(|r| r.name().to_win32_lossy() == "targbot.exe"));
    }

    #[test]
    fn scanner_aware_hider_spares_the_scanner() {
        let mut m = Machine::with_base_system("t").unwrap();
        ScannerAwareHider::default().infect(&mut m).unwrap();
        m.spawn_process("ghostbuster.exe", "C:\\gb.exe").unwrap();

        let gb_ctx = m.context_for_name("ghostbuster.exe").unwrap();
        let rows = m
            .query(&gb_ctx, &Query::ProcessList, ChainEntry::Win32)
            .unwrap();
        assert!(rows
            .iter()
            .any(|r| r.name().to_win32_lossy() == "sneaky.exe"));

        let ex_ctx = m.context_for_name("explorer.exe").unwrap();
        let rows = m
            .query(&ex_ctx, &Query::ProcessList, ChainEntry::Win32)
            .unwrap();
        assert!(!rows
            .iter()
            .any(|r| r.name().to_win32_lossy() == "sneaky.exe"));
    }
}
