//! Reusable query-filter bodies for the ghostware corpus.

use std::sync::Arc;
use strider_winapi::{CallContext, Query, QueryFilter, Row};

/// A filter that removes rows whose name contains any of the given
/// case-insensitive substrings — the workhorse of pattern-based hiders
/// (Hacker Defender's ini patterns, Aphex's prefix, Vanquish's
/// `*vanquish*`).
pub fn hide_names_containing(patterns: &[&str]) -> Arc<dyn QueryFilter> {
    let patterns: Vec<String> = patterns.iter().map(|p| p.to_ascii_lowercase()).collect();
    Arc::new(move |_: &CallContext, _: &Query, rows: Vec<Row>| {
        rows.into_iter()
            .filter(|r| {
                let name = r.name().to_win32_lossy().to_ascii_lowercase();
                !patterns.iter().any(|p| name.contains(p.as_str()))
            })
            .collect()
    })
}

/// A filter that removes rows whose *full path* (files) or name contains any
/// pattern — used by folder hiders where the hidden folder name only appears
/// in the path.
pub fn hide_paths_containing(patterns: &[String]) -> Arc<dyn QueryFilter> {
    let patterns: Vec<String> = patterns.iter().map(|p| p.to_ascii_lowercase()).collect();
    Arc::new(move |_: &CallContext, _: &Query, rows: Vec<Row>| {
        rows.into_iter()
            .filter(|r| {
                let hay = match r {
                    Row::File(f) => f.path.to_string().to_ascii_lowercase(),
                    other => other.name().to_win32_lossy().to_ascii_lowercase(),
                };
                !patterns.iter().any(|p| hay.contains(p.as_str()))
            })
            .collect()
    })
}

/// A filter that scrubs a substring out of the *data* of one named Registry
/// value — how Urbin and Mersting hide their `AppInit_DLLs` hook while
/// leaving the value itself visible.
pub fn scrub_value_data(value_name: &str, remove: &str) -> Arc<dyn QueryFilter> {
    let value_name = value_name.to_ascii_lowercase();
    let remove = remove.to_string();
    Arc::new(move |_: &CallContext, _: &Query, rows: Vec<Row>| {
        rows.into_iter()
            .map(|r| match r {
                Row::RegValue(mut v)
                    if v.name.to_win32_lossy().to_ascii_lowercase() == value_name =>
                {
                    v.data = v.data.replace(&remove, "").trim().to_string();
                    Row::RegValue(v)
                }
                other => other,
            })
            .collect()
    })
}

/// A filter that removes process rows by pid — process hiders that match on
/// pid rather than name (FU's `-ph <pid>` interface, though FU itself uses
/// DKOM and needs no filter).
pub fn hide_pids(pids: Vec<u32>) -> Arc<dyn QueryFilter> {
    Arc::new(move |_: &CallContext, _: &Query, rows: Vec<Row>| {
        rows.into_iter()
            .filter(|r| match r {
                Row::Process(p) => !pids.contains(&p.pid.0),
                _ => true,
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_nt_core::Pid;
    use strider_winapi::{FileRow, ProcessRow, RegValueRow};

    fn ctx() -> CallContext {
        CallContext::new(Pid(4), "x.exe")
    }

    fn file_row(path: &str) -> Row {
        let path: strider_nt_core::NtPath = path.parse().unwrap();
        Row::File(FileRow {
            name: path.file_name().unwrap().clone(),
            path: path.clone(),
            is_dir: false,
            attributes: strider_ntfs::FileAttributes::NORMAL,
            size: 0,
        })
    }

    #[test]
    fn name_patterns_filter_case_insensitively() {
        let f = hide_names_containing(&["hxdef"]);
        let rows = vec![file_row("C:\\HxDef100.exe"), file_row("C:\\notepad.exe")];
        let out = f.filter(
            &ctx(),
            &Query::DirectoryEnum {
                path: "C:".parse().unwrap(),
            },
            rows,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].name().to_win32_lossy(), "notepad.exe");
    }

    #[test]
    fn path_patterns_hide_children_of_hidden_folders() {
        let f = hide_paths_containing(&["\\secret stuff\\".to_string()]);
        let rows = vec![
            file_row("C:\\secret stuff\\x.doc"),
            file_row("C:\\public\\y.doc"),
        ];
        let out = f.filter(
            &ctx(),
            &Query::DirectoryEnum {
                path: "C:".parse().unwrap(),
            },
            rows,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn scrub_edits_only_the_named_value() {
        let f = scrub_value_data("AppInit_DLLs", "msvsres.dll");
        let rows = vec![
            Row::RegValue(RegValueRow {
                name: "AppInit_DLLs".into(),
                key: "HKLM\\SOFTWARE".parse().unwrap(),
                data: "msvsres.dll".to_string(),
            }),
            Row::RegValue(RegValueRow {
                name: "Other".into(),
                key: "HKLM\\SOFTWARE".parse().unwrap(),
                data: "msvsres.dll untouched".to_string(),
            }),
        ];
        let out = f.filter(
            &ctx(),
            &Query::RegEnumValues {
                key: "HKLM\\SOFTWARE".parse().unwrap(),
            },
            rows,
        );
        match (&out[0], &out[1]) {
            (Row::RegValue(a), Row::RegValue(b)) => {
                assert_eq!(a.data, "");
                assert!(b.data.contains("msvsres"));
            }
            _ => panic!("rows changed type"),
        }
    }

    #[test]
    fn hide_pids_only_affects_process_rows() {
        let f = hide_pids(vec![8]);
        let rows = vec![
            Row::Process(ProcessRow {
                pid: Pid(8),
                image_name: "g.exe".into(),
                image_path: "C:\\g.exe".into(),
            }),
            Row::Process(ProcessRow {
                pid: Pid(12),
                image_name: "ok.exe".into(),
                image_path: "C:\\ok.exe".into(),
            }),
            file_row("C:\\a.txt"),
        ];
        let out = f.filter(&ctx(), &Query::ProcessList, rows);
        assert_eq!(out.len(), 2);
    }
}
