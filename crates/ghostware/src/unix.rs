//! The Section 5 Unix rootkits: Darkside, Superkit, Synapsis, T0rnkit.
//!
//! The first three hide their files by hooking `getdents` through an LKM;
//! T0rnkit instead replaces OS utility programs (`ls`) with trojaned
//! versions. All four are detected by the same cross-view diff: `ls`-based
//! inside scan versus a clean-boot scan of the same partitions.

use strider_unixfs::UnixMachine;

/// Ground truth for a Unix infection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnixInfection {
    /// The rootkit's name.
    pub rootkit: String,
    /// Absolute paths hidden from the inside `ls` scan.
    pub hidden_paths: Vec<String>,
    /// Whether the hiding is LKM-based (vs a trojaned binary).
    pub uses_lkm: bool,
}

/// A Unix rootkit sample.
pub trait UnixRootkit {
    /// The rootkit's name.
    fn name(&self) -> &str;
    /// Installs the rootkit on a Unix machine.
    fn infect(&self, machine: &mut UnixMachine) -> UnixInfection;
}

/// Darkside 0.2.3 for FreeBSD: LKM hiding `.darkside` artifacts.
#[derive(Debug, Clone, Copy, Default)]
pub struct Darkside;

impl UnixRootkit for Darkside {
    fn name(&self) -> &str {
        "Darkside 0.2.3"
    }

    fn infect(&self, machine: &mut UnixMachine) -> UnixInfection {
        let paths = vec![
            "/usr/lib/.darkside/ds".to_string(),
            "/usr/lib/.darkside/ds.conf".to_string(),
        ];
        for p in &paths {
            machine.fs_mut().create_file(p, b"ELF darkside");
        }
        machine.load_lkm("darkside", &[".darkside"]);
        UnixInfection {
            rootkit: self.name().to_string(),
            hidden_paths: paths,
            uses_lkm: true,
        }
    }
}

/// Superkit for Linux: LKM hiding the `/usr/lib/.sk` tree.
#[derive(Debug, Clone, Copy, Default)]
pub struct Superkit;

impl UnixRootkit for Superkit {
    fn name(&self) -> &str {
        "Superkit"
    }

    fn infect(&self, machine: &mut UnixMachine) -> UnixInfection {
        let paths = vec![
            "/usr/lib/.sk/backdoor".to_string(),
            "/usr/lib/.sk/sniff.log".to_string(),
            "/usr/lib/.sk/install".to_string(),
        ];
        for p in &paths {
            machine.fs_mut().create_file(p, b"ELF superkit");
        }
        machine.load_lkm("superkit", &[".sk"]);
        UnixInfection {
            rootkit: self.name().to_string(),
            hidden_paths: paths,
            uses_lkm: true,
        }
    }
}

/// Synapsis for Linux: LKM hiding `/dev/.synapsis`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Synapsis;

impl UnixRootkit for Synapsis {
    fn name(&self) -> &str {
        "Synapsis"
    }

    fn infect(&self, machine: &mut UnixMachine) -> UnixInfection {
        let paths = vec![
            "/dev/.synapsis/syn".to_string(),
            "/dev/.synapsis/pass.log".to_string(),
        ];
        for p in &paths {
            machine.fs_mut().create_file(p, b"ELF synapsis");
        }
        machine.load_lkm("synapsis", &[".synapsis"]);
        UnixInfection {
            rootkit: self.name().to_string(),
            hidden_paths: paths,
            uses_lkm: true,
        }
    }
}

/// T0rnkit: replaces `ls` (and friends) with trojaned versions hiding
/// `/usr/src/.puta`.
#[derive(Debug, Clone, Copy, Default)]
pub struct T0rnkit;

impl UnixRootkit for T0rnkit {
    fn name(&self) -> &str {
        "T0rnkit"
    }

    fn infect(&self, machine: &mut UnixMachine) -> UnixInfection {
        let paths = vec![
            "/usr/src/.puta/t0rns".to_string(),
            "/usr/src/.puta/t0rnsb".to_string(),
            "/usr/src/.puta/t0rnp".to_string(),
        ];
        for p in &paths {
            machine.fs_mut().create_file(p, b"ELF t0rn");
        }
        machine.trojan_ls(&[".puta"]);
        UnixInfection {
            rootkit: self.name().to_string(),
            hidden_paths: paths,
            uses_lkm: false,
        }
    }
}

/// The full Unix corpus in paper order.
pub fn unix_corpus() -> Vec<Box<dyn UnixRootkit>> {
    vec![
        Box::new(Darkside),
        Box::new(Superkit),
        Box::new(Synapsis),
        Box::new(T0rnkit),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lkm_rootkits_hide_from_ls_scan() {
        for rk in [&Darkside as &dyn UnixRootkit, &Superkit, &Synapsis] {
            let mut m = UnixMachine::with_base_system("u");
            let inf = rk.infect(&mut m);
            assert!(inf.uses_lkm);
            let inside = m.ls_scan_all();
            let truth = m.offline_scan();
            for p in &inf.hidden_paths {
                assert!(!inside.contains(p), "{} leaked {p}", inf.rootkit);
                assert!(truth.contains(p), "{} truth missing {p}", inf.rootkit);
            }
        }
    }

    #[test]
    fn t0rnkit_hides_via_trojaned_ls_only() {
        let mut m = UnixMachine::with_base_system("u");
        let inf = T0rnkit.infect(&mut m);
        assert!(!inf.uses_lkm);
        let inside = m.ls_scan_all();
        let glob = m.glob_scan_all();
        for p in &inf.hidden_paths {
            assert!(!inside.contains(p));
            // echo * bypasses the trojaned binary: the Brumley "ls vs echo *"
            // check catches T0rnkit inside the box.
            assert!(glob.contains(p));
        }
    }

    #[test]
    fn corpus_has_four_rootkits() {
        assert_eq!(unix_corpus().len(), 4);
    }
}
