//! Hacker Defender 1.0 — "the most popular Windows rootkit today according
//! to Product Support Service engineers" (paper, Section 6).
//!
//! Hacker Defender detours the lower-level `NtDll!NtQueryDirectoryFile`
//! (files), `NtDll!NtEnumerateKey` (Registry) and
//! `NtDll!NtQuerySystemInformation` (processes), so both Win32 and
//! native-API callers see the lie. It hides everything matching the patterns
//! in its `hxdef100.ini` — including the ini itself, its service hooks
//! (`HackerDefender100`, `HackerDefenderDrv100`), and its process. Its
//! *driver* stays visible in the loaded-driver list, which is how AskStrider
//! could spot it.

use crate::filters::hide_names_containing;
use crate::{Ghostware, Infection, Technique};
use strider_hive::ValueData;
use strider_nt_core::{NtPath, NtStatus};
use strider_winapi::{HookScope, Machine, QueryKind};

/// The Hacker Defender 1.0 sample.
#[derive(Debug, Clone)]
pub struct HackerDefender {
    /// Extra hide patterns written into `[Hidden Table]` of `hxdef100.ini`
    /// in addition to the default `hxdef*`.
    pub extra_patterns: Vec<String>,
    /// Install directory.
    pub install_dir: String,
}

impl Default for HackerDefender {
    fn default() -> Self {
        Self {
            extra_patterns: Vec::new(),
            install_dir: "C:\\windows\\system32".to_string(),
        }
    }
}

impl HackerDefender {
    /// Renders the `hxdef100.ini` contents the sample drops and then parses
    /// back for its hide table — configuration-driven hiding, as shipped.
    pub fn render_ini(&self) -> String {
        let mut ini = String::from("[Hidden Table]\r\nhxdef*\r\n");
        for p in &self.extra_patterns {
            ini.push_str(p);
            ini.push_str("\r\n");
        }
        ini.push_str("[Hidden Processes]\r\nhxdef*\r\n[Hidden Services]\r\nHackerDefender*\r\n");
        ini
    }

    /// Parses hide patterns out of an ini's `[Hidden Table]` section
    /// (wildcards reduced to substring stems, as the real parser effectively
    /// treats leading/trailing `*`).
    pub fn parse_ini_patterns(ini: &str) -> Vec<String> {
        let mut patterns = Vec::new();
        let mut in_table = false;
        for line in ini.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_table = line.eq_ignore_ascii_case("[Hidden Table]");
                continue;
            }
            if in_table && !line.is_empty() {
                patterns.push(line.trim_matches('*').to_string());
            }
        }
        patterns
    }
}

impl Ghostware for HackerDefender {
    fn name(&self) -> &str {
        "Hacker Defender 1.0"
    }

    fn infect(&self, machine: &mut Machine) -> Result<Infection, NtStatus> {
        let dir = &self.install_dir;
        let exe: NtPath = format!("{dir}\\hxdef100.exe")
            .parse()
            .map_err(|_| NtStatus::ObjectNameInvalid)?;
        let ini: NtPath = format!("{dir}\\hxdef100.ini")
            .parse()
            .map_err(|_| NtStatus::ObjectNameInvalid)?;
        let drv: NtPath = "C:\\windows\\system32\\drivers\\hxdefdrv.sys"
            .parse()
            .expect("static");
        let ini_text = self.render_ini();
        machine.native_create_file(&exe, b"MZ hxdef100")?;
        machine.native_create_file(&ini, ini_text.as_bytes())?;
        machine.native_create_file(&drv, b"MZ hxdefdrv")?;

        // Two service ASEP hooks (Figure 4).
        for (svc, image) in [
            ("HackerDefender100", "hxdef100.exe"),
            ("HackerDefenderDrv100", "hxdefdrv.sys"),
        ] {
            let key: NtPath = format!("HKLM\\SYSTEM\\CurrentControlSet\\Services\\{svc}")
                .parse()
                .map_err(|_| NtStatus::ObjectNameInvalid)?;
            machine
                .registry_mut()
                .create_key(&key)
                .map_err(|_| NtStatus::ObjectNameNotFound)?;
            machine
                .registry_mut()
                .set_value(&key, "ImagePath", ValueData::sz(image))
                .map_err(|_| NtStatus::ObjectNameNotFound)?;
        }

        // The driver is loaded and stays visible.
        machine.kernel_mut().load_driver("hxdefdrv", drv.clone());

        // The rootkit process, hidden below.
        machine.spawn_process("hxdef100.exe", &exe.to_string())?;

        // Read the hide table back out of the dropped ini — the patterns the
        // detours enforce come from configuration, exactly as shipped.
        let file_patterns = Self::parse_ini_patterns(&ini_text);
        let pattern_refs: Vec<&str> = file_patterns.iter().map(String::as_str).collect();
        machine.install_ntdll_hook(
            "HackerDefender",
            vec![QueryKind::Files, QueryKind::Processes],
            HookScope::All,
            hide_names_containing(&pattern_refs),
        );
        machine.install_ntdll_hook(
            "HackerDefender",
            vec![QueryKind::RegKeys, QueryKind::RegValues],
            HookScope::All,
            hide_names_containing(&["hackerdefender"]),
        );

        let mut infection = Infection::new("Hacker Defender 1.0");
        infection.techniques = vec![Technique::DetourNtdll];
        infection.hidden_files = vec![exe, ini, drv];
        infection.hidden_asep_entries = vec![
            "HackerDefender100".to_string(),
            "HackerDefenderDrv100".to_string(),
        ];
        infection.hidden_process_names = vec!["hxdef100.exe".to_string()];
        infection
            .visible_artifacts
            .push("hxdefdrv driver in loaded-driver list".to_string());
        Ok(infection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_winapi::{ChainEntry, Query};

    #[test]
    fn ini_roundtrip_drives_patterns() {
        let hd = HackerDefender {
            extra_patterns: vec!["secret*".to_string()],
            ..Default::default()
        };
        let ini = hd.render_ini();
        let patterns = HackerDefender::parse_ini_patterns(&ini);
        assert_eq!(patterns, vec!["hxdef".to_string(), "secret".to_string()]);
    }

    #[test]
    fn hides_files_from_both_win32_and_native() {
        let mut m = Machine::with_base_system("t").unwrap();
        HackerDefender::default().infect(&mut m).unwrap();
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let q = Query::DirectoryEnum {
            path: "C:\\windows\\system32".parse().unwrap(),
        };
        for entry in [ChainEntry::Win32, ChainEntry::Native] {
            let rows = m.query(&ctx, &q, entry).unwrap();
            assert!(
                !rows
                    .iter()
                    .any(|r| r.name().to_win32_lossy().contains("hxdef")),
                "NtDll detour must catch {entry:?} callers"
            );
        }
    }

    #[test]
    fn hides_process_and_service_keys() {
        let mut m = Machine::with_base_system("t").unwrap();
        HackerDefender::default().infect(&mut m).unwrap();
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let procs = m
            .query(&ctx, &Query::ProcessList, ChainEntry::Win32)
            .unwrap();
        assert!(!procs
            .iter()
            .any(|r| r.name().to_win32_lossy().contains("hxdef")));
        let keys = m
            .query(
                &ctx,
                &Query::RegEnumKeys {
                    key: "HKLM\\SYSTEM\\CurrentControlSet\\Services".parse().unwrap(),
                },
                ChainEntry::Win32,
            )
            .unwrap();
        assert!(!keys
            .iter()
            .any(|r| r.name().to_win32_lossy().contains("HackerDefender")));
    }

    #[test]
    fn driver_remains_visible() {
        let mut m = Machine::with_base_system("t").unwrap();
        let inf = HackerDefender::default().infect(&mut m).unwrap();
        assert!(m
            .kernel()
            .drivers()
            .iter()
            .any(|d| d.name.to_win32_lossy() == "hxdefdrv"));
        assert_eq!(inf.visible_artifacts.len(), 1);
    }

    #[test]
    fn extra_patterns_hide_user_files() {
        let mut m = Machine::with_base_system("t").unwrap();
        m.volume_mut()
            .create_file(&"C:\\temp\\secret-plans.doc".parse().unwrap(), b"x")
            .unwrap();
        HackerDefender {
            extra_patterns: vec!["secret*".to_string()],
            ..Default::default()
        }
        .infect(&mut m)
        .unwrap();
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let rows = m
            .query(
                &ctx,
                &Query::DirectoryEnum {
                    path: "C:\\temp".parse().unwrap(),
                },
                ChainEntry::Win32,
            )
            .unwrap();
        assert!(rows.is_empty());
    }
}
