//! ProBot SE — the commercial key-logger.
//!
//! ProBot SE "hijacks kernel-mode file-query APIs by modifying their dispatch
//! entries in the Service Dispatch Table" (Figure 2). It installs four
//! randomly-named files — an EXE, a DLL, and two drivers (Figure 3) — plus
//! three ASEP hooks: two services (one of them a keyboard driver) and a Run
//! key (Figure 4). Its log file fills with keystrokes as the machine runs.

use crate::filters::hide_names_containing;
use crate::{Ghostware, Infection, Technique};

use strider_hive::ValueData;
use strider_kernel::SyscallId;
use strider_nt_core::{NtPath, NtStatus};
use strider_support::rng::SplitMix64;
use strider_winapi::{Machine, QueryKind, TickTask};

/// The ProBot SE sample. Its artifact names are random; pass a seed for
/// reproducible experiments.
#[derive(Debug, Clone)]
pub struct ProBotSe {
    /// RNG seed for the random artifact names.
    pub seed: u64,
}

impl Default for ProBotSe {
    fn default() -> Self {
        Self { seed: 0x9b07 }
    }
}

fn random_stem(rng: &mut SplitMix64) -> String {
    (0..8)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

struct Keylogger {
    log_path: NtPath,
    counter: u64,
}

impl TickTask for Keylogger {
    fn name(&self) -> &str {
        "probot-keylogger"
    }

    fn on_tick(&mut self, machine: &mut Machine) {
        self.counter += 1;
        // Capture a "keystroke" every few ticks.
        if self.counter.is_multiple_of(3) {
            let line = format!("key {:04}\r\n", self.counter);
            let _ = machine
                .volume_mut()
                .append_file(&self.log_path, line.as_bytes());
        }
    }
}

impl Ghostware for ProBotSe {
    fn name(&self) -> &str {
        "ProBot SE"
    }

    fn infect(&self, machine: &mut Machine) -> Result<Infection, NtStatus> {
        let mut rng = SplitMix64::seed_from_u64(self.seed);
        let exe_stem = random_stem(&mut rng);
        let dll_stem = random_stem(&mut rng);
        let drv1_stem = random_stem(&mut rng);
        let drv2_stem = random_stem(&mut rng);

        let mk = |s: &str| -> Result<NtPath, NtStatus> {
            s.parse().map_err(|_| NtStatus::ObjectNameInvalid)
        };
        let exe = mk(&format!("C:\\windows\\system32\\{exe_stem}.exe"))?;
        let dll = mk(&format!("C:\\windows\\system32\\{dll_stem}.dll"))?;
        let drv1 = mk(&format!("C:\\windows\\system32\\drivers\\{drv1_stem}.sys"))?;
        let drv2 = mk(&format!("C:\\windows\\system32\\drivers\\{drv2_stem}.sys"))?;
        let log = mk(&format!("C:\\windows\\system32\\{exe_stem}.log"))?;
        machine.native_create_file(&exe, b"MZ probot")?;
        machine.native_create_file(&dll, b"MZ probot hook dll")?;
        machine.native_create_file(&drv1, b"MZ probot fsdrv")?;
        machine.native_create_file(&drv2, b"MZ probot kbddrv")?;
        machine.native_create_file(&log, b"")?;

        // ASEP hooks: two services + one Run entry (Figure 4).
        for (svc, image) in [
            (
                drv1_stem.clone(),
                format!("System32\\drivers\\{drv1_stem}.sys"),
            ),
            (
                drv2_stem.clone(),
                format!("{drv2_stem}.sys keyboard driver"),
            ),
        ] {
            let key = mk(&format!("HKLM\\SYSTEM\\CurrentControlSet\\Services\\{svc}"))?;
            machine
                .registry_mut()
                .create_key(&key)
                .map_err(|_| NtStatus::ObjectNameNotFound)?;
            machine
                .registry_mut()
                .set_value(&key, "ImagePath", ValueData::sz(image.as_str()))
                .map_err(|_| NtStatus::ObjectNameNotFound)?;
        }
        let run: NtPath = "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run"
            .parse()
            .expect("static");
        machine
            .registry_mut()
            .set_value(
                &run,
                format!("{exe_stem}.exe").as_str(),
                ValueData::sz(exe.to_string().as_str()),
            )
            .map_err(|_| NtStatus::ObjectNameNotFound)?;

        machine.kernel_mut().load_driver(&drv1_stem, drv1.clone());
        machine.kernel_mut().load_driver(&drv2_stem, drv2.clone());

        // SSDT hooks: one per hijacked service, all hiding the random stems.
        let stems = [
            exe_stem.clone(),
            dll_stem.clone(),
            drv1_stem.clone(),
            drv2_stem.clone(),
        ];
        let stem_refs: Vec<&str> = stems.iter().map(String::as_str).collect();
        machine.install_ssdt_hook(
            "ProBotSE",
            SyscallId::NtQueryDirectoryFile,
            vec![QueryKind::Files],
            hide_names_containing(&stem_refs),
        );
        machine.install_ssdt_hook(
            "ProBotSE",
            SyscallId::NtEnumerateKey,
            vec![QueryKind::RegKeys],
            hide_names_containing(&stem_refs),
        );
        machine.install_ssdt_hook(
            "ProBotSE",
            SyscallId::NtEnumerateValueKey,
            vec![QueryKind::RegValues],
            hide_names_containing(&stem_refs),
        );

        // The logger runs as part of the machine's background activity.
        machine.add_tick_task(Box::new(Keylogger {
            log_path: log.clone(),
            counter: 0,
        }));

        let mut infection = Infection::new("ProBot SE");
        infection.techniques = vec![Technique::SsdtHook];
        infection.hidden_files = vec![exe, dll, drv1, drv2, log];
        infection.hidden_asep_entries = vec![
            drv1_stem.clone(),
            drv2_stem.clone(),
            format!("{exe_stem}.exe"),
        ];
        Ok(infection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_winapi::{ChainEntry, Query};

    #[test]
    fn artifacts_are_deterministic_per_seed() {
        let mut m1 = Machine::with_base_system("a").unwrap();
        let mut m2 = Machine::with_base_system("b").unwrap();
        let i1 = ProBotSe { seed: 7 }.infect(&mut m1).unwrap();
        let i2 = ProBotSe { seed: 7 }.infect(&mut m2).unwrap();
        assert_eq!(i1.hidden_files, i2.hidden_files);
        let i3 = ProBotSe { seed: 8 }
            .infect(&mut Machine::with_base_system("c").unwrap())
            .unwrap();
        assert_ne!(i1.hidden_files, i3.hidden_files);
    }

    #[test]
    fn ssdt_hides_from_native_callers_too() {
        let mut m = Machine::with_base_system("t").unwrap();
        let inf = ProBotSe::default().infect(&mut m).unwrap();
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let stem = inf.hidden_files[0]
            .file_name()
            .unwrap()
            .to_win32_lossy()
            .trim_end_matches(".exe")
            .to_string();
        for entry in [ChainEntry::Win32, ChainEntry::Native] {
            let rows = m
                .query(
                    &ctx,
                    &Query::DirectoryEnum {
                        path: "C:\\windows\\system32".parse().unwrap(),
                    },
                    entry,
                )
                .unwrap();
            assert!(
                !rows
                    .iter()
                    .any(|r| r.name().to_win32_lossy().contains(&stem)),
                "SSDT hook is below the native entry"
            );
        }
    }

    #[test]
    fn keylogger_grows_its_log() {
        let mut m = Machine::with_base_system("t").unwrap();
        let inf = ProBotSe::default().infect(&mut m).unwrap();
        let log = inf
            .hidden_files
            .iter()
            .find(|p| p.to_string().ends_with(".log"))
            .unwrap()
            .clone();
        m.tick(9);
        assert!(!m.volume().read_file(&log).unwrap().is_empty());
    }

    #[test]
    fn three_asep_hooks_installed() {
        let mut m = Machine::with_base_system("t").unwrap();
        let inf = ProBotSe::default().infect(&mut m).unwrap();
        assert_eq!(inf.hidden_asep_entries.len(), 3);
        assert_eq!(m.kernel().ssdt().hooked_services().len(), 3);
    }
}
