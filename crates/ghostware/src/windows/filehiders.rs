//! The four commercial file hiders: Hide Files 3.3, Hide Folders XP,
//! Advanced Hide Folders, and File & Folder Protector.
//!
//! "All four commercial file hiders use a filter driver that is inserted
//! into the OS file system stack to intercept all file operations. The
//! filter driver can scope the file-hiding behavior to specific processes by
//! examining the IRP for the I/O operation to determine the originating
//! process" (paper, Section 2). They hide user-selected folders and files
//! (Figure 3, last row) but do not hide their own program files or ASEP
//! hooks — they are commercial products, not malware.

use crate::filters::hide_paths_containing;
use crate::{Ghostware, Infection, Technique};
use strider_hive::ValueData;
use strider_nt_core::{NtPath, NtStatus};
use strider_winapi::{HookScope, Machine};

/// A commercial file hider parameterized by product identity and the
/// user-selected paths to hide.
#[derive(Debug, Clone)]
pub struct FileHider {
    product: &'static str,
    exe_name: &'static str,
    /// User-selected files/folders to hide (path substrings).
    pub targets: Vec<String>,
}

impl FileHider {
    fn new(product: &'static str, exe_name: &'static str, default_target: &str) -> Self {
        Self {
            product,
            exe_name,
            targets: vec![default_target.to_string()],
        }
    }

    /// Hide Files 3.3.
    pub fn hide_files_33() -> Self {
        Self::new(
            "Hide Files 3.3",
            "hidefiles.exe",
            "C:\\Documents and Settings\\user\\private",
        )
    }

    /// Hide Folders XP.
    pub fn hide_folders_xp() -> Self {
        Self::new("Hide Folders XP", "hfxp.exe", "C:\\hidden folder")
    }

    /// Advanced Hide Folders.
    pub fn advanced_hide_folders() -> Self {
        Self::new("Advanced Hide Folders", "ahf.exe", "C:\\temp\\stash")
    }

    /// File & Folder Protector.
    pub fn file_folder_protector() -> Self {
        Self::new("File & Folder Protector", "ffp.exe", "C:\\protected")
    }

    /// Replaces the user-selected hide targets.
    pub fn with_targets(mut self, targets: Vec<String>) -> Self {
        self.targets = targets;
        self
    }
}

impl Ghostware for FileHider {
    fn name(&self) -> &str {
        self.product
    }

    fn infect(&self, machine: &mut Machine) -> Result<Infection, NtStatus> {
        // The product itself installs openly under Program Files with a
        // visible Run hook.
        let product_dir: NtPath = format!("C:\\Program Files\\{}", self.product)
            .parse()
            .map_err(|_| NtStatus::ObjectNameInvalid)?;
        machine
            .volume_mut()
            .mkdir_p(&product_dir)
            .map_err(|_| NtStatus::ObjectPathNotFound)?;
        let exe = product_dir.join(self.exe_name);
        machine.win32_create_file(&exe, b"MZ file hider")?;
        let run: NtPath = "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run"
            .parse()
            .expect("static");
        machine
            .registry_mut()
            .set_value(&run, self.exe_name, ValueData::sz(exe.to_string().as_str()))
            .map_err(|_| NtStatus::ObjectNameNotFound)?;
        machine.spawn_process(self.exe_name, &exe.to_string())?;

        // Create the user-selected content and hide it with the filter
        // driver, scoped so the product's own process still sees it.
        let mut hidden = Vec::new();
        for target in &self.targets {
            let dir: NtPath = target.parse().map_err(|_| NtStatus::ObjectNameInvalid)?;
            machine
                .volume_mut()
                .mkdir_p(&dir)
                .map_err(|_| NtStatus::ObjectPathNotFound)?;
            for (name, data) in [("diary.txt", &b"dear diary"[..]), ("photo.jpg", b"JPEG")] {
                let f = dir.join(name);
                if !machine.volume().exists(&f) {
                    machine.win32_create_file(&f, data)?;
                }
                hidden.push(f);
            }
            hidden.push(dir);
        }
        let patterns: Vec<String> = self
            .targets
            .iter()
            .map(|t| t.to_ascii_lowercase())
            .collect();
        machine.install_filter_driver(
            self.product,
            HookScope::ExceptCallers(vec![self.exe_name.to_string()]),
            hide_paths_containing(&patterns),
        );

        let mut infection = Infection::new(self.product);
        infection.techniques = vec![Technique::FilterDriver];
        infection.hidden_files = hidden;
        infection.visible_artifacts.push(format!(
            "{} under Program Files with visible Run hook",
            self.exe_name
        ));
        Ok(infection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_winapi::{ChainEntry, Query};

    #[test]
    fn all_four_products_hide_their_targets() {
        for hider in [
            FileHider::hide_files_33(),
            FileHider::hide_folders_xp(),
            FileHider::advanced_hide_folders(),
            FileHider::file_folder_protector(),
        ] {
            let mut m = Machine::with_base_system("t").unwrap();
            let target_dir: NtPath = hider.targets[0].parse().unwrap();
            let parent = target_dir.parent().unwrap();
            let inf = hider.infect(&mut m).unwrap();
            assert!(inf.hidden_files.len() >= 3);
            let ctx = m.context_for_name("explorer.exe").unwrap();
            let rows = m
                .query(
                    &ctx,
                    &Query::DirectoryEnum { path: parent },
                    ChainEntry::Win32,
                )
                .unwrap();
            assert!(
                !rows.iter().any(|r| r.name().to_win32_lossy()
                    == target_dir.file_name().unwrap().to_win32_lossy()),
                "{} failed to hide {}",
                inf.ghostware,
                target_dir
            );
        }
    }

    #[test]
    fn filter_driver_hides_from_native_callers_too() {
        let mut m = Machine::with_base_system("t").unwrap();
        FileHider::hide_folders_xp().infect(&mut m).unwrap();
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let rows = m
            .query(
                &ctx,
                &Query::DirectoryEnum {
                    path: "C:".parse().unwrap(),
                },
                ChainEntry::Native,
            )
            .unwrap();
        assert!(!rows
            .iter()
            .any(|r| r.name().to_win32_lossy() == "hidden folder"));
    }

    #[test]
    fn product_process_sees_its_own_hidden_files() {
        let mut m = Machine::with_base_system("t").unwrap();
        FileHider::hide_folders_xp().infect(&mut m).unwrap();
        let owner = m.context_for_name("hfxp.exe").unwrap();
        let rows = m
            .query(
                &owner,
                &Query::DirectoryEnum {
                    path: "C:".parse().unwrap(),
                },
                ChainEntry::Win32,
            )
            .unwrap();
        assert!(rows
            .iter()
            .any(|r| r.name().to_win32_lossy() == "hidden folder"));
    }

    #[test]
    fn product_files_and_hook_remain_visible() {
        let mut m = Machine::with_base_system("t").unwrap();
        FileHider::hide_files_33().infect(&mut m).unwrap();
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let rows = m
            .query(
                &ctx,
                &Query::DirectoryEnum {
                    path: "C:\\Program Files\\Hide Files 3.3".parse().unwrap(),
                },
                ChainEntry::Win32,
            )
            .unwrap();
        assert_eq!(rows.len(), 1, "the product exe is not hidden");
    }

    #[test]
    fn custom_targets() {
        let mut m = Machine::with_base_system("t").unwrap();
        let hider = FileHider::hide_files_33().with_targets(vec!["C:\\work\\secret".to_string()]);
        let inf = hider.infect(&mut m).unwrap();
        assert!(inf
            .hidden_files
            .iter()
            .any(|p| p.to_string().contains("secret")));
    }
}
