//! The FU rootkit — Direct Kernel Object Manipulation.
//!
//! "The DKOM implementation of the FU rootkit presents a unique challenge:
//! it hides a process by removing its corresponding entry from the Active
//! Process List kernel data structure … a process can be absent from the
//! list while remaining fully functional" (paper, Section 4). FU installs no
//! query filter at all: there is nothing for an API-diff to catch unless the
//! low-level scan uses a *different* kernel structure — GhostBuster's
//! advanced mode.
//!
//! FU ships as a user-mode `fu.exe` plus the `msdirectx.sys` driver, both of
//! which stay visible; only the victim process is hidden
//! (`fu -ph <pid>`).

use crate::{Ghostware, Infection, Technique};
use strider_nt_core::{NtPath, NtStatus, Pid};
use strider_winapi::Machine;

/// The FU rootkit sample.
#[derive(Debug, Clone, Default)]
pub struct Fu {
    /// Pre-existing pid to hide; when `None`, FU spawns a demo payload
    /// process and hides that.
    pub target: Option<Pid>,
}

impl Fu {
    /// The `fu -ph <pid>` command against an already-infected machine.
    ///
    /// # Errors
    ///
    /// Fails when the pid does not exist or is already unlinked.
    pub fn hide_process(machine: &mut Machine, pid: Pid) -> Result<(), NtStatus> {
        machine
            .kernel_mut()
            .dkom_unlink(pid)
            .map_err(|_| NtStatus::NoSuchProcess)
    }
}

impl Ghostware for Fu {
    fn name(&self) -> &str {
        "FU"
    }

    fn infect(&self, machine: &mut Machine) -> Result<Infection, NtStatus> {
        let exe: NtPath = "C:\\windows\\system32\\fu.exe".parse().expect("static");
        let drv: NtPath = "C:\\windows\\system32\\drivers\\msdirectx.sys"
            .parse()
            .expect("static");
        machine.win32_create_file(&exe, b"MZ fu")?;
        machine.win32_create_file(&drv, b"MZ msdirectx")?;
        machine.kernel_mut().load_driver("msdirectx", drv);

        let (pid, image_name) = match self.target {
            Some(pid) => {
                let name = machine
                    .kernel()
                    .process(pid)
                    .ok_or(NtStatus::NoSuchProcess)?
                    .image_name
                    .to_win32_lossy();
                (pid, name)
            }
            None => {
                let pid = machine
                    .spawn_process("fu_payload.exe", "C:\\windows\\system32\\fu_payload.exe")?;
                (pid, "fu_payload.exe".to_string())
            }
        };
        Fu::hide_process(machine, pid)?;

        let mut infection = Infection::new("FU");
        infection.techniques = vec![Technique::Dkom];
        infection.hidden_process_names = vec![image_name];
        infection
            .visible_artifacts
            .push("fu.exe and msdirectx.sys on disk; msdirectx in driver list".to_string());
        Ok(infection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_winapi::{ChainEntry, Query};

    #[test]
    fn dkom_hides_from_every_api_entry_without_any_hook() {
        let mut m = Machine::with_base_system("t").unwrap();
        Fu::default().infect(&mut m).unwrap();
        assert!(m.hooks().hooks().is_empty(), "FU installs no query filter");
        let ctx = m.context_for_name("explorer.exe").unwrap();
        for entry in [ChainEntry::Win32, ChainEntry::Native] {
            let rows = m.query(&ctx, &Query::ProcessList, entry).unwrap();
            assert!(
                !rows
                    .iter()
                    .any(|r| r.name().to_win32_lossy() == "fu_payload.exe"),
                "APL-based enumeration cannot see a DKOM-hidden process ({entry:?})"
            );
        }
    }

    #[test]
    fn hidden_process_remains_functional_and_in_thread_table() {
        let mut m = Machine::with_base_system("t").unwrap();
        Fu::default().infect(&mut m).unwrap();
        let pid = m.kernel().find_by_name("fu_payload.exe")[0];
        assert!(m.kernel().processes_via_threads().contains(&pid));
        assert!(m.kernel().processes_via_handles().contains(&pid));
    }

    #[test]
    fn fu_can_hide_other_ghostware_processes() {
        // "One can even use the FU rootkit to hide the other process-hiding
        // ghostware programs to increase their stealth."
        let mut m = Machine::with_base_system("t").unwrap();
        let pid = m.spawn_process("hxdef100.exe", "C:\\h.exe").unwrap();
        let fu = Fu { target: Some(pid) };
        let inf = fu.infect(&mut m).unwrap();
        assert_eq!(inf.hidden_process_names, vec!["hxdef100.exe".to_string()]);
        assert!(!m.kernel().active_process_list().contains(&pid));
    }

    #[test]
    fn hiding_a_dead_pid_fails() {
        let mut m = Machine::with_base_system("t").unwrap();
        assert_eq!(
            Fu::hide_process(&mut m, Pid(9999)),
            Err(NtStatus::NoSuchProcess)
        );
    }
}
