//! Berbew — the process-hiding backdoor.
//!
//! Berbew hijacks process-list queries "by putting a `jmp` instruction
//! inside the `NtDll!NtQuerySystemInformation` in-memory code" (Figure 5)
//! and hides its randomly-named process (Figure 6). Its dropped file is
//! *not* hidden — Berbew is in the process-hiding corpus only.

use crate::filters::hide_names_containing;
use crate::{Ghostware, Infection, Technique};

use strider_hive::ValueData;
use strider_nt_core::{NtPath, NtStatus};
use strider_support::rng::SplitMix64;
use strider_winapi::{HookScope, Machine, QueryKind};

/// The Berbew sample with its random process name seed.
#[derive(Debug, Clone)]
pub struct Berbew {
    /// RNG seed for the random name.
    pub seed: u64,
}

impl Default for Berbew {
    fn default() -> Self {
        Self { seed: 0xbe4b }
    }
}

impl Ghostware for Berbew {
    fn name(&self) -> &str {
        "Berbew"
    }

    fn infect(&self, machine: &mut Machine) -> Result<Infection, NtStatus> {
        let mut rng = SplitMix64::seed_from_u64(self.seed);
        let stem: String = (0..7)
            .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
            .collect();
        let exe_name = format!("{stem}.exe");
        let exe: NtPath = format!("C:\\windows\\system32\\{exe_name}")
            .parse()
            .map_err(|_| NtStatus::ObjectNameInvalid)?;
        // The file is dropped but NOT hidden.
        machine.win32_create_file(&exe, b"MZ berbew")?;
        // A visible Run hook for persistence.
        let run: NtPath = "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run"
            .parse()
            .expect("static");
        machine
            .registry_mut()
            .set_value(
                &run,
                exe_name.as_str(),
                ValueData::sz(exe.to_string().as_str()),
            )
            .map_err(|_| NtStatus::ObjectNameNotFound)?;

        machine.spawn_process(&exe_name, &exe.to_string())?;
        machine.install_ntdll_hook(
            "Berbew",
            vec![QueryKind::Processes],
            HookScope::All,
            hide_names_containing(&[&stem]),
        );

        let mut infection = Infection::new("Berbew");
        infection.techniques = vec![Technique::DetourNtdll];
        infection.hidden_process_names = vec![exe_name];
        infection
            .visible_artifacts
            .push(format!("{} on disk with visible Run hook", exe));
        Ok(infection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_winapi::{ChainEntry, Query};

    #[test]
    fn process_hidden_from_win32_and_native() {
        let mut m = Machine::with_base_system("t").unwrap();
        let inf = Berbew::default().infect(&mut m).unwrap();
        let hidden = &inf.hidden_process_names[0];
        let ctx = m.context_for_name("explorer.exe").unwrap();
        for entry in [ChainEntry::Win32, ChainEntry::Native] {
            let rows = m.query(&ctx, &Query::ProcessList, entry).unwrap();
            assert!(
                !rows.iter().any(|r| r.name().to_win32_lossy() == *hidden),
                "NtDll detour covers {entry:?}"
            );
        }
        // The truth: the APL still contains it (Berbew is not DKOM).
        assert!(m.kernel().active_process_list().iter().any(|&pid| m
            .kernel()
            .process(pid)
            .unwrap()
            .image_name
            .to_win32_lossy()
            == *hidden));
    }

    #[test]
    fn file_stays_visible() {
        let mut m = Machine::with_base_system("t").unwrap();
        let inf = Berbew::default().infect(&mut m).unwrap();
        let exe_name = &inf.hidden_process_names[0];
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let rows = m
            .query(
                &ctx,
                &Query::DirectoryEnum {
                    path: "C:\\windows\\system32".parse().unwrap(),
                },
                ChainEntry::Win32,
            )
            .unwrap();
        assert!(rows.iter().any(|r| r.name().to_win32_lossy() == *exe_name));
    }
}
