//! Alternate-data-stream hiding — one of the "beyond ghostware" techniques
//! the paper's conclusion lists as future work.
//!
//! An ADS hider stores its payload in a named stream of an innocuous host
//! file. No interception is installed and no directory entry is created:
//! ordinary Win32 enumeration simply has no API surface that shows streams,
//! so the payload is invisible to every high-level view. Only a low-level
//! MFT sweep that reports `$DATA` attributes reveals it.

use crate::{Ghostware, Infection, Technique};
use strider_nt_core::{NtPath, NtStatus};
use strider_winapi::Machine;

/// A stealth sample hiding its payload in alternate data streams.
#[derive(Debug, Clone)]
pub struct AdsHider {
    /// The innocuous host file that carries the streams.
    pub host: String,
}

impl Default for AdsHider {
    fn default() -> Self {
        Self {
            host: "C:\\windows\\system32\\calc.txt".to_string(),
        }
    }
}

impl Ghostware for AdsHider {
    fn name(&self) -> &str {
        "AdsHider"
    }

    fn infect(&self, machine: &mut Machine) -> Result<Infection, NtStatus> {
        let host: NtPath = self.host.parse().map_err(|_| NtStatus::ObjectNameInvalid)?;
        if !machine.volume().exists(&host) {
            // The host file itself is ordinary and visible.
            machine.win32_create_file(&host, b"readme")?;
        }
        machine
            .volume_mut()
            .add_stream(&host, "payload.exe", b"MZ ads payload")
            .map_err(|_| NtStatus::ObjectNameCollision)?;
        machine
            .volume_mut()
            .add_stream(&host, "keys.log", b"captured keys")
            .map_err(|_| NtStatus::ObjectNameCollision)?;

        let mut infection = Infection::new("AdsHider");
        infection.techniques = vec![Technique::NamingAsymmetry];
        infection.hidden_files = vec![
            format!("{}:payload.exe", self.host)
                .parse()
                .unwrap_or_else(|_| host.clone()),
            format!("{}:keys.log", self.host)
                .parse()
                .unwrap_or_else(|_| host.clone()),
        ];
        infection
            .visible_artifacts
            .push(format!("{} (the stream host file)", self.host));
        Ok(infection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_nt_core::NtString;

    #[test]
    fn streams_attach_to_the_host() {
        let mut m = Machine::with_base_system("t").unwrap();
        AdsHider::default().infect(&mut m).unwrap();
        let host: NtPath = "C:\\windows\\system32\\calc.txt".parse().unwrap();
        let rec = m.volume().lookup(&host).unwrap();
        assert_eq!(rec.ads_names().len(), 2);
        assert!(rec
            .ads_names()
            .iter()
            .any(|n| n.eq_ignore_case(&NtString::from("payload.exe"))));
    }

    #[test]
    fn no_hooks_no_new_directory_entries() {
        let mut m = Machine::with_base_system("t").unwrap();
        let before = m.volume().record_count();
        AdsHider::default().infect(&mut m).unwrap();
        assert!(m.hooks().hooks().is_empty());
        assert_eq!(m.volume().record_count(), before + 1, "only the host file");
    }
}
