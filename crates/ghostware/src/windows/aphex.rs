//! The Aphex (AFX) rootkit.
//!
//! Aphex patches the in-memory `Kernel32!FindFirst(Next)File` code with a
//! `jmp` detour whose trojan code doctors the return path (Figure 2), hides
//! any file whose name matches a configurable prefix (Figure 3, default `~`),
//! hides its `Run`-key hook (Figure 4), and hides processes with the prefix
//! by patching the IAT entry for `NtDll!NtQuerySystemInformation`
//! (Figure 5).

use crate::filters::hide_names_containing;
use crate::{Ghostware, Infection, Technique};
use strider_hive::ValueData;
use strider_nt_core::{NtPath, NtStatus};
use strider_winapi::{HookScope, HookStyle, Machine, QueryKind};

/// The Aphex rootkit sample with its configurable hide prefix.
#[derive(Debug, Clone)]
pub struct Aphex {
    /// Name prefix that marks files/processes as hidden (default `~`).
    pub prefix: String,
    /// The user-defined name of the auto-started executable.
    pub payload_name: String,
}

impl Default for Aphex {
    fn default() -> Self {
        Self {
            prefix: "~".to_string(),
            payload_name: "~aphex".to_string(),
        }
    }
}

impl Ghostware for Aphex {
    fn name(&self) -> &str {
        "Aphex"
    }

    fn infect(&self, machine: &mut Machine) -> Result<Infection, NtStatus> {
        let exe_name = format!("{}.exe", self.payload_name);
        let exe: NtPath = format!("C:\\windows\\system32\\{exe_name}")
            .parse()
            .map_err(|_| NtStatus::ObjectNameInvalid)?;
        let log: NtPath = format!("C:\\windows\\system32\\{}keys.log", self.prefix)
            .parse()
            .map_err(|_| NtStatus::ObjectNameInvalid)?;
        machine.native_create_file(&exe, b"MZ aphex")?;
        machine.native_create_file(&log, b"captured keys")?;

        // Run-key ASEP hook, hidden below.
        let run: NtPath = "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run"
            .parse()
            .expect("static");
        machine
            .registry_mut()
            .set_value(
                &run,
                exe_name.as_str(),
                ValueData::sz(exe.to_string().as_str()),
            )
            .map_err(|_| NtStatus::ObjectNameNotFound)?;

        // Kernel32 detours for file and Registry enumeration.
        let prefix = self.prefix.clone();
        machine.install_win32_code_hook(
            "Aphex",
            vec![QueryKind::Files, QueryKind::RegValues, QueryKind::RegKeys],
            HookScope::All,
            HookStyle::Detour,
            hide_names_containing(&[&prefix]),
        );

        // The hidden payload process, hidden via an IAT patch on
        // NtQuerySystemInformation.
        machine.spawn_process(&exe_name, &exe.to_string())?;
        machine.install_iat_hook(
            "Aphex",
            vec![QueryKind::Processes],
            HookScope::All,
            hide_names_containing(&[&self.prefix]),
        );

        let mut infection = Infection::new("Aphex");
        infection.techniques = vec![Technique::DetourKernel32, Technique::IatPatch];
        infection.hidden_files = vec![exe, log];
        infection.hidden_asep_entries.push(exe_name.clone());
        infection.hidden_process_names.push(exe_name);
        Ok(infection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_winapi::{ChainEntry, Query};

    #[test]
    fn prefix_files_hidden_from_win32() {
        let mut m = Machine::with_base_system("t").unwrap();
        Aphex::default().infect(&mut m).unwrap();
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let rows = m
            .query(
                &ctx,
                &Query::DirectoryEnum {
                    path: "C:\\windows\\system32".parse().unwrap(),
                },
                ChainEntry::Win32,
            )
            .unwrap();
        assert!(!rows
            .iter()
            .any(|r| r.name().to_win32_lossy().starts_with('~')));
    }

    #[test]
    fn process_hidden_from_win32_listing_only() {
        let mut m = Machine::with_base_system("t").unwrap();
        Aphex::default().infect(&mut m).unwrap();
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let win32 = m
            .query(&ctx, &Query::ProcessList, ChainEntry::Win32)
            .unwrap();
        assert!(!win32
            .iter()
            .any(|r| r.name().to_win32_lossy().starts_with('~')));
        // IAT hooks don't apply to native callers: tlist-style native
        // enumeration sees the truth for *this* sample.
        let native = m
            .query(&ctx, &Query::ProcessList, ChainEntry::Native)
            .unwrap();
        assert!(native
            .iter()
            .any(|r| r.name().to_win32_lossy().starts_with('~')));
    }

    #[test]
    fn custom_prefix_is_honoured() {
        let mut m = Machine::with_base_system("t").unwrap();
        let aphex = Aphex {
            prefix: "zz_".to_string(),
            payload_name: "zz_bot".to_string(),
        };
        let inf = aphex.infect(&mut m).unwrap();
        assert!(inf.hidden_files[0].to_string().contains("zz_bot.exe"));
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let rows = m
            .query(
                &ctx,
                &Query::DirectoryEnum {
                    path: "C:\\windows\\system32".parse().unwrap(),
                },
                ChainEntry::Win32,
            )
            .unwrap();
        assert!(!rows
            .iter()
            .any(|r| r.name().to_win32_lossy().starts_with("zz_")));
    }
}
