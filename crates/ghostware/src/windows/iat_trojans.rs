//! Urbin and Mersting: the wild-captured IAT-patching Trojans.
//!
//! Both alter per-process Import Address Table entries of the file- and
//! Registry-enumeration APIs so that queries route through their Trojan
//! import functions (paper, Figure 2 top). Each drops one DLL into
//! `system32`, hooks `AppInit_DLLs` to get loaded into every process that
//! loads `User32.dll`, hides the DLL file, and *scrubs its own name out of
//! the `AppInit_DLLs` value data* so the hook is invisible to RegEdit
//! (Figure 4 rows 1–2).

use crate::filters::{hide_names_containing, scrub_value_data};
use crate::{Ghostware, Infection, Technique};
use strider_hive::ValueData;
use strider_nt_core::{NtPath, NtStatus, NtString};
use strider_winapi::{HookScope, Machine, QueryKind};

fn infect_iat_trojan(machine: &mut Machine, name: &str, dll: &str) -> Result<Infection, NtStatus> {
    let dll_path: NtPath = format!("C:\\windows\\system32\\{dll}")
        .parse()
        .map_err(|_| NtStatus::ObjectNameInvalid)?;
    machine.native_create_file(&dll_path, format!("MZ {name} payload").as_bytes())?;

    // Hook AppInit_DLLs, appending to whatever is already there.
    let windows_key: NtPath = "HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\Windows"
        .parse()
        .expect("static");
    let existing = machine
        .registry()
        .value(&windows_key, &NtString::from("AppInit_DLLs"))
        .map(|v| v.data.to_display_string())
        .unwrap_or_default();
    let new_data = if existing.trim().is_empty() {
        dll.to_string()
    } else {
        format!("{existing} {dll}")
    };
    machine
        .registry_mut()
        .set_value(
            &windows_key,
            "AppInit_DLLs",
            ValueData::sz(new_data.as_str()),
        )
        .map_err(|_| NtStatus::ObjectNameNotFound)?;

    // IAT patches: file enumeration hides the DLL file; Registry value
    // enumeration scrubs the AppInit_DLLs data.
    let stem = dll.trim_end_matches(".dll");
    machine.install_iat_hook(
        name,
        vec![QueryKind::Files],
        HookScope::All,
        hide_names_containing(&[stem]),
    );
    machine.install_iat_hook(
        name,
        vec![QueryKind::RegValues],
        HookScope::All,
        scrub_value_data("AppInit_DLLs", dll),
    );

    let mut infection = Infection::new(name);
    infection.techniques = vec![Technique::IatPatch];
    infection.hidden_files = vec![dll_path];
    infection
        .hidden_asep_entries
        .push(format!("AppInit_DLLs -> {dll}"));
    Ok(infection)
}

/// The Urbin Trojan: hides `C:\windows\system32\msvsres.dll` and its
/// `AppInit_DLLs` hook via IAT patching.
#[derive(Debug, Clone, Copy, Default)]
pub struct Urbin;

impl Ghostware for Urbin {
    fn name(&self) -> &str {
        "Urbin"
    }

    fn infect(&self, machine: &mut Machine) -> Result<Infection, NtStatus> {
        infect_iat_trojan(machine, "Urbin", "msvsres.dll")
    }
}

/// The Mersting Trojan: hides `C:\windows\system32\kbddfl.dll` and its
/// `AppInit_DLLs` hook via IAT patching.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mersting;

impl Ghostware for Mersting {
    fn name(&self) -> &str {
        "Mersting"
    }

    fn infect(&self, machine: &mut Machine) -> Result<Infection, NtStatus> {
        infect_iat_trojan(machine, "Mersting", "kbddfl.dll")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_winapi::{ChainEntry, Query};

    #[test]
    fn urbin_hides_dll_from_win32_but_not_native() {
        let mut m = Machine::with_base_system("t").unwrap();
        let inf = Urbin.infect(&mut m).unwrap();
        assert_eq!(inf.hidden_files.len(), 1);
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let q = Query::DirectoryEnum {
            path: "C:\\windows\\system32".parse().unwrap(),
        };
        let win32 = m.query(&ctx, &q, ChainEntry::Win32).unwrap();
        assert!(!win32
            .iter()
            .any(|r| r.name().to_win32_lossy().contains("msvsres")));
        // IAT hooks do not reach native callers.
        let native = m.query(&ctx, &q, ChainEntry::Native).unwrap();
        assert!(native
            .iter()
            .any(|r| r.name().to_win32_lossy().contains("msvsres")));
    }

    #[test]
    fn urbin_scrubs_appinit_value_data() {
        let mut m = Machine::with_base_system("t").unwrap();
        Urbin.infect(&mut m).unwrap();
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let q = Query::RegEnumValues {
            key: "HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\Windows"
                .parse()
                .unwrap(),
        };
        let rows = m.query(&ctx, &q, ChainEntry::Win32).unwrap();
        let appinit = rows
            .iter()
            .find_map(|r| match r {
                strider_winapi::Row::RegValue(v) if v.name.to_win32_lossy() == "AppInit_DLLs" => {
                    Some(v.data.clone())
                }
                _ => None,
            })
            .expect("value visible");
        assert!(!appinit.contains("msvsres.dll"), "data scrubbed: {appinit}");
        // The truth in the live registry still holds the hook.
        let truth = m
            .registry()
            .value(&q_key(), &NtString::from("AppInit_DLLs"))
            .unwrap();
        assert!(truth.data.to_display_string().contains("msvsres.dll"));
    }

    fn q_key() -> NtPath {
        "HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\Windows"
            .parse()
            .unwrap()
    }

    #[test]
    fn both_trojans_can_coexist_appending_appinit() {
        let mut m = Machine::with_base_system("t").unwrap();
        Urbin.infect(&mut m).unwrap();
        Mersting.infect(&mut m).unwrap();
        let truth = m
            .registry()
            .value(&q_key(), &NtString::from("AppInit_DLLs"))
            .unwrap()
            .data
            .to_display_string();
        assert!(truth.contains("msvsres.dll") && truth.contains("kbddfl.dll"));
    }
}
