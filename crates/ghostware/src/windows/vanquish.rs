//! The Vanquish rootkit.
//!
//! Vanquish "directly modifies the loaded, in-memory API code so that its
//! function is called and then it calls the next OS function" — a call
//! *wrapper*, which (unlike a detour) shows up in call-stack traces
//! (Figure 2). It hides every `*vanquish*` file (Figure 3), hides its
//! service ASEP hook (Figure 4), injects `vanquish.dll` into many processes
//! and blanks the DLL's pathname out of each PEB module list (Figures 5–6).

use crate::filters::hide_names_containing;
use crate::{Ghostware, Infection, Technique};
use strider_hive::ValueData;
use strider_nt_core::{NtPath, NtStatus};
use strider_winapi::{HookScope, HookStyle, Machine, QueryKind};

/// The Vanquish rootkit sample.
#[derive(Debug, Clone)]
pub struct Vanquish {
    /// How many running processes the DLL is injected into (the paper: the
    /// GhostBuster report "contains many such entries").
    pub inject_count: usize,
}

impl Default for Vanquish {
    fn default() -> Self {
        Self { inject_count: 6 }
    }
}

impl Ghostware for Vanquish {
    fn name(&self) -> &str {
        "Vanquish"
    }

    fn infect(&self, machine: &mut Machine) -> Result<Infection, NtStatus> {
        let exe: NtPath = "C:\\windows\\vanquish.exe".parse().expect("static");
        let dll: NtPath = "C:\\windows\\vanquish.dll".parse().expect("static");
        let log: NtPath = "C:\\vanquish.log".parse().expect("static");
        machine.native_create_file(&exe, b"MZ vanquish")?;
        machine.native_create_file(&dll, b"MZ vanquish dll")?;
        machine.native_create_file(&log, b"api hook log")?;

        // Service ASEP hook, hidden below.
        let svc: NtPath = "HKLM\\SYSTEM\\CurrentControlSet\\Services\\Vanquish"
            .parse()
            .expect("static");
        machine
            .registry_mut()
            .create_key(&svc)
            .map_err(|_| NtStatus::ObjectNameNotFound)?;
        machine
            .registry_mut()
            .set_value(
                &svc,
                "ImagePath",
                ValueData::sz("C:\\windows\\vanquish.exe"),
            )
            .map_err(|_| NtStatus::ObjectNameNotFound)?;

        // In-memory wrapper on the Win32 API code: files, registry keys and
        // values — anything matching *vanquish*.
        machine.install_win32_code_hook(
            "Vanquish",
            vec![QueryKind::Files, QueryKind::RegKeys, QueryKind::RegValues],
            HookScope::All,
            HookStyle::Wrapper,
            hide_names_containing(&["vanquish"]),
        );

        // Inject the DLL into running processes and blank its PEB entry.
        let mut injected = 0usize;
        let targets: Vec<_> = machine
            .kernel()
            .active_process_list()
            .into_iter()
            .filter(|&pid| {
                machine
                    .kernel()
                    .process(pid)
                    .is_some_and(|p| p.image_name.to_win32_lossy() != "System")
            })
            .take(self.inject_count)
            .collect();
        for pid in targets {
            machine
                .kernel_mut()
                .load_module(pid, "vanquish.dll", "C:\\windows\\vanquish.dll")
                .map_err(|_| NtStatus::NoSuchProcess)?;
            machine
                .kernel_mut()
                .blank_peb_module_path(pid, "vanquish.dll")
                .map_err(|_| NtStatus::NoSuchProcess)?;
            injected += 1;
        }

        let mut infection = Infection::new("Vanquish");
        infection.techniques = vec![Technique::InlineWrapper, Technique::PebBlanking];
        infection.hidden_files = vec![exe, dll, log];
        infection.hidden_asep_entries.push("Vanquish".to_string());
        infection
            .hidden_module_names
            .extend(std::iter::repeat_n("vanquish.dll".to_string(), injected));
        Ok(infection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_nt_core::NtString;
    use strider_winapi::{ChainEntry, Query, Row};

    #[test]
    fn files_hidden_from_win32_and_native() {
        // A wrapper on Win32 code affects Win32 callers; native callers
        // entering at NtDll bypass it.
        let mut m = Machine::with_base_system("t").unwrap();
        Vanquish::default().infect(&mut m).unwrap();
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let q = Query::DirectoryEnum {
            path: "C:\\windows".parse().unwrap(),
        };
        let win32 = m.query(&ctx, &q, ChainEntry::Win32).unwrap();
        assert!(!win32
            .iter()
            .any(|r| r.name().to_win32_lossy().contains("vanquish")));
        let native = m.query(&ctx, &q, ChainEntry::Native).unwrap();
        assert!(native
            .iter()
            .any(|r| r.name().to_win32_lossy().contains("vanquish")));
    }

    #[test]
    fn service_key_hidden_from_key_enumeration() {
        let mut m = Machine::with_base_system("t").unwrap();
        Vanquish::default().infect(&mut m).unwrap();
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let q = Query::RegEnumKeys {
            key: "HKLM\\SYSTEM\\CurrentControlSet\\Services".parse().unwrap(),
        };
        let rows = m.query(&ctx, &q, ChainEntry::Win32).unwrap();
        assert!(!rows.iter().any(|r| r.name().to_win32_lossy() == "Vanquish"));
        // Truth: the key exists.
        assert!(m.registry().key_exists(
            &"HKLM\\SYSTEM\\CurrentControlSet\\Services\\Vanquish"
                .parse()
                .unwrap()
        ));
    }

    #[test]
    fn wrapper_appears_in_call_stack_trace_unlike_hxdef_detour() {
        // Figure 2's visibility note: Vanquish's wrapper shows in a stack
        // trace; Hacker Defender's detour does not.
        let mut m = Machine::with_base_system("t").unwrap();
        Vanquish::default().infect(&mut m).unwrap();
        crate::HackerDefender::default().infect(&mut m).unwrap();
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let trace = m.stack_trace(&ctx, strider_winapi::QueryKind::Files);
        assert!(trace.iter().any(|f| f.contains("Vanquish")), "{trace:?}");
        assert!(
            !trace.iter().any(|f| f.contains("HackerDefender")),
            "{trace:?}"
        );
    }

    #[test]
    fn dll_injected_and_blanked_in_many_processes() {
        let mut m = Machine::with_base_system("t").unwrap();
        let inf = Vanquish::default().infect(&mut m).unwrap();
        assert_eq!(inf.hidden_module_names.len(), 6);
        let needle = NtString::from("vanquish.dll");
        let mut kernel_truth = 0;
        let mut peb_visible = 0;
        for p in m.kernel().processes() {
            if p.kernel_module(&needle).is_some() {
                kernel_truth += 1;
            }
            if p.peb_module(&needle).is_some() {
                peb_visible += 1;
            }
        }
        assert_eq!(kernel_truth, 6);
        assert_eq!(peb_visible, 0, "PEB entries blanked");
        // Win32 module enumeration shows nothing.
        let pid = m
            .kernel()
            .processes()
            .find(|p| p.kernel_module(&needle).is_some())
            .unwrap()
            .pid;
        let ctx = m.context_for(pid).unwrap();
        let rows = m
            .query(&ctx, &Query::ModuleList { pid }, ChainEntry::Win32)
            .unwrap();
        assert!(!rows.iter().any(|r| match r {
            Row::Module(mr) => mr.name.to_win32_lossy().contains("vanquish"),
            _ => false,
        }));
    }
}
