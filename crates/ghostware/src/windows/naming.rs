//! The naming-asymmetry hider: no interception at all.
//!
//! "Another form of file hiding exploits the restrictions on filenames
//! enforced by some Win32 API, but not the NTFS file system … long full
//! pathnames, filenames with trailing dots or spaces, filenames containing
//! special characters, reserved filenames" (paper, Section 2) — plus the
//! Registry variant: value names with embedded `NUL`s created through the
//! native API (Section 3). A mechanism-targeting detector finds nothing to
//! detect here; the cross-view diff still does.

use crate::{static_path, Ghostware, Infection, Technique};
use strider_hive::{Value, ValueData};
use strider_nt_core::{NtPath, NtStatus, NtString};
use strider_winapi::Machine;

/// A sample that hides purely through Win32/native naming asymmetries.
#[derive(Debug, Clone, Default)]
pub struct NamingTrick;

impl Ghostware for NamingTrick {
    fn name(&self) -> &str {
        "NamingTrick"
    }

    fn infect(&self, machine: &mut Machine) -> Result<Infection, NtStatus> {
        let mut hidden = Vec::new();

        // Trailing dot.
        let dot = static_path("C:\\windows\\system32\\svchost.exe.");
        machine.native_create_file(&dot, b"MZ payload")?;
        hidden.push(dot);

        // Trailing space.
        let space = NtPath::root_of("C:").join("windows").join("update ");
        machine.native_create_file(&space, b"MZ payload")?;
        hidden.push(space);

        // Reserved device name.
        let reserved = static_path("C:\\temp\\nul.cfg");
        machine.native_create_file(&reserved, b"config")?;
        hidden.push(reserved);

        // A path beyond MAX_PATH.
        let mut deep = NtPath::root_of("C:").join("temp");
        for i in 0..16 {
            deep = deep.join(format!("very-long-directory-name-{i:02}"));
            machine
                .volume_mut()
                .mkdir_p(&deep)
                .map_err(|_| NtStatus::ObjectPathNotFound)?;
        }
        let deep_file = deep.join("payload.bin");
        machine.native_create_file(&deep_file, b"MZ deep")?;
        hidden.push(deep_file);

        // Registry value with an embedded NUL in its counted name.
        let run = static_path("HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run");
        let mut units: Vec<u16> = "loader".encode_utf16().collect();
        units.push(0);
        units.extend("x".encode_utf16());
        let sneaky = NtString::from_units(&units);
        machine
            .registry_mut()
            .set_value_raw(
                &run,
                Value::new(sneaky, ValueData::sz("C:\\windows\\update \\run.exe")),
            )
            .map_err(|_| NtStatus::ObjectNameNotFound)?;

        let mut infection = Infection::new("NamingTrick");
        infection.techniques = vec![Technique::NamingAsymmetry];
        infection.hidden_files = hidden;
        infection
            .hidden_asep_entries
            .push("loader\\0x (NUL-embedded Run value)".to_string());
        Ok(infection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_winapi::{ChainEntry, Query};

    #[test]
    fn no_hooks_installed_yet_files_hidden_from_win32() {
        let mut m = Machine::with_base_system("t").unwrap();
        let inf = NamingTrick.infect(&mut m).unwrap();
        assert!(m.hooks().hooks().is_empty());
        assert_eq!(inf.hidden_files.len(), 4);
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let rows = m
            .query(
                &ctx,
                &Query::DirectoryEnum {
                    path: "C:\\windows\\system32".parse().unwrap(),
                },
                ChainEntry::Win32,
            )
            .unwrap();
        assert!(!rows
            .iter()
            .any(|r| r.name().to_win32_lossy() == "svchost.exe."));
        // The native view shows it.
        let rows = m
            .query(
                &ctx,
                &Query::DirectoryEnum {
                    path: "C:\\windows\\system32".parse().unwrap(),
                },
                ChainEntry::Native,
            )
            .unwrap();
        assert!(rows
            .iter()
            .any(|r| r.name().to_win32_lossy() == "svchost.exe."));
    }

    #[test]
    fn deep_path_hidden_by_max_path() {
        let mut m = Machine::with_base_system("t").unwrap();
        let inf = NamingTrick.infect(&mut m).unwrap();
        let deep = inf
            .hidden_files
            .iter()
            .find(|p| p.to_string().contains("very-long"))
            .unwrap();
        assert!(deep.char_len() > strider_nt_core::NtPath::root_of("C:").char_len());
        assert!(!deep.is_win32_visible());
        assert!(m.volume().exists(deep));
    }
}
