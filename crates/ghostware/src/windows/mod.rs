//! The Windows sample implementations, one module per family.

pub mod ads;
pub mod aphex;
pub mod berbew;
pub mod filehiders;
pub mod fu;
pub mod hxdef;
pub mod iat_trojans;
pub mod naming;
pub mod probot;
pub mod vanquish;
