//! Scan-aware evasive ghostware: the adversary side of the arms race.
//!
//! The paper's countermeasures discussion (Section 7) anticipates ghostware
//! that adapts to the scanner instead of lying uniformly: unhide while the
//! low-level scan is reading the raw volume, re-hook once the sweep's
//! enumeration burst has passed, or hide a randomized subset of resources
//! per query so no single cross-view diff sees a stable lie. Herzog et
//! al.'s evasive-malware catalog (PAPERS.md) documents the same sensor
//! suite in the wild: scanner-process detection, read-pattern detection,
//! timing checks.
//!
//! [`EvasiveGhostware`] is a rootkit whose *hiding is a function of the
//! scan observations* flowing through the machine's [`ScanTap`]. It drops
//! a file pair, a Run-key ASEP entry, and a process, and installs one
//! NtDll detour whose filter consults the tap on every call and applies
//! the configured [`EvasiveTactic`]:
//!
//! - [`EvasiveTactic::UnhideDuringLowScan`] — raw-read sensing. The
//!   rootkit hides by default but tells the truth for `window` queries
//!   after every raw volume/hive/dump read, so the high view matches the
//!   low view exactly when the detector compares them.
//! - [`EvasiveTactic::RehookAfterSweep`] — burst sensing. A run of
//!   `burst` consecutive file/Registry enumeration queries is the
//!   fingerprint of a bulk scan; the rootkit drops its lies while the
//!   burst lasts and re-hooks `rehook_after` queries after it breaks.
//! - [`EvasiveTactic::FlickerHiding`] — seeded per-query flicker. Each
//!   hidden resource stays visible for its first `grace` appearances,
//!   then vanishes on a seeded coin flip per appearance — a different
//!   subset of lies on every pass, which no single-pass (and no
//!   two-passes-agree) diff pins down.
//!
//! The tactics only see what real ghostware could see: the in-box query
//! stream and raw-read activity. Outside-the-box disk capture
//! (`Machine::snapshot_disk`) is invisible to the tap by construction,
//! which is why the paper's outside scan stays undefeatable — the matrix
//! in `tests/evasion_matrix.rs` asserts exactly that.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::{static_path, Ghostware, Infection, Technique};
use strider_hive::ValueData;
use strider_nt_core::{NtPath, NtStatus};
use strider_support::rng::{fnv1a, SplitMix64};
use strider_winapi::{
    CallContext, HookScope, Machine, Query, QueryFilter, QueryKind, Row, ScanTap,
};

/// How an [`EvasiveGhostware`] reacts to sensed scan activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvasiveTactic {
    /// Tell the truth for `window` queries after every raw truth-source
    /// read, so low-level scans see exactly what the (momentarily honest)
    /// high-level view shows.
    UnhideDuringLowScan {
        /// Queries of honesty after each raw read; must cover a scan pass.
        window: u64,
    },
    /// Drop all lies while a bulk-enumeration burst is in flight and for
    /// `rehook_after` further queries, then re-install them.
    RehookAfterSweep {
        /// Consecutive file/Registry enumeration queries that count as a
        /// scan burst.
        burst: u64,
        /// How many queries after the burst breaks before lying resumes.
        rehook_after: u64,
    },
    /// Hide a seeded pseudo-random subset of resources per query: each
    /// hidden resource is visible for its first `grace` appearances, then
    /// flips a per-appearance coin (probability ½) derived from `seed`.
    FlickerHiding {
        /// Seed for the per-(resource, appearance) coin.
        seed: u64,
        /// Appearances that stay visible before flickering starts — long
        /// enough to outlast a stabilized naive sweep.
        grace: u64,
    },
}

impl std::fmt::Display for EvasiveTactic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnhideDuringLowScan { window } => {
                write!(f, "unhide-during-low-scan(window={window})")
            }
            Self::RehookAfterSweep {
                burst,
                rehook_after,
            } => write!(f, "rehook-after-sweep(burst={burst}, after={rehook_after})"),
            Self::FlickerHiding { seed, grace } => {
                write!(f, "flicker-hiding(seed={seed}, grace={grace})")
            }
        }
    }
}

/// A snapshot of what the rootkit's sensors have observed so far —
/// useful for asserting that evasion actually engaged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvasionSense {
    /// Filter invocations (queries of the hooked kinds) observed.
    pub queries_observed: u64,
    /// Times a bulk-enumeration burst was first sensed.
    pub bursts_sensed: u64,
    /// Filter calls answered honestly (lies suspended).
    pub honest_calls: u64,
    /// Filter calls answered with hiding active.
    pub lying_calls: u64,
    /// Individual row suppressions by the flicker coin.
    pub flicker_hides: u64,
    /// Whether a scanner-named process was seen among recent callers.
    pub scanner_seen: bool,
}

#[derive(Debug, Default)]
struct EvasionState {
    sense: EvasionSense,
    /// Query index at the most recent sensed burst (RehookAfterSweep).
    last_burst_at: Option<u64>,
    /// Per-resource appearance counters (FlickerHiding).
    appearances: BTreeMap<String, u64>,
}

/// A rootkit that senses scans through the machine's [`ScanTap`] and
/// adapts its hiding with a configurable, seeded [`EvasiveTactic`].
///
/// Payload: `<stem>32.exe` + `<stem>.cfg` in `system32`, a Run-key value
/// named `<stem>`, and a `<stem>32.exe` process — all hidden (subject to
/// the tactic) by one NtDll detour over file, process, and Registry
/// queries.
#[derive(Debug, Clone)]
pub struct EvasiveGhostware {
    /// The reaction tactic.
    pub tactic: EvasiveTactic,
    /// Name stem for the dropped artifacts (default `"evader"`).
    pub stem: String,
    name: String,
    state: Arc<Mutex<EvasionState>>,
}

impl EvasiveGhostware {
    /// Creates the sample with the default `"evader"` artifact stem.
    pub fn new(tactic: EvasiveTactic) -> Self {
        Self {
            tactic,
            stem: "evader".to_string(),
            name: format!("Evasive({tactic})"),
            state: Arc::new(Mutex::new(EvasionState::default())),
        }
    }

    /// What the rootkit's sensors have observed since infection.
    pub fn sense(&self) -> EvasionSense {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .sense
            .clone()
    }

    fn filter(&self, tap: ScanTap) -> Arc<dyn QueryFilter> {
        let tactic = self.tactic;
        let stem = self.stem.to_ascii_lowercase();
        let state = Arc::clone(&self.state);
        Arc::new(move |_: &CallContext, _: &Query, rows: Vec<Row>| {
            let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
            st.sense.queries_observed += 1;
            if !st.sense.scanner_seen {
                st.sense.scanner_seen = tap.saw_caller("ghostbuster");
            }
            match tactic {
                EvasiveTactic::UnhideDuringLowScan { window } => {
                    let honest = tap.queries_since_raw_read().is_some_and(|d| d < window);
                    if honest {
                        st.sense.honest_calls += 1;
                        rows
                    } else {
                        st.sense.lying_calls += 1;
                        hide_rows(rows, &stem)
                    }
                }
                EvasiveTactic::RehookAfterSweep {
                    burst,
                    rehook_after,
                } => {
                    let (kind, run) = tap.current_run();
                    let enumerating = matches!(
                        kind,
                        Some(QueryKind::Files | QueryKind::RegKeys | QueryKind::RegValues)
                    );
                    if enumerating && run >= burst {
                        if run == burst {
                            st.sense.bursts_sensed += 1;
                        }
                        st.last_burst_at = Some(tap.queries());
                    }
                    let honest = st
                        .last_burst_at
                        .is_some_and(|at| tap.queries().saturating_sub(at) <= rehook_after);
                    if honest {
                        st.sense.honest_calls += 1;
                        rows
                    } else {
                        st.sense.lying_calls += 1;
                        hide_rows(rows, &stem)
                    }
                }
                EvasiveTactic::FlickerHiding { seed, grace } => {
                    st.sense.lying_calls += 1;
                    let mut kept = Vec::with_capacity(rows.len());
                    for row in rows {
                        let name = row.name().to_win32_lossy().to_ascii_lowercase();
                        if !name.contains(&stem) {
                            kept.push(row);
                            continue;
                        }
                        let n = st.appearances.entry(name.clone()).or_insert(0);
                        *n += 1;
                        let appearance = *n;
                        let visible = appearance <= grace || {
                            let mut coin = SplitMix64::seed_from_u64(
                                seed ^ fnv1a(name.as_bytes()) ^ appearance,
                            );
                            !coin.chance(1, 2)
                        };
                        if visible {
                            kept.push(row);
                        } else {
                            st.sense.flicker_hides += 1;
                        }
                    }
                    kept
                }
            }
        })
    }
}

/// Drops rows whose name contains `stem` (the unconditional lie the
/// tactics gate).
fn hide_rows(rows: Vec<Row>, stem: &str) -> Vec<Row> {
    rows.into_iter()
        .filter(|r| {
            !r.name()
                .to_win32_lossy()
                .to_ascii_lowercase()
                .contains(stem)
        })
        .collect()
}

impl Ghostware for EvasiveGhostware {
    fn name(&self) -> &str {
        &self.name
    }

    fn infect(&self, machine: &mut Machine) -> Result<Infection, NtStatus> {
        let stem = &self.stem;
        let exe: NtPath = format!("C:\\windows\\system32\\{stem}32.exe")
            .parse()
            .map_err(|_| NtStatus::ObjectNameInvalid)?;
        let cfg: NtPath = format!("C:\\windows\\system32\\{stem}.cfg")
            .parse()
            .map_err(|_| NtStatus::ObjectNameInvalid)?;
        machine.native_create_file(&exe, b"MZ evader")?;
        machine.native_create_file(&cfg, b"tactic config")?;

        let run = static_path("HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run");
        machine
            .registry_mut()
            .set_value(&run, stem.as_str(), ValueData::sz(exe.to_string().as_str()))
            .map_err(|_| NtStatus::ObjectNameNotFound)?;

        let proc_name = format!("{stem}32.exe");
        machine.spawn_process(&proc_name, &exe.to_string())?;

        // The sensor: a clone handle onto the machine's scan tap, captured
        // by the detour filter below. This is the whole arms race — the
        // lie becomes a function of observed scan activity.
        let tap = machine.scan_tap();
        machine.install_ntdll_hook(
            "Evasive",
            vec![
                QueryKind::Files,
                QueryKind::Processes,
                QueryKind::RegKeys,
                QueryKind::RegValues,
            ],
            HookScope::All,
            self.filter(tap),
        );

        let mut infection = Infection::new(&self.name);
        infection.techniques = vec![Technique::DetourNtdll];
        infection.hidden_files = vec![exe, cfg];
        infection.hidden_asep_entries = vec![stem.clone()];
        infection.hidden_process_names = vec![proc_name];
        infection
            .visible_artifacts
            .push(format!("adaptive hiding: {}", self.tactic));
        Ok(infection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_winapi::ChainEntry;

    fn sees_file(m: &Machine) -> bool {
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let q = Query::DirectoryEnum {
            path: "C:\\windows\\system32".parse().unwrap(),
        };
        m.query(&ctx, &q, ChainEntry::Win32)
            .unwrap()
            .iter()
            .any(|r| r.name().to_win32_lossy().contains("evader"))
    }

    #[test]
    fn unhide_during_low_scan_tracks_raw_reads() {
        let mut m = Machine::with_base_system("t").unwrap();
        let gw = EvasiveGhostware::new(EvasiveTactic::UnhideDuringLowScan { window: 4 });
        gw.infect(&mut m).unwrap();
        assert!(!sees_file(&m), "hidden before any raw read");
        let _ = m.read_raw_volume_image();
        assert!(sees_file(&m), "honest right after a raw read");
        // Burn through the honesty window with unrelated queries.
        let ctx = m.context_for_name("explorer.exe").unwrap();
        for _ in 0..8 {
            let _ = m.query(&ctx, &Query::ProcessList, ChainEntry::Win32);
        }
        assert!(!sees_file(&m), "hidden again once the window expires");
        let s = gw.sense();
        assert!(s.honest_calls > 0 && s.lying_calls > 0);
    }

    #[test]
    fn rehook_after_sweep_senses_enumeration_bursts() {
        let mut m = Machine::with_base_system("t").unwrap();
        let gw = EvasiveGhostware::new(EvasiveTactic::RehookAfterSweep {
            burst: 3,
            rehook_after: 5,
        });
        gw.infect(&mut m).unwrap();
        assert!(!sees_file(&m), "hidden before any burst");
        // Drive a directory-enumeration burst past the threshold.
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let enum_q = Query::DirectoryEnum {
            path: "C:\\windows".parse().unwrap(),
        };
        for _ in 0..4 {
            let _ = m.query(&ctx, &enum_q, ChainEntry::Win32);
        }
        assert!(sees_file(&m), "honest while the burst window holds");
        assert_eq!(gw.sense().bursts_sensed, 1);
        // Let the burst age out: non-enumeration queries past rehook_after.
        for _ in 0..8 {
            let _ = m.query(&ctx, &Query::ProcessList, ChainEntry::Win32);
        }
        assert!(!sees_file(&m), "re-hooked after the quiet period");
    }

    #[test]
    fn flicker_hiding_is_seed_deterministic() {
        let run = |seed| {
            let mut m = Machine::with_base_system("t").unwrap();
            let gw = EvasiveGhostware::new(EvasiveTactic::FlickerHiding { seed, grace: 2 });
            gw.infect(&mut m).unwrap();
            let visible: Vec<bool> = (0..32).map(|_| sees_file(&m)).collect();
            (visible, gw.sense().flicker_hides)
        };
        let (a, hides_a) = run(7);
        let (b, _) = run(7);
        assert_eq!(a, b, "equal seeds flicker identically");
        assert!(a[..2].iter().all(|&v| v), "grace appearances stay visible");
        assert!(a.iter().any(|&v| !v), "flickers after grace");
        assert!(a.iter().skip(2).any(|&v| v), "but not hidden constantly");
        assert!(hides_a > 0);
        let (c, _) = run(8);
        assert_ne!(a, c, "different seeds flicker differently");
    }
}
