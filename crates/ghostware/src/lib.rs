//! Reimplementations of the paper's ghostware corpus.
//!
//! Figure 2 of the paper maps ten file-hiding programs onto six interception
//! techniques; Figure 5 maps four process-hiding programs onto three more.
//! Each sample here installs the same artifacts the paper reports for it
//! (files, ASEP hooks, processes, drivers) and hides them with the same
//! technique at the same chain level:
//!
//! | Sample | Technique | Level |
//! |---|---|---|
//! | [`Urbin`], [`Mersting`] | IAT patch | per-process import tables |
//! | [`Vanquish`] | in-memory code **wrapper** + PEB blanking | Kernel32/Advapi32 |
//! | [`Aphex`] | in-memory code **detour** (files), IAT (processes) | Kernel32 / IAT |
//! | [`HackerDefender`] | in-memory detour | NtDll |
//! | [`ProBotSe`] | Service Dispatch Table patch | SSDT |
//! | [`FileHider`] ×4 | filter driver | I/O stack |
//! | [`Berbew`] | in-memory detour (processes) | NtDll |
//! | [`Fu`] | DKOM — Active Process List unlink | kernel objects |
//! | [`NamingTrick`] | Win32/NTFS naming asymmetry | no interception at all |
//!
//! Every [`Ghostware::infect`] returns an [`Infection`] listing the ground
//! truth — which artifacts are now hidden — so tests and benches can verify
//! that GhostBuster's reports are exactly complete.
//!
//! The [`unix`] module carries the Section 5 rootkits (Darkside, Superkit,
//! Synapsis, T0rnkit) for the `strider-unixfs` substrate, and [`targeted`]
//! carries the Section 5 targeting attacks (hide only from specific
//! utilities; hide from everything except a known scanner).
//!
//! # Examples
//!
//! ```
//! use strider_ghostware::{Ghostware, HackerDefender};
//! use strider_winapi::{Machine, Query, ChainEntry};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = Machine::with_base_system("victim")?;
//! let infection = HackerDefender::default().infect(&mut m)?;
//! assert!(!infection.hidden_files.is_empty());
//! // The lie: hxdef100.exe does not appear in a Win32 directory listing.
//! let ctx = m.context_for_name("explorer.exe").unwrap();
//! let rows = m.query(&ctx, &Query::DirectoryEnum {
//!     path: "C:\\windows\\system32".parse()? }, ChainEntry::Win32)?;
//! assert!(!rows.iter().any(|r| r.name().to_win32_lossy().contains("hxdef")));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evasive;
pub mod filters;
pub mod targeted;
pub mod unix;
mod windows;

pub use evasive::{EvasionSense, EvasiveGhostware, EvasiveTactic};
pub use windows::ads::AdsHider;
pub use windows::aphex::Aphex;
pub use windows::berbew::Berbew;
pub use windows::filehiders::FileHider;
pub use windows::fu::Fu;
pub use windows::hxdef::HackerDefender;
pub use windows::iat_trojans::{Mersting, Urbin};
pub use windows::naming::NamingTrick;
pub use windows::probot::ProBotSe;
pub use windows::vanquish::Vanquish;

use std::fmt;
use strider_nt_core::{NtPath, NtStatus};
use strider_winapi::Machine;

/// The interception/hiding technique a sample uses (Figures 2 and 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Per-process Import Address Table patching.
    IatPatch,
    /// In-memory API code replaced with a call wrapper.
    InlineWrapper,
    /// In-memory Kernel32 code detour.
    DetourKernel32,
    /// In-memory NtDll code detour.
    DetourNtdll,
    /// Service Dispatch Table entry replacement.
    SsdtHook,
    /// Filesystem filter driver.
    FilterDriver,
    /// Direct Kernel Object Manipulation (APL unlink).
    Dkom,
    /// PEB loader-list doctoring.
    PebBlanking,
    /// Win32/native naming-rule asymmetry (no interception).
    NamingAsymmetry,
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Technique::IatPatch => "IAT patch",
            Technique::InlineWrapper => "inline wrapper",
            Technique::DetourKernel32 => "Kernel32 detour",
            Technique::DetourNtdll => "NtDll detour",
            Technique::SsdtHook => "SSDT hook",
            Technique::FilterDriver => "filter driver",
            Technique::Dkom => "DKOM",
            Technique::PebBlanking => "PEB blanking",
            Technique::NamingAsymmetry => "naming asymmetry",
        };
        f.write_str(s)
    }
}

/// Ground truth recorded at infection time: exactly which artifacts the
/// sample hid. Benches compare GhostBuster's reports against these lists to
/// regenerate the paper's Figures 3, 4 and 6.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Infection {
    /// The sample's name.
    pub ghostware: String,
    /// The techniques in play.
    pub techniques: Vec<Technique>,
    /// Files hidden from high-level enumeration.
    pub hidden_files: Vec<NtPath>,
    /// ASEP hook entry names hidden from high-level Registry scans.
    pub hidden_asep_entries: Vec<String>,
    /// Image names of processes hidden from high-level process lists.
    pub hidden_process_names: Vec<String>,
    /// Module names hidden from high-level module enumeration.
    pub hidden_module_names: Vec<String>,
    /// Artifacts the sample leaves visible (e.g. Hacker Defender's driver
    /// in the loaded-driver list, which AskStrider exploits).
    pub visible_artifacts: Vec<String>,
}

impl Infection {
    /// Creates an empty infection record for `name`.
    pub fn new(name: &str) -> Self {
        Self {
            ghostware: name.to_string(),
            ..Self::default()
        }
    }

    /// Whether the sample hides anything at all.
    pub fn hides_something(&self) -> bool {
        !self.hidden_files.is_empty()
            || !self.hidden_asep_entries.is_empty()
            || !self.hidden_process_names.is_empty()
            || !self.hidden_module_names.is_empty()
    }
}

/// A ghostware sample that can infect a simulated machine.
pub trait Ghostware {
    /// The sample's name as used in the paper.
    fn name(&self) -> &str;

    /// Installs the sample: drops files, sets ASEP hooks, spawns processes,
    /// loads drivers, and installs its hiding mechanism.
    ///
    /// # Errors
    ///
    /// Propagates substrate failures (e.g. dropping a file whose parent
    /// directory is missing on a non-standard machine).
    fn infect(&self, machine: &mut Machine) -> Result<Infection, NtStatus>;
}

/// Parses a compile-time path literal. Every sample drops artifacts at
/// hard-coded paths; when one of those literals is malformed the panic
/// must name *which* literal, not just say "static" — so all static
/// parses route through here.
pub(crate) fn static_path(literal: &str) -> NtPath {
    literal
        .parse()
        .unwrap_or_else(|e| panic!("static path literal {literal:?} failed to parse: {e:?}"))
}

/// Instantiates the full Figure 3 corpus: the ten file-hiding programs in
/// paper order.
pub fn file_hiding_corpus() -> Vec<Box<dyn Ghostware>> {
    vec![
        Box::new(Urbin),
        Box::new(Mersting),
        Box::new(Vanquish::default()),
        Box::new(Aphex::default()),
        Box::new(HackerDefender::default()),
        Box::new(ProBotSe::default()),
        Box::new(FileHider::hide_files_33()),
        Box::new(FileHider::hide_folders_xp()),
        Box::new(FileHider::advanced_hide_folders()),
        Box::new(FileHider::file_folder_protector()),
    ]
}

/// Instantiates the Figure 4 corpus: the six Registry-hiding programs.
pub fn registry_hiding_corpus() -> Vec<Box<dyn Ghostware>> {
    vec![
        Box::new(Urbin),
        Box::new(Mersting),
        Box::new(Vanquish::default()),
        Box::new(Aphex::default()),
        Box::new(HackerDefender::default()),
        Box::new(ProBotSe::default()),
    ]
}

/// Instantiates the Figure 6 corpus: the four process-hiding programs plus
/// the module-hiding Vanquish.
pub fn process_hiding_corpus() -> Vec<Box<dyn Ghostware>> {
    vec![
        Box::new(Aphex::default()),
        Box::new(HackerDefender::default()),
        Box::new(Berbew::default()),
        Box::new(Fu::default()),
        Box::new(Vanquish::default()),
    ]
}

/// Convenient re-exports.
pub mod prelude {
    pub use crate::evasive::{EvasionSense, EvasiveGhostware, EvasiveTactic};
    pub use crate::targeted::{ScannerAwareHider, UtilityTargetedHider};
    pub use crate::unix::{Darkside, Superkit, Synapsis, T0rnkit, UnixInfection, UnixRootkit};
    pub use crate::{
        file_hiding_corpus, process_hiding_corpus, registry_hiding_corpus, AdsHider, Aphex, Berbew,
        FileHider, Fu, Ghostware, HackerDefender, Infection, Mersting, NamingTrick, ProBotSe,
        Technique, Urbin, Vanquish,
    };
}
