//! MFT file records and their attributes.

use std::fmt;
use strider_nt_core::{FileRecordNumber, NtString, Tick};

/// DOS-style file attribute flags stored in a record's standard information.
///
/// A `u32` newtype mirroring the on-disk `FILE_ATTRIBUTE_*` bits. Note that
/// [`FileAttributes::HIDDEN`] is the *benign* attribute honored by plain
/// `dir`; ghostware hiding is interception, not this flag, and GhostBuster's
/// high-level scan enumerates hidden-attribute files normally (`dir /a`).
///
/// # Examples
///
/// ```
/// use strider_ntfs::FileAttributes;
///
/// let a = FileAttributes::HIDDEN | FileAttributes::SYSTEM;
/// assert!(a.contains(FileAttributes::HIDDEN));
/// assert!(!a.contains(FileAttributes::READ_ONLY));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FileAttributes(pub u32);

impl FileAttributes {
    /// No attributes set.
    pub const NORMAL: FileAttributes = FileAttributes(0);
    /// `FILE_ATTRIBUTE_READONLY`.
    pub const READ_ONLY: FileAttributes = FileAttributes(0x0001);
    /// `FILE_ATTRIBUTE_HIDDEN` — skipped by plain `dir`, shown by `dir /a`.
    pub const HIDDEN: FileAttributes = FileAttributes(0x0002);
    /// `FILE_ATTRIBUTE_SYSTEM`.
    pub const SYSTEM: FileAttributes = FileAttributes(0x0004);
    /// `FILE_ATTRIBUTE_DIRECTORY`.
    pub const DIRECTORY: FileAttributes = FileAttributes(0x0010);

    /// Whether every bit of `other` is set in `self`.
    pub fn contains(self, other: FileAttributes) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `self` with the bits of `other` added.
    pub fn with(self, other: FileAttributes) -> FileAttributes {
        FileAttributes(self.0 | other.0)
    }
}

impl std::ops::BitOr for FileAttributes {
    type Output = FileAttributes;

    fn bitor(self, rhs: FileAttributes) -> FileAttributes {
        self.with(rhs)
    }
}

impl fmt::Display for FileAttributes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        for (bit, tag) in [
            (FileAttributes::READ_ONLY, "R"),
            (FileAttributes::HIDDEN, "H"),
            (FileAttributes::SYSTEM, "S"),
            (FileAttributes::DIRECTORY, "D"),
        ] {
            if self.contains(bit) {
                parts.push(tag);
            }
        }
        if parts.is_empty() {
            write!(f, "-")
        } else {
            write!(f, "{}", parts.concat())
        }
    }
}

/// The `$STANDARD_INFORMATION` attribute: timestamps and attribute flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StandardInformation {
    /// Creation time.
    pub created: Tick,
    /// Last modification time.
    pub modified: Tick,
    /// DOS attribute flags.
    pub attributes: FileAttributes,
}

impl StandardInformation {
    /// Standard information for an object created at `now`.
    pub fn at(now: Tick, attributes: FileAttributes) -> Self {
        Self {
            created: now,
            modified: now,
            attributes,
        }
    }
}

/// A `$DATA` attribute: the unnamed main stream or a named alternate data
/// stream (ADS).
///
/// Alternate data streams are one of the "beyond ghostware" hiding places the
/// paper's conclusion lists; the low-level scan reports them so the detector
/// can flag streams the high-level enumeration never shows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataStream {
    /// `None` for the unnamed main stream, `Some(name)` for an ADS.
    pub name: Option<NtString>,
    /// Stream contents.
    pub data: Vec<u8>,
}

impl DataStream {
    /// The unnamed main data stream.
    pub fn unnamed(data: impl Into<Vec<u8>>) -> Self {
        Self {
            name: None,
            data: data.into(),
        }
    }

    /// A named alternate data stream.
    pub fn named(name: impl Into<NtString>, data: impl Into<Vec<u8>>) -> Self {
        Self {
            name: Some(name.into()),
            data: data.into(),
        }
    }

    /// Stream length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// One Master File Table record: a file or directory.
///
/// Fields follow the real MFT record layout in spirit: an in-use flag with a
/// sequence number (records are reused), standard information, a file-name
/// attribute holding the name *and the parent directory reference* — which is
/// what lets an offline parser rebuild the whole tree — and the data streams.
/// Directories additionally keep an index of children, used by the live
/// driver for lookups but deliberately **not** serialized to the raw image.
#[derive(Debug, Clone, PartialEq)]
pub struct FileRecord {
    /// This record's number (its index in the MFT).
    pub number: FileRecordNumber,
    /// Incremented every time the record slot is reused.
    pub sequence: u16,
    /// Standard information attribute.
    pub std_info: StandardInformation,
    /// File name and parent reference. The root directory has itself as
    /// parent, mirroring the real root's self-reference.
    pub name: NtString,
    /// Parent directory record number.
    pub parent: FileRecordNumber,
    /// Data streams; empty for directories.
    pub streams: Vec<DataStream>,
    /// Child record numbers, present only on directories (live index).
    pub children: Vec<FileRecordNumber>,
}

impl FileRecord {
    /// Whether this record describes a directory.
    pub fn is_directory(&self) -> bool {
        self.std_info.attributes.contains(FileAttributes::DIRECTORY)
    }

    /// The unnamed main stream's contents, if present.
    pub fn main_data(&self) -> Option<&[u8]> {
        self.streams
            .iter()
            .find(|s| s.name.is_none())
            .map(|s| s.data.as_slice())
    }

    /// Total bytes across all streams.
    pub fn total_stream_bytes(&self) -> u64 {
        self.streams.iter().map(|s| s.len() as u64).sum()
    }

    /// Names of alternate data streams on this record.
    pub fn ads_names(&self) -> Vec<&NtString> {
        self.streams
            .iter()
            .filter_map(|s| s.name.as_ref())
            .collect()
    }
}

// ---------------------------------------------------------------------
// JSON serialization (see `strider_support::json`, replacing the former
// serde derives)
// ---------------------------------------------------------------------

strider_support::impl_json!(newtype FileAttributes);
strider_support::impl_json!(struct StandardInformation { created, modified, attributes });
strider_support::impl_json!(struct DataStream { name, data });
strider_support::impl_json!(struct FileRecord { number, sequence, std_info, name, parent, streams, children });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_flags() {
        let a = FileAttributes::HIDDEN | FileAttributes::SYSTEM;
        assert!(a.contains(FileAttributes::HIDDEN));
        assert!(a.contains(FileAttributes::SYSTEM));
        assert!(!a.contains(FileAttributes::DIRECTORY));
        assert_eq!(a.to_string(), "HS");
        assert_eq!(FileAttributes::NORMAL.to_string(), "-");
    }

    #[test]
    fn streams() {
        let r = FileRecord {
            number: FileRecordNumber(7),
            sequence: 1,
            std_info: StandardInformation::at(Tick(3), FileAttributes::NORMAL),
            name: NtString::from("a.txt"),
            parent: FileRecordNumber(0),
            streams: vec![
                DataStream::unnamed(b"hello".to_vec()),
                DataStream::named("secret", b"ads!".to_vec()),
            ],
            children: Vec::new(),
        };
        assert_eq!(r.main_data(), Some(&b"hello"[..]));
        assert_eq!(r.total_stream_bytes(), 9);
        assert_eq!(r.ads_names().len(), 1);
        assert!(!r.is_directory());
    }

    #[test]
    fn empty_stream_reports_empty() {
        let s = DataStream::unnamed(Vec::new());
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
