//! Raw volume image: binary serialization and the independent MFT parser.
//!
//! The writer emits one record per MFT slot (free slots included, flagged
//! not-in-use, as on a real volume). Crucially it does **not** emit directory
//! child indexes: the parser reconstructs the tree purely from each record's
//! parent reference, exactly like a forensic MFT sweep. This keeps the
//! low-level scan's code path disjoint from the live driver's lookup path,
//! which is what makes the cross-view diff meaningful.

use crate::record::FileAttributes;
use crate::volume::NtfsVolume;
use std::collections::HashMap;
use std::fmt;
use strider_nt_core::{FileRecordNumber, NtPath, NtString, Tick};
use strider_support::bytes::{Buf, BufMut, Bytes, BytesMut};
use strider_support::fault::{Defect, DefectKind, Salvaged};

const MAGIC: &[u8; 8] = b"SNTFS1\0\0";
const VERSION: u32 = 1;

/// Serializes a live volume to its raw image bytes.
pub(crate) fn write_image(vol: &NtfsVolume) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    let label = vol.label().as_bytes();
    buf.put_u16_le(label.len() as u16);
    buf.put_slice(label);
    buf.put_u64_le(vol.slot_count() as u64);
    for slot in 0..vol.slot_count() {
        match vol.record(FileRecordNumber(slot as u64)) {
            None => buf.put_u8(0),
            Some(rec) => {
                buf.put_u8(1);
                buf.put_u64_le(rec.number.0);
                buf.put_u16_le(rec.sequence);
                buf.put_u64_le(rec.std_info.created.0);
                buf.put_u64_le(rec.std_info.modified.0);
                buf.put_u32_le(rec.std_info.attributes.0);
                buf.put_u64_le(rec.parent.0);
                put_name(&mut buf, &rec.name);
                buf.put_u16_le(rec.streams.len() as u16);
                for s in &rec.streams {
                    match &s.name {
                        None => buf.put_u8(0),
                        Some(n) => {
                            buf.put_u8(1);
                            put_name(&mut buf, n);
                        }
                    }
                    buf.put_u64_le(s.data.len() as u64);
                    buf.put_slice(&s.data);
                }
            }
        }
    }
    buf.to_vec()
}

fn put_name(buf: &mut BytesMut, name: &NtString) {
    buf.put_u16_le(name.len() as u16);
    for &u in name.units() {
        buf.put_u16_le(u);
    }
}

/// Error produced while parsing a raw volume image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The image is shorter than the structure it claims to hold.
    Truncated {
        /// What was being parsed when the bytes ran out.
        context: &'static str,
    },
    /// The magic header is wrong.
    BadMagic,
    /// The format version is unsupported.
    BadVersion(u32),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Truncated { context } => {
                write!(f, "image truncated while reading {context}")
            }
            ImageError::BadMagic => write!(f, "bad image magic"),
            ImageError::BadVersion(v) => write!(f, "unsupported image version {v}"),
        }
    }
}

impl std::error::Error for ImageError {}

/// Maps a strict-parse error to the workspace-wide salvage vocabulary;
/// `offset` is where parsing stood when the damage surfaced and `total` the
/// image length, so `bytes_lost` is the unreadable tail.
fn defect_for(e: &ImageError, offset: u64, total: u64) -> Defect {
    let (kind, context) = match e {
        ImageError::Truncated { context } => (DefectKind::Truncated, *context),
        ImageError::BadMagic => (DefectKind::BadMagic, "image magic"),
        ImageError::BadVersion(_) => (DefectKind::BadVersion, "image version"),
    };
    Defect::new(kind, offset, total.saturating_sub(offset), context)
}

/// One file entry recovered from the raw image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFileEntry {
    /// MFT record number.
    pub number: FileRecordNumber,
    /// Record sequence number.
    pub sequence: u16,
    /// Creation tick.
    pub created: Tick,
    /// Last-modified tick.
    pub modified: Tick,
    /// Attribute flags.
    pub attributes: FileAttributes,
    /// Parent record number.
    pub parent: FileRecordNumber,
    /// The counted name.
    pub name: NtString,
    /// Total data bytes across streams.
    pub data_len: u64,
    /// Names of alternate data streams.
    pub ads_names: Vec<NtString>,
}

impl RawFileEntry {
    /// Whether the entry is a directory.
    pub fn is_directory(&self) -> bool {
        self.attributes.contains(FileAttributes::DIRECTORY)
    }
}

/// A parsed raw volume image: the truth the low-level file scan works from.
///
/// # Examples
///
/// ```
/// use strider_ntfs::{NtfsVolume, VolumeImage};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut vol = NtfsVolume::new("C:");
/// vol.create_file(&"C:\\a.txt".parse()?, b"hi")?;
/// let raw = VolumeImage::parse(&vol.to_image())?;
/// assert_eq!(raw.entries().len(), 2); // root + file
/// assert_eq!(raw.file_paths().len(), 1); // just the file
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VolumeImage {
    label: String,
    entries: Vec<RawFileEntry>,
    image_len: u64,
}

impl VolumeImage {
    /// Parses raw image bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError`] if the bytes are truncated or the header is
    /// not a supported volume image.
    pub fn parse(bytes: &[u8]) -> Result<Self, ImageError> {
        let mut buf = Bytes::copy_from_slice(bytes);
        let image_len = bytes.len() as u64;
        let (label, slot_count) = parse_header(&mut buf)?;
        let mut entries = Vec::new();
        for _ in 0..slot_count {
            if let Some(entry) = parse_entry(&mut buf)? {
                entries.push(entry);
            }
        }
        Ok(Self {
            label,
            entries,
            image_len,
        })
    }

    /// Best-effort parse for damaged images. MFT records are written
    /// back-to-back with no framing, so a record that fails to parse makes
    /// everything after it unaddressable: salvage keeps every entry up to
    /// the damage, records one [`Defect`] locating it and counting the
    /// unreadable tail, and returns. Never panics and never errors; an
    /// image damaged in the header salvages to an empty entry list.
    pub fn parse_salvage(bytes: &[u8]) -> Salvaged<Self> {
        let image_len = bytes.len() as u64;
        let mut buf = Bytes::copy_from_slice(bytes);
        let (label, slot_count) = match parse_header(&mut buf) {
            Ok(header) => header,
            Err(e) => {
                let offset = image_len - buf.remaining() as u64;
                return Salvaged {
                    value: Self {
                        label: String::new(),
                        entries: Vec::new(),
                        image_len,
                    },
                    defects: vec![defect_for(&e, offset, image_len)],
                };
            }
        };
        let mut entries = Vec::new();
        let mut defects = Vec::new();
        for _ in 0..slot_count {
            let offset = image_len - buf.remaining() as u64;
            match parse_entry(&mut buf) {
                Ok(Some(entry)) => entries.push(entry),
                Ok(None) => {}
                Err(e) => {
                    defects.push(defect_for(&e, offset, image_len));
                    break;
                }
            }
        }
        Salvaged {
            value: Self {
                label,
                entries,
                image_len,
            },
            defects,
        }
    }

    /// The volume label recovered from the image.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Total size of the parsed image in bytes (drives the cost model's
    /// sequential-read estimate).
    pub fn image_len(&self) -> u64 {
        self.image_len
    }

    /// All in-use entries, including the root directory.
    pub fn entries(&self) -> &[RawFileEntry] {
        &self.entries
    }

    /// Reconstructs full paths for every *file* entry (directories excluded)
    /// by chasing parent references — the forensic MFT sweep.
    ///
    /// Entries whose parent chain is broken or cyclic are reported under the
    /// synthetic root `<orphaned>` rather than dropped: an orphaned-but-in-use
    /// record is exactly the kind of anomaly a detector must not hide.
    pub fn file_paths(&self) -> Vec<(NtPath, &RawFileEntry)> {
        self.paths_internal(false)
    }

    /// Reconstructs full paths for every entry including directories.
    pub fn all_paths(&self) -> Vec<(NtPath, &RawFileEntry)> {
        self.paths_internal(true)
    }

    fn paths_internal(&self, include_dirs: bool) -> Vec<(NtPath, &RawFileEntry)> {
        let by_number: HashMap<u64, &RawFileEntry> =
            self.entries.iter().map(|e| (e.number.0, e)).collect();
        let mut out = Vec::new();
        for entry in &self.entries {
            if entry.number.0 == 0 {
                continue; // root itself
            }
            if entry.is_directory() && !include_dirs {
                continue;
            }
            let mut parts = vec![entry.name.clone()];
            let mut cur = entry.parent;
            let mut hops = 0usize;
            let mut broken = false;
            while cur.0 != 0 {
                match by_number.get(&cur.0) {
                    Some(p) => {
                        parts.push(p.name.clone());
                        cur = p.parent;
                    }
                    None => {
                        broken = true;
                        break;
                    }
                }
                hops += 1;
                if hops > self.entries.len() {
                    broken = true;
                    break;
                }
            }
            parts.reverse();
            let root = if broken { "<orphaned>" } else { &self.label };
            out.push((NtPath::from_components(root, parts), entry));
        }
        out
    }
}

/// Reads the image header, returning the volume label and slot count. All
/// reads are length-checked.
fn parse_header(buf: &mut Bytes) -> Result<(String, u64), ImageError> {
    if buf.remaining() < 8 {
        return Err(ImageError::Truncated { context: "magic" });
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ImageError::BadMagic);
    }
    let version = get_u32(buf, "version")?;
    if version != VERSION {
        return Err(ImageError::BadVersion(version));
    }
    let label_len = get_u16(buf, "label length")? as usize;
    if buf.remaining() < label_len {
        return Err(ImageError::Truncated { context: "label" });
    }
    let label_bytes = buf.copy_to_bytes(label_len);
    let label = String::from_utf8_lossy(&label_bytes).into_owned();
    let slot_count = get_u64(buf, "slot count")?;
    Ok((label, slot_count))
}

/// Reads one MFT slot; `None` is a free (not-in-use) slot. Every length and
/// offset field is checked against the bytes actually remaining before it is
/// honored, so arbitrary field values cannot cause out-of-bounds reads or
/// oversized allocations.
fn parse_entry(buf: &mut Bytes) -> Result<Option<RawFileEntry>, ImageError> {
    let in_use = get_u8(buf, "in-use flag")?;
    if in_use == 0 {
        return Ok(None);
    }
    let number = FileRecordNumber(get_u64(buf, "record number")?);
    let sequence = get_u16(buf, "sequence")?;
    let created = Tick(get_u64(buf, "created")?);
    let modified = Tick(get_u64(buf, "modified")?);
    let attributes = FileAttributes(get_u32(buf, "attributes")?);
    let parent = FileRecordNumber(get_u64(buf, "parent")?);
    let name = get_name(buf, "name")?;
    let stream_count = get_u16(buf, "stream count")?;
    let mut data_len = 0u64;
    let mut ads_names = Vec::new();
    for _ in 0..stream_count {
        let named = get_u8(buf, "stream name flag")?;
        if named == 1 {
            ads_names.push(get_name(buf, "stream name")?);
        }
        let len = get_u64(buf, "stream length")?;
        if (buf.remaining() as u64) < len {
            return Err(ImageError::Truncated {
                context: "stream data",
            });
        }
        buf.advance(len as usize);
        data_len += len;
    }
    Ok(Some(RawFileEntry {
        number,
        sequence,
        created,
        modified,
        attributes,
        parent,
        name,
        data_len,
        ads_names,
    }))
}

fn get_u8(buf: &mut Bytes, context: &'static str) -> Result<u8, ImageError> {
    if buf.remaining() < 1 {
        return Err(ImageError::Truncated { context });
    }
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut Bytes, context: &'static str) -> Result<u16, ImageError> {
    if buf.remaining() < 2 {
        return Err(ImageError::Truncated { context });
    }
    Ok(buf.get_u16_le())
}

fn get_u32(buf: &mut Bytes, context: &'static str) -> Result<u32, ImageError> {
    if buf.remaining() < 4 {
        return Err(ImageError::Truncated { context });
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes, context: &'static str) -> Result<u64, ImageError> {
    if buf.remaining() < 8 {
        return Err(ImageError::Truncated { context });
    }
    Ok(buf.get_u64_le())
}

fn get_name(buf: &mut Bytes, context: &'static str) -> Result<NtString, ImageError> {
    let len = get_u16(buf, context)? as usize;
    if buf.remaining() < len * 2 {
        return Err(ImageError::Truncated { context });
    }
    let mut units = Vec::with_capacity(len);
    for _ in 0..len {
        units.push(buf.get_u16_le());
    }
    Ok(NtString::from_units(&units))
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_nt_core::NtPath;

    fn p(s: &str) -> NtPath {
        s.parse().unwrap()
    }

    fn sample_volume() -> NtfsVolume {
        let mut v = NtfsVolume::new("C:");
        v.mkdir_p(&p("C:\\windows\\system32")).unwrap();
        v.create_file(&p("C:\\windows\\system32\\hxdef100.exe"), b"MZ")
            .unwrap();
        v.create_file(&p("C:\\windows\\system32\\hxdef100.ini"), b"[H]")
            .unwrap();
        v
    }

    #[test]
    fn roundtrip_preserves_every_file() {
        let v = sample_volume();
        let raw = VolumeImage::parse(&v.to_image()).unwrap();
        assert_eq!(raw.label(), "C:");
        let paths: Vec<String> = raw
            .file_paths()
            .iter()
            .map(|(p, _)| p.to_string())
            .collect();
        assert_eq!(
            paths,
            vec![
                "C:\\windows\\system32\\hxdef100.exe".to_string(),
                "C:\\windows\\system32\\hxdef100.ini".to_string(),
            ]
        );
    }

    #[test]
    fn all_paths_includes_directories() {
        let v = sample_volume();
        let raw = VolumeImage::parse(&v.to_image()).unwrap();
        let paths: Vec<String> = raw.all_paths().iter().map(|(p, _)| p.to_string()).collect();
        assert!(paths.contains(&"C:\\windows".to_string()));
        assert!(paths.contains(&"C:\\windows\\system32".to_string()));
    }

    #[test]
    fn free_slots_survive_roundtrip_silently() {
        let mut v = sample_volume();
        v.create_file(&p("C:\\temp"), b"x").unwrap();
        v.remove_file(&p("C:\\temp")).unwrap();
        let raw = VolumeImage::parse(&v.to_image()).unwrap();
        // Free slot serialized as not-in-use, not reported.
        assert_eq!(raw.file_paths().len(), 2);
    }

    #[test]
    fn metadata_roundtrips() {
        let mut v = NtfsVolume::new("D:");
        v.set_clock(Tick(42));
        v.create_file_with(&p("D:\\h.txt"), b"abc", FileAttributes::HIDDEN)
            .unwrap();
        v.add_stream(&p("D:\\h.txt"), "extra", b"zz").unwrap();
        let raw = VolumeImage::parse(&v.to_image()).unwrap();
        let (_, e) = &raw.file_paths()[0];
        assert_eq!(e.created, Tick(42));
        assert!(e.attributes.contains(FileAttributes::HIDDEN));
        assert_eq!(e.data_len, 5);
        assert_eq!(e.ads_names.len(), 1);
        assert_eq!(e.ads_names[0].to_win32_lossy(), "extra");
    }

    #[test]
    fn salvage_on_clean_image_matches_strict() {
        let v = sample_volume();
        let bytes = v.to_image();
        let strict = VolumeImage::parse(&bytes).unwrap();
        let salvaged = VolumeImage::parse_salvage(&bytes);
        assert!(salvaged.is_clean());
        assert_eq!(salvaged.value.entries(), strict.entries());
        assert_eq!(salvaged.value.label(), strict.label());
    }

    #[test]
    fn salvage_keeps_entries_before_the_damage() {
        let v = sample_volume();
        let bytes = v.to_image();
        let cut = bytes.len() - 10;
        assert!(VolumeImage::parse(&bytes[..cut]).is_err());
        let salvaged = VolumeImage::parse_salvage(&bytes[..cut]);
        assert_eq!(salvaged.defects.len(), 1);
        assert_eq!(
            salvaged.defects[0].kind,
            strider_support::fault::DefectKind::Truncated
        );
        assert!(salvaged.defects[0].bytes_lost > 0);
        // Root + system32 tree is 4 entries; the cut only loses the tail.
        assert!(!salvaged.value.entries().is_empty());
        assert!(salvaged.value.entries().len() < 5);
    }

    #[test]
    fn salvage_of_garbage_header_is_empty_with_defect() {
        let salvaged = VolumeImage::parse_salvage(b"NOTANIMG________");
        assert!(salvaged.value.entries().is_empty());
        assert_eq!(
            salvaged.defects[0].kind,
            strider_support::fault::DefectKind::BadMagic
        );
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            VolumeImage::parse(b"NOTANIMG________"),
            Err(ImageError::BadMagic)
        ));
    }

    #[test]
    fn truncated_image_rejected() {
        let v = sample_volume();
        let img = v.to_image();
        let cut = &img[..img.len() - 3];
        assert!(matches!(
            VolumeImage::parse(cut),
            Err(ImageError::Truncated { .. })
        ));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            VolumeImage::parse(&[]),
            Err(ImageError::Truncated { .. })
        ));
    }

    #[test]
    fn win32_illegal_names_round_trip() {
        let mut v = NtfsVolume::new("C:");
        v.create_file(&p("C:\\update."), b"x").unwrap();
        let raw = VolumeImage::parse(&v.to_image()).unwrap();
        assert_eq!(raw.file_paths()[0].0.to_string(), "C:\\update.");
    }
}
