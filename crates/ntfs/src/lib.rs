//! A simulated NTFS volume with a binary Master File Table.
//!
//! The Master File Table (MFT) is "the core of the NTFS volume structure"
//! (paper, Section 2): one fixed-format record per file, carrying the file's
//! standard information, its name plus a reference to its *parent* record,
//! and its data streams. GhostBuster's low-level file scan reads the MFT
//! directly, bypassing every API layer a ghostware program could hook.
//!
//! This crate provides both halves of that arrangement:
//!
//! * [`NtfsVolume`] — the live volume the simulated OS mutates through
//!   ordinary operations ([`NtfsVolume::create_file`],
//!   [`NtfsVolume::list_children`], …). Directory lookups go through each
//!   directory's index, exactly like the real driver.
//! * [`VolumeImage`] — the raw on-disk bytes ([`NtfsVolume::to_image`]) and an
//!   **independent parser** ([`VolumeImage::parse`]) that rebuilds the file
//!   tree *solely from parent references in MFT records*, the way real
//!   forensic MFT scanners do. The serializer intentionally does not emit the
//!   directory indexes, so the two views share no code path.
//!
//! NTFS itself is permissive about names: trailing dots and spaces, reserved
//! DOS device names, deep paths beyond `MAX_PATH` — all are storable here and
//! all become invisible to the Win32 layer (see `strider-winapi`), which is
//! one of the file-hiding tricks the paper catalogs.
//!
//! # Examples
//!
//! ```
//! use strider_ntfs::NtfsVolume;
//! use strider_nt_core::NtPath;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut vol = NtfsVolume::new("C:");
//! vol.mkdir_p(&"C:\\windows\\system32".parse()?)?;
//! vol.create_file(&"C:\\windows\\system32\\hxdef100.exe".parse()?, b"MZ...")?;
//!
//! // Low-level view: parse the raw image, reconstruct paths from parents.
//! let image = vol.to_image();
//! let raw = strider_ntfs::VolumeImage::parse(&image)?;
//! let paths: Vec<String> = raw.file_paths().iter().map(|(p, _)| p.to_string()).collect();
//! assert!(paths.contains(&"C:\\windows\\system32\\hxdef100.exe".to_string()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod image;
mod record;
mod volume;

pub use image::{ImageError, RawFileEntry, VolumeImage};
pub use record::{DataStream, FileAttributes, FileRecord, StandardInformation};
pub use strider_support::fault::{Defect, DefectKind, Salvaged};
pub use volume::{NtfsError, NtfsVolume};

/// Convenient re-exports.
pub mod prelude {
    pub use crate::{FileAttributes, FileRecord, NtfsError, NtfsVolume, RawFileEntry, VolumeImage};
}
