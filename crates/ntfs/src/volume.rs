//! The live NTFS volume.

use crate::record::{DataStream, FileAttributes, FileRecord, StandardInformation};
use std::collections::HashMap;
use std::fmt;
use strider_nt_core::{FileRecordNumber, NtPath, NtString, Tick};

/// Error type for live-volume operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NtfsError {
    /// The path's parent chain does not exist.
    ParentNotFound(NtPath),
    /// No object exists at the path.
    NotFound(NtPath),
    /// An object already exists at the path.
    AlreadyExists(NtPath),
    /// The path names a file where a directory was required.
    NotADirectory(NtPath),
    /// The path names a directory where a file was required.
    IsADirectory(NtPath),
    /// The directory is not empty and the operation required it to be.
    DirectoryNotEmpty(NtPath),
    /// The name is invalid at the NTFS layer (empty, or contains `\\`/NUL).
    InvalidName(NtString),
    /// The path root does not match this volume's label.
    WrongVolume {
        /// The volume's label.
        expected: String,
        /// The root the path carried.
        got: String,
    },
}

impl fmt::Display for NtfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NtfsError::ParentNotFound(p) => write!(f, "parent not found: {p}"),
            NtfsError::NotFound(p) => write!(f, "not found: {p}"),
            NtfsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            NtfsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            NtfsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            NtfsError::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
            NtfsError::InvalidName(n) => write!(f, "invalid ntfs name: {n}"),
            NtfsError::WrongVolume { expected, got } => {
                write!(f, "wrong volume: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for NtfsError {}

/// A live, mutable NTFS-style volume.
///
/// Record 0 is the root directory (self-parented, as on real NTFS where the
/// root's file-name attribute references itself). Records live in a slab with
/// a free list; deleting a file frees its slot and bumps the slot's sequence
/// number on reuse, so stale references are detectable — mirroring real MFT
/// record reuse.
///
/// The volume enforces only *NTFS-level* name rules (non-empty, no `\\`, no
/// NUL). Win32-level restrictions (trailing dots, `MAX_PATH`, reserved device
/// names) are deliberately **not** enforced here; they belong to the Win32
/// layer in `strider-winapi`, and the asymmetry is a file-hiding vector.
///
/// # Examples
///
/// ```
/// use strider_ntfs::NtfsVolume;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut vol = NtfsVolume::new("C:");
/// vol.mkdir_p(&"C:\\temp".parse()?)?;
/// let n = vol.create_file(&"C:\\temp\\x.log".parse()?, b"hi")?;
/// assert_eq!(vol.read_file(&"C:\\temp\\x.log".parse()?)?, b"hi");
/// assert_eq!(vol.path_of(n).unwrap().to_string(), "C:\\temp\\x.log");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NtfsVolume {
    label: String,
    records: Vec<Option<FileRecord>>,
    /// Sequence counters per slot, preserved across reuse.
    sequences: Vec<u16>,
    free: Vec<usize>,
    /// Per-directory child index: directory record -> fold_key(name) -> child.
    dir_index: HashMap<u64, HashMap<Vec<u16>, FileRecordNumber>>,
    now: Tick,
}

impl NtfsVolume {
    /// Creates an empty volume whose root is `label` (e.g. `"C:"`).
    pub fn new(label: &str) -> Self {
        let root = FileRecord {
            number: FileRecordNumber(0),
            sequence: 1,
            std_info: StandardInformation::at(Tick::ZERO, FileAttributes::DIRECTORY),
            name: NtString::from(label),
            parent: FileRecordNumber(0),
            streams: Vec::new(),
            children: Vec::new(),
        };
        Self {
            label: label.to_string(),
            records: vec![Some(root)],
            sequences: vec![1],
            free: Vec::new(),
            dir_index: HashMap::new(),
            now: Tick::ZERO,
        }
    }

    /// The volume label (`"C:"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The root directory's record number (always 0).
    pub fn root(&self) -> FileRecordNumber {
        FileRecordNumber(0)
    }

    /// Sets the volume's notion of "now" used to stamp created/modified times.
    pub fn set_clock(&mut self, now: Tick) {
        self.now = now;
    }

    /// Number of in-use records (files + directories, including the root).
    pub fn record_count(&self) -> usize {
        self.records.iter().flatten().count()
    }

    /// Total MFT slots including free ones (the serialized image covers all).
    pub fn slot_count(&self) -> usize {
        self.records.len()
    }

    /// Total bytes stored across all streams of all files.
    pub fn total_bytes(&self) -> u64 {
        self.records
            .iter()
            .flatten()
            .map(FileRecord::total_stream_bytes)
            .sum()
    }

    /// Fetches a record by number.
    pub fn record(&self, n: FileRecordNumber) -> Option<&FileRecord> {
        self.records.get(n.0 as usize).and_then(Option::as_ref)
    }

    /// Iterates over all in-use records in MFT order.
    pub fn iter(&self) -> impl Iterator<Item = &FileRecord> {
        self.records.iter().flatten()
    }

    /// Resolves a path to a record number using directory indexes
    /// (case-insensitive), like the live driver.
    pub fn resolve(&self, path: &NtPath) -> Result<FileRecordNumber, NtfsError> {
        if !path.root().eq_ignore_ascii_case(&self.label) {
            return Err(NtfsError::WrongVolume {
                expected: self.label.clone(),
                got: path.root().to_string(),
            });
        }
        let mut cur = self.root();
        for comp in path.components() {
            let rec = self.record(cur).expect("resolved record must exist");
            if !rec.is_directory() {
                return Err(NtfsError::NotADirectory(self.path_of(cur).unwrap()));
            }
            cur = self
                .child_by_name(cur, comp)
                .ok_or_else(|| NtfsError::NotFound(path.clone()))?;
        }
        Ok(cur)
    }

    /// Looks up the record at `path`, if any.
    pub fn lookup(&self, path: &NtPath) -> Option<&FileRecord> {
        self.resolve(path).ok().and_then(|n| self.record(n))
    }

    /// Whether an object exists at `path`.
    pub fn exists(&self, path: &NtPath) -> bool {
        self.resolve(path).is_ok()
    }

    fn child_by_name(&self, dir: FileRecordNumber, name: &NtString) -> Option<FileRecordNumber> {
        let key = name.fold_key();
        if let Some(index) = self.dir_index.get(&dir.0) {
            return index.get(&key).copied();
        }
        // Index not built (e.g. after deserialization): fall back to linear.
        let rec = self.record(dir)?;
        rec.children
            .iter()
            .copied()
            .find(|&c| self.record(c).is_some_and(|r| r.name.fold_key() == key))
    }

    fn validate_ntfs_name(name: &NtString) -> Result<(), NtfsError> {
        if name.is_empty() || name.contains_nul() || name.units().contains(&(b'\\' as u16)) {
            return Err(NtfsError::InvalidName(name.clone()));
        }
        Ok(())
    }

    fn alloc_slot(&mut self) -> usize {
        if let Some(i) = self.free.pop() {
            self.sequences[i] = self.sequences[i].wrapping_add(1);
            i
        } else {
            self.records.push(None);
            self.sequences.push(1);
            self.records.len() - 1
        }
    }

    fn insert_child(&mut self, parent: FileRecordNumber, child: FileRecordNumber) {
        let name_key = self.record(child).expect("child exists").name.fold_key();
        let prec = self.records[parent.0 as usize]
            .as_mut()
            .expect("parent exists");
        prec.children.push(child);
        prec.std_info.modified = self.now;
        self.dir_index
            .entry(parent.0)
            .or_default()
            .insert(name_key, child);
    }

    fn remove_child(&mut self, parent: FileRecordNumber, child: FileRecordNumber) {
        let name_key = self.record(child).map(|r| r.name.fold_key());
        let prec = self.records[parent.0 as usize]
            .as_mut()
            .expect("parent exists");
        prec.children.retain(|&c| c != child);
        prec.std_info.modified = self.now;
        if let (Some(key), Some(index)) = (name_key, self.dir_index.get_mut(&parent.0)) {
            index.remove(&key);
        }
    }

    fn create_object(
        &mut self,
        path: &NtPath,
        attributes: FileAttributes,
        streams: Vec<DataStream>,
    ) -> Result<FileRecordNumber, NtfsError> {
        let name = path
            .file_name()
            .cloned()
            .ok_or_else(|| NtfsError::InvalidName(NtString::new()))?;
        Self::validate_ntfs_name(&name)?;
        let parent_path = path.parent().expect("non-root path has a parent");
        let parent = self
            .resolve(&parent_path)
            .map_err(|_| NtfsError::ParentNotFound(parent_path.clone()))?;
        let prec = self.record(parent).expect("parent resolved");
        if !prec.is_directory() {
            return Err(NtfsError::NotADirectory(parent_path));
        }
        if self.child_by_name(parent, &name).is_some() {
            return Err(NtfsError::AlreadyExists(path.clone()));
        }
        let slot = self.alloc_slot();
        let number = FileRecordNumber(slot as u64);
        self.records[slot] = Some(FileRecord {
            number,
            sequence: self.sequences[slot],
            std_info: StandardInformation::at(self.now, attributes),
            name,
            parent,
            streams,
            children: Vec::new(),
        });
        self.insert_child(parent, number);
        Ok(number)
    }

    /// Creates a file with the given main-stream contents.
    ///
    /// # Errors
    ///
    /// Fails if the parent chain is missing, the name already exists in the
    /// parent, or the name violates NTFS-level rules.
    pub fn create_file(
        &mut self,
        path: &NtPath,
        data: &[u8],
    ) -> Result<FileRecordNumber, NtfsError> {
        self.create_object(
            path,
            FileAttributes::NORMAL,
            vec![DataStream::unnamed(data.to_vec())],
        )
    }

    /// Creates a file with explicit attributes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NtfsVolume::create_file`].
    pub fn create_file_with(
        &mut self,
        path: &NtPath,
        data: &[u8],
        attributes: FileAttributes,
    ) -> Result<FileRecordNumber, NtfsError> {
        self.create_object(path, attributes, vec![DataStream::unnamed(data.to_vec())])
    }

    /// Creates a single directory; the parent must already exist.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NtfsVolume::create_file`].
    pub fn mkdir(&mut self, path: &NtPath) -> Result<FileRecordNumber, NtfsError> {
        self.create_object(path, FileAttributes::DIRECTORY, Vec::new())
    }

    /// Creates a directory and any missing ancestors.
    ///
    /// # Errors
    ///
    /// Fails if a non-directory exists somewhere along the chain or a name is
    /// invalid.
    pub fn mkdir_p(&mut self, path: &NtPath) -> Result<FileRecordNumber, NtfsError> {
        let mut cur = NtPath::root_of(path.root());
        let mut cur_rec = self.root();
        if !path.root().eq_ignore_ascii_case(&self.label) {
            return Err(NtfsError::WrongVolume {
                expected: self.label.clone(),
                got: path.root().to_string(),
            });
        }
        for comp in path.components() {
            cur = cur.join(comp.clone());
            match self.child_by_name(cur_rec, comp) {
                Some(next) => {
                    let rec = self.record(next).expect("indexed child exists");
                    if !rec.is_directory() {
                        return Err(NtfsError::NotADirectory(cur));
                    }
                    cur_rec = next;
                }
                None => {
                    cur_rec = self.mkdir(&cur)?;
                }
            }
        }
        Ok(cur_rec)
    }

    /// Reads the main data stream of the file at `path`.
    ///
    /// # Errors
    ///
    /// Fails if the path is missing or names a directory.
    pub fn read_file(&self, path: &NtPath) -> Result<Vec<u8>, NtfsError> {
        let rec = self
            .lookup(path)
            .ok_or_else(|| NtfsError::NotFound(path.clone()))?;
        if rec.is_directory() {
            return Err(NtfsError::IsADirectory(path.clone()));
        }
        Ok(rec.main_data().unwrap_or_default().to_vec())
    }

    /// Overwrites (or creates) the main data stream of an existing file and
    /// stamps its modified time.
    ///
    /// # Errors
    ///
    /// Fails if the path is missing or names a directory.
    pub fn write_file(&mut self, path: &NtPath, data: &[u8]) -> Result<(), NtfsError> {
        let n = self.resolve(path)?;
        let now = self.now;
        let rec = self.records[n.0 as usize].as_mut().expect("resolved");
        if rec.is_directory() {
            return Err(NtfsError::IsADirectory(path.clone()));
        }
        match rec.streams.iter_mut().find(|s| s.name.is_none()) {
            Some(s) => s.data = data.to_vec(),
            None => rec.streams.push(DataStream::unnamed(data.to_vec())),
        }
        rec.std_info.modified = now;
        Ok(())
    }

    /// Appends to the main data stream, creating the file if needed (parents
    /// must exist). Used by the simulated always-running services for log
    /// churn.
    ///
    /// # Errors
    ///
    /// Fails if the parent chain is missing or the path is a directory.
    pub fn append_file(&mut self, path: &NtPath, data: &[u8]) -> Result<(), NtfsError> {
        match self.resolve(path) {
            Ok(n) => {
                let now = self.now;
                let rec = self.records[n.0 as usize].as_mut().expect("resolved");
                if rec.is_directory() {
                    return Err(NtfsError::IsADirectory(path.clone()));
                }
                match rec.streams.iter_mut().find(|s| s.name.is_none()) {
                    Some(s) => s.data.extend_from_slice(data),
                    None => rec.streams.push(DataStream::unnamed(data.to_vec())),
                }
                rec.std_info.modified = now;
                Ok(())
            }
            Err(NtfsError::NotFound(_)) => {
                self.create_file(path, data)?;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Adds a named alternate data stream to an existing file.
    ///
    /// # Errors
    ///
    /// Fails if the file is missing or already has a stream of that name.
    pub fn add_stream(
        &mut self,
        path: &NtPath,
        stream_name: impl Into<NtString>,
        data: &[u8],
    ) -> Result<(), NtfsError> {
        let n = self.resolve(path)?;
        let name = stream_name.into();
        Self::validate_ntfs_name(&name)?;
        let rec = self.records[n.0 as usize].as_mut().expect("resolved");
        if rec
            .streams
            .iter()
            .any(|s| s.name.as_ref().is_some_and(|x| x.eq_ignore_case(&name)))
        {
            return Err(NtfsError::AlreadyExists(path.clone()));
        }
        rec.streams.push(DataStream::named(name, data.to_vec()));
        Ok(())
    }

    /// Updates attribute flags on an existing object.
    ///
    /// # Errors
    ///
    /// Fails if the path is missing.
    pub fn set_attributes(
        &mut self,
        path: &NtPath,
        attributes: FileAttributes,
    ) -> Result<(), NtfsError> {
        let n = self.resolve(path)?;
        let rec = self.records[n.0 as usize].as_mut().expect("resolved");
        let dir_bit = rec.std_info.attributes.contains(FileAttributes::DIRECTORY);
        rec.std_info.attributes = if dir_bit {
            attributes | FileAttributes::DIRECTORY
        } else {
            attributes
        };
        Ok(())
    }

    /// Removes a file (not a directory), freeing its MFT slot for reuse.
    ///
    /// # Errors
    ///
    /// Fails if the path is missing or names a directory.
    pub fn remove_file(&mut self, path: &NtPath) -> Result<(), NtfsError> {
        let n = self.resolve(path)?;
        let rec = self.record(n).expect("resolved");
        if rec.is_directory() {
            return Err(NtfsError::IsADirectory(path.clone()));
        }
        let parent = rec.parent;
        self.remove_child(parent, n);
        self.records[n.0 as usize] = None;
        self.free.push(n.0 as usize);
        Ok(())
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// Fails if the path is missing, is a file, is the root, or is not empty.
    pub fn remove_dir(&mut self, path: &NtPath) -> Result<(), NtfsError> {
        let n = self.resolve(path)?;
        if n == self.root() {
            return Err(NtfsError::DirectoryNotEmpty(path.clone()));
        }
        let rec = self.record(n).expect("resolved");
        if !rec.is_directory() {
            return Err(NtfsError::NotADirectory(path.clone()));
        }
        if !rec.children.is_empty() {
            return Err(NtfsError::DirectoryNotEmpty(path.clone()));
        }
        let parent = rec.parent;
        self.remove_child(parent, n);
        self.records[n.0 as usize] = None;
        self.free.push(n.0 as usize);
        self.dir_index.remove(&n.0);
        Ok(())
    }

    /// Removes a directory and everything beneath it.
    ///
    /// # Errors
    ///
    /// Fails if the path is missing or is the root.
    pub fn remove_tree(&mut self, path: &NtPath) -> Result<(), NtfsError> {
        let n = self.resolve(path)?;
        if n == self.root() {
            return Err(NtfsError::DirectoryNotEmpty(path.clone()));
        }
        let rec = self.record(n).expect("resolved");
        if !rec.is_directory() {
            return self.remove_file(path);
        }
        let children: Vec<NtPath> = rec
            .children
            .iter()
            .filter_map(|&c| self.path_of(c))
            .collect();
        for child in children {
            self.remove_tree(&child)?;
        }
        self.remove_dir(path)
    }

    /// Lists the children of the directory at `path` in index order.
    ///
    /// # Errors
    ///
    /// Fails if the path is missing or not a directory.
    pub fn list_children(&self, path: &NtPath) -> Result<Vec<&FileRecord>, NtfsError> {
        let n = self.resolve(path)?;
        let rec = self.record(n).expect("resolved");
        if !rec.is_directory() {
            return Err(NtfsError::NotADirectory(path.clone()));
        }
        Ok(rec
            .children
            .iter()
            .filter_map(|&c| self.record(c))
            .collect())
    }

    /// Reconstructs the full path of a record by following parent references.
    ///
    /// Returns `None` for stale numbers or if a parent chain is broken.
    pub fn path_of(&self, n: FileRecordNumber) -> Option<NtPath> {
        let mut parts: Vec<NtString> = Vec::new();
        let mut cur = n;
        let mut hops = 0;
        while cur != self.root() {
            let rec = self.record(cur)?;
            parts.push(rec.name.clone());
            cur = rec.parent;
            hops += 1;
            if hops > self.records.len() {
                return None; // cycle guard
            }
        }
        parts.reverse();
        Some(NtPath::from_components(&self.label, parts))
    }

    /// Serializes the volume to its raw binary image (see [`crate::VolumeImage`]).
    pub fn to_image(&self) -> Vec<u8> {
        crate::image::write_image(self)
    }
}

// ---------------------------------------------------------------------
// JSON serialization (see `strider_support::json`, replacing the former
// serde derives)
// ---------------------------------------------------------------------

// Hand-written (instead of `impl_json!`) because `dir_index` is a derived
// and left empty on read; lookups fall back to a linear scan until the
// index is repopulated by subsequent mutations.
impl strider_support::json::ToJson for NtfsVolume {
    fn to_json(&self) -> strider_support::json::JsonValue {
        strider_support::json::JsonValue::Obj(vec![
            ("label".to_string(), self.label.to_json()),
            ("records".to_string(), self.records.to_json()),
            ("sequences".to_string(), self.sequences.to_json()),
            ("free".to_string(), self.free.to_json()),
            ("now".to_string(), self.now.to_json()),
        ])
    }
}

impl strider_support::json::FromJson for NtfsVolume {
    fn from_json(
        value: &strider_support::json::JsonValue,
    ) -> Result<Self, strider_support::json::JsonError> {
        use strider_support::json::FromJson;
        Ok(Self {
            label: FromJson::from_json(value.field("label")?)?,
            records: FromJson::from_json(value.field("records")?)?,
            sequences: FromJson::from_json(value.field("sequences")?)?,
            free: FromJson::from_json(value.field("free")?)?,
            dir_index: HashMap::new(),
            now: FromJson::from_json(value.field("now")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> NtPath {
        s.parse().unwrap()
    }

    fn vol() -> NtfsVolume {
        let mut v = NtfsVolume::new("C:");
        v.mkdir_p(&p("C:\\windows\\system32\\drivers")).unwrap();
        v
    }

    #[test]
    fn create_and_read() {
        let mut v = vol();
        v.create_file(&p("C:\\windows\\system32\\cfg.ini"), b"[a]")
            .unwrap();
        assert_eq!(
            v.read_file(&p("C:\\windows\\system32\\cfg.ini")).unwrap(),
            b"[a]"
        );
    }

    #[test]
    fn resolve_is_case_insensitive() {
        let v = vol();
        assert!(v.exists(&p("c:\\WINDOWS\\System32")));
    }

    #[test]
    fn duplicate_names_rejected_case_insensitively() {
        let mut v = vol();
        v.create_file(&p("C:\\a.txt"), b"").unwrap();
        assert_eq!(
            v.create_file(&p("C:\\A.TXT"), b""),
            Err(NtfsError::AlreadyExists(p("C:\\A.TXT")))
        );
    }

    #[test]
    fn missing_parent_is_an_error() {
        let mut v = vol();
        assert!(matches!(
            v.create_file(&p("C:\\nope\\x.txt"), b""),
            Err(NtfsError::ParentNotFound(_))
        ));
    }

    #[test]
    fn ntfs_accepts_win32_illegal_names() {
        let mut v = vol();
        // Trailing dot, reserved device name, trailing space: all fine at NTFS level.
        v.create_file(&p("C:\\update."), b"x").unwrap();
        v.create_file(&p("C:\\nul.txt"), b"x").unwrap();
        v.create_file(&p("C:\\drv "), b"x").unwrap();
        assert_eq!(v.record_count(), 4 + 3); // root + 3 dirs + 3 files
    }

    #[test]
    fn ntfs_rejects_backslash_and_nul_in_names() {
        let mut v = vol();
        let bad = NtString::from_units(&[b'a' as u16, 0, b'b' as u16]);
        let path = NtPath::root_of("C:").join(bad);
        assert!(matches!(
            v.create_file(&path, b""),
            Err(NtfsError::InvalidName(_))
        ));
    }

    #[test]
    fn remove_file_frees_slot_and_bumps_sequence_on_reuse() {
        let mut v = vol();
        let n1 = v.create_file(&p("C:\\tmp1"), b"x").unwrap();
        v.remove_file(&p("C:\\tmp1")).unwrap();
        assert!(v.record(n1).is_none());
        let n2 = v.create_file(&p("C:\\tmp2"), b"y").unwrap();
        assert_eq!(n1.0, n2.0, "slot reused");
        assert_eq!(v.record(n2).unwrap().sequence, 2, "sequence bumped");
    }

    #[test]
    fn remove_dir_requires_empty() {
        let mut v = vol();
        assert_eq!(
            v.remove_dir(&p("C:\\windows")),
            Err(NtfsError::DirectoryNotEmpty(p("C:\\windows")))
        );
        v.remove_dir(&p("C:\\windows\\system32\\drivers")).unwrap();
        assert!(!v.exists(&p("C:\\windows\\system32\\drivers")));
    }

    #[test]
    fn remove_tree_removes_recursively() {
        let mut v = vol();
        v.create_file(&p("C:\\windows\\system32\\a.dll"), b"")
            .unwrap();
        v.remove_tree(&p("C:\\windows")).unwrap();
        assert!(!v.exists(&p("C:\\windows")));
        assert_eq!(v.record_count(), 1); // only root
    }

    #[test]
    fn path_of_reconstructs_full_path() {
        let mut v = vol();
        let n = v
            .create_file(&p("C:\\windows\\system32\\drivers\\k.sys"), b"")
            .unwrap();
        assert_eq!(
            v.path_of(n).unwrap().to_string(),
            "C:\\windows\\system32\\drivers\\k.sys"
        );
    }

    #[test]
    fn list_children_of_file_fails() {
        let mut v = vol();
        v.create_file(&p("C:\\f"), b"").unwrap();
        assert!(matches!(
            v.list_children(&p("C:\\f")),
            Err(NtfsError::NotADirectory(_))
        ));
    }

    #[test]
    fn append_creates_then_appends() {
        let mut v = vol();
        v.append_file(&p("C:\\log.txt"), b"a").unwrap();
        v.append_file(&p("C:\\log.txt"), b"b").unwrap();
        assert_eq!(v.read_file(&p("C:\\log.txt")).unwrap(), b"ab");
    }

    #[test]
    fn ads_streams() {
        let mut v = vol();
        v.create_file(&p("C:\\host.txt"), b"main").unwrap();
        v.add_stream(&p("C:\\host.txt"), "evil", b"payload")
            .unwrap();
        let rec = v.lookup(&p("C:\\host.txt")).unwrap();
        assert_eq!(rec.streams.len(), 2);
        assert_eq!(rec.ads_names()[0].to_win32_lossy(), "evil");
        assert!(matches!(
            v.add_stream(&p("C:\\host.txt"), "EVIL", b""),
            Err(NtfsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn set_attributes_preserves_directory_bit() {
        let mut v = vol();
        v.set_attributes(&p("C:\\windows"), FileAttributes::HIDDEN)
            .unwrap();
        let rec = v.lookup(&p("C:\\windows")).unwrap();
        assert!(rec.is_directory());
        assert!(rec.std_info.attributes.contains(FileAttributes::HIDDEN));
    }

    #[test]
    fn wrong_volume_root_is_reported() {
        let v = vol();
        assert!(matches!(
            v.resolve(&p("D:\\x")),
            Err(NtfsError::WrongVolume { .. })
        ));
    }

    #[test]
    fn mkdir_p_is_idempotent() {
        let mut v = vol();
        let a = v.mkdir_p(&p("C:\\windows\\system32")).unwrap();
        let b = v.mkdir_p(&p("C:\\windows\\system32")).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn total_bytes_counts_all_streams() {
        let mut v = NtfsVolume::new("C:");
        v.create_file(&p("C:\\a"), b"12345").unwrap();
        v.add_stream(&p("C:\\a"), "s", b"678").unwrap();
        assert_eq!(v.total_bytes(), 8);
    }
}
