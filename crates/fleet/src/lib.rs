//! Fleet-scale sweeping: the paper's enterprise deployment story — "IT
//! organizations can remotely deploy the solution on a large number of
//! desktops" — as a service layer over the single-machine detector.
//!
//! Three pieces compose:
//!
//! * [`FleetRegistry`] — a deterministic fleet of seeded machines with a
//!   controlled ghostware mix (sizes vary, infections spread evenly,
//!   families cycle through the detectable corpus), so fleet-level claims
//!   can be asserted exactly;
//! * [`FleetScheduler`] — a work-stealing worker pool fanning supervised
//!   [`inside sweeps`](strider_ghostbuster::GhostBuster::inside_sweep)
//!   across the fleet, each shard under its own cancellation scope, time
//!   budgets, and fresh circuit breakers, with per-shard
//!   checkpoint/resume ([`FleetCheckpoint`]) and batched result ingest
//!   over a bounded channel;
//! * [`FleetReport`] — the order-independent merge: fleet infection rate,
//!   per-family/per-technique prevalence, per-pipeline health rollups,
//!   and fleet-wide latency quantiles from merged
//!   [`HistogramSketch`](strider_support::obs::HistogramSketch)es.
//!
//! The fleet is crash-safe and self-healing. A
//! [`FleetScheduler::sweep_durable`] journals per-shard progress into a
//! checksummed, generational
//! [`RecordStore`](strider_support::store::RecordStore) — one O(1)
//! appended record per completed shard ([`DurabilityMode::WalAppend`]) or
//! a whole-checkpoint atomic rewrite per shard
//! ([`DurabilityMode::FullRewrite`], the benchmark baseline) — so the
//! process can be killed at any write byte and a rerun resumes to a
//! merged report whose [`FleetReport::result_digest`] is byte-identical
//! to an uninterrupted run's. A [`FleetHealPolicy`] adds per-shard retry
//! budgets with seeded exponential backoff; a shard that exhausts its
//! budget is fenced as [`ShardDisposition::Quarantined`] with
//! flight-recorder evidence — surfaced in [`FleetReport::quarantined`],
//! never silently dropped and never an `Err` that sinks the fleet.
//!
//! [`FleetMonitor`] adds the continuous story: one
//! [`SweepMonitor`](strider_ghostbuster::SweepMonitor) per shard (every
//! machine diffs against its *own* baseline) with fleet rollup series and
//! [`FleetIncident`]s tagged by shard, each carrying that shard's
//! flight-recorder dump as evidence. On top of the rollups sits an
//! alerting plane: a [`FleetAlertPolicy`] installs fleet-level rules
//! (infection-rate spike, degraded-shard fraction, p95 sweep-latency SLO,
//! worker starvation) into an
//! [`AlertEngine`](strider_support::alert::AlertEngine) evaluated
//! after every pass, and both the live monitor and the merged
//! [`FleetReport`] export Prometheus-text snapshots
//! (`TELEMETRY_EXPO_<label>.prom`).
//!
//! Performance attribution rides on the same machinery:
//! [`FleetScheduler::sweep_traced`] records every scheduler decision
//! (shard enqueue, steal, sweep start/finish) on the policy clock and
//! returns a [`FleetTrace`] that derives queue-wait and
//! worker-occupancy metrics, feeds them into the monitor's
//! `fleet.queue_wait_p95_ns` / `fleet.worker_idle_fraction` series (see
//! [`FleetMonitor::ingest_trace`]), and merges scheduler lanes, named
//! worker lanes, and every shard's telemetry spans — on globally unique
//! tids — into one fleet-wide Chrome trace
//! (`FLEET_TRACE_<label>.json`).
//!
//! # Examples
//!
//! ```
//! use strider_fleet::{FleetRegistry, FleetScheduler, FleetSpec};
//! use strider_ghostbuster::{AdvancedSource, GhostBuster, ScanPolicy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 6 seeded machines, 2 of them infected.
//! let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(6, 42).with_infected(2))?;
//! let scheduler = FleetScheduler::new(
//!     GhostBuster::new()
//!         .with_advanced(AdvancedSource::ThreadTable)
//!         .with_policy(ScanPolicy::supervised()),
//! )
//! .with_workers(2);
//!
//! let report = scheduler.sweep(&mut fleet)?;
//! assert_eq!(report.swept, 6);
//! assert_eq!(report.infected, 2);
//! assert!((report.infection_rate() - 2.0 / 6.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod durable;
mod monitor;
mod registry;
mod report;
mod scheduler;
mod trace;

pub use durable::{
    recover_state, DurabilityMode, DurableFleetState, DurableSweepError, FleetHealPolicy,
    QuarantineRecord,
};
pub use monitor::{
    FleetAlertPolicy, FleetIncident, FleetMonitor, FleetObservation, ShardFailure, ShardQuarantine,
};
pub use registry::{FleetMachine, FleetRegistry, FleetSpec, ShardId};
pub use report::{
    CheckpointMismatch, FleetCheckpoint, FleetReport, PipelineRollup, Prevalence, ShardDisposition,
    ShardResult,
};
pub use scheduler::{FleetControl, FleetScheduler};
pub use trace::{FleetTrace, SchedEvent, SchedEventKind, ShardTrace};

/// Convenient re-exports.
pub mod prelude {
    pub use crate::{
        CheckpointMismatch, DurabilityMode, DurableFleetState, DurableSweepError, FleetAlertPolicy,
        FleetCheckpoint, FleetControl, FleetHealPolicy, FleetIncident, FleetMachine, FleetMonitor,
        FleetObservation, FleetRegistry, FleetReport, FleetScheduler, FleetSpec, FleetTrace,
        PipelineRollup, Prevalence, QuarantineRecord, SchedEvent, SchedEventKind, ShardDisposition,
        ShardFailure, ShardId, ShardQuarantine, ShardResult, ShardTrace,
    };
}
