//! The fleet's durable state plane and self-healing policy.
//!
//! A durable fleet sweep journals its progress into a
//! [`RecordStore`](strider_support::store::RecordStore) so the process can
//! be killed at *any* byte of *any* write and a restarted process resumes
//! to the same merged result. Two persistence shapes are supported:
//!
//! * [`DurabilityMode::WalAppend`] — one base record holding the fresh
//!   [`FleetCheckpoint`], then one O(1) appended record per completed
//!   shard. This is the production shape: per-shard cost is independent
//!   of fleet size.
//! * [`DurabilityMode::FullRewrite`] — every shard completion commits the
//!   entire merged checkpoint through an atomic temp-write + rename. This
//!   is the naive shape kept as a benchmark baseline; its per-shard cost
//!   grows with the fleet.
//!
//! Recovery ([`recover_state`]) replays the journal: the last intact
//! `fleet` record is the base, and every later `shard` / `quarantine`
//! record overlays it in order. Torn tails and bit flips are absorbed one
//! layer down by the record store's checksums and generation fallback —
//! by the time records reach this module they are intact.

use crate::registry::{FleetRegistry, ShardId};
use crate::report::{CheckpointMismatch, FleetCheckpoint};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use strider_ghostbuster::SweepCheckpoint;
use strider_nt_core::NtStatus;
use strider_support::json::{FromJson, JsonError, JsonValue, ToJson};
use strider_support::obs::FlightDump;
use strider_support::rng::SplitMix64;
use strider_support::store::RecordStore;

/// How a durable sweep persists per-shard completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityMode {
    /// Append one journal record per completed shard — O(1) per shard.
    #[default]
    WalAppend,
    /// Rewrite the whole merged checkpoint per completed shard through an
    /// atomic commit — O(fleet) per shard; benchmark baseline.
    FullRewrite,
}

/// The self-healing budget for one fleet sweep: how many attempts each
/// shard gets, and how the scheduler backs off between them.
///
/// An attempt *fails* when the scanner cannot enter the machine at all or
/// any pipeline ends degraded. Before a retry the shard's checkpointed
/// degraded pipelines are cleared so they re-run; the worker then sleeps
/// an exponential backoff (seeded jitter, through the policy clock) and
/// tries again. A shard that fails every attempt is quarantined: surfaced
/// in the report with flight-recorder evidence, never silently dropped
/// and never an `Err` that sinks the rest of the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetHealPolicy {
    /// Attempts per shard before quarantine (≥ 1).
    pub max_attempts: u32,
    /// First backoff duration; doubles each failed attempt.
    pub backoff_base_ns: u64,
    /// Backoff ceiling.
    pub backoff_max_ns: u64,
    /// Seed for the per-shard backoff jitter (up to +25%), so concurrent
    /// retries don't stampede in lockstep.
    pub jitter_seed: u64,
}

impl Default for FleetHealPolicy {
    fn default() -> Self {
        FleetHealPolicy {
            max_attempts: 3,
            backoff_base_ns: 1_000_000,  // 1 ms
            backoff_max_ns: 100_000_000, // 100 ms
            jitter_seed: 0x5eed_4ea1,
        }
    }
}

impl FleetHealPolicy {
    /// Sets the per-shard attempt budget (clamped to ≥ 1).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the backoff window.
    pub fn with_backoff(mut self, base_ns: u64, max_ns: u64) -> Self {
        self.backoff_base_ns = base_ns;
        self.backoff_max_ns = max_ns.max(base_ns);
        self
    }

    /// Sets the jitter seed.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The backoff to sleep after `attempt` (1-based) failed on `shard`:
    /// `min(base << (attempt-1), max)` plus up to 25% seeded jitter.
    pub fn backoff_ns(&self, shard: u32, attempt: u32) -> u64 {
        let doublings = attempt.saturating_sub(1).min(32);
        let exp = self
            .backoff_base_ns
            .saturating_mul(1u64 << doublings)
            .min(self.backoff_max_ns);
        let mut rng = SplitMix64::seed_from_u64(
            self.jitter_seed ^ (u64::from(shard) << 32) ^ u64::from(attempt),
        );
        exp + rng.next_below(exp / 4 + 1)
    }
}

/// A quarantine entry as journaled and recovered: which shard, how many
/// attempts it burned, why the last one failed, and the flight-recorder
/// evidence (one fault event per failed attempt).
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineRecord {
    /// The quarantined shard's index.
    pub shard: u32,
    /// The machine's name, for operator triage without the registry.
    pub machine: String,
    /// Attempts burned before giving up.
    pub attempts: u32,
    /// Why the final attempt failed.
    pub reason: String,
    /// Flight-recorder evidence captured across the attempts.
    pub evidence: FlightDump,
}

strider_support::impl_json!(struct QuarantineRecord { shard, machine, attempts, reason, evidence });

/// Everything a durable store knows about an interrupted sweep: the
/// merged checkpoint and the shards already fenced off.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableFleetState {
    /// The merged per-shard progress.
    pub checkpoint: FleetCheckpoint,
    /// Quarantined shards, keyed by shard index.
    pub quarantined: BTreeMap<u32, QuarantineRecord>,
}

impl DurableFleetState {
    /// The quarantined shards, in shard order.
    pub fn quarantined_shards(&self) -> Vec<ShardId> {
        self.quarantined.keys().map(|&i| ShardId(i)).collect()
    }
}

/// Why a durable sweep or resume failed.
#[derive(Debug)]
pub enum DurableSweepError {
    /// The store could not be read or written. An injected-crash error
    /// ([`strider_support::fault::CrashPlan`]) lands here too — check
    /// [`DurableSweepError::is_injected_crash`].
    Io(io::Error),
    /// The store's checkpoint describes a different fleet.
    Mismatch(CheckpointMismatch),
    /// The sweep itself failed (bad parameters, cancelled scope).
    Fleet(NtStatus),
    /// A journal record's payload did not parse — the store's checksums
    /// passed, so this means a writer bug, not disk damage.
    Corrupt(JsonError),
}

impl DurableSweepError {
    /// Whether this error is a [`CrashPlan`]-injected kill — the signal
    /// crash-matrix tests use to tell a simulated death from a real bug.
    ///
    /// [`CrashPlan`]: strider_support::fault::CrashPlan
    pub fn is_injected_crash(&self) -> bool {
        matches!(self, DurableSweepError::Io(e) if strider_support::fault::CrashPlan::is_crash(e))
    }
}

impl fmt::Display for DurableSweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableSweepError::Io(e) => write!(f, "durable store I/O failed: {e}"),
            DurableSweepError::Mismatch(m) => write!(f, "checkpoint rejected: {m}"),
            DurableSweepError::Fleet(s) => write!(f, "fleet sweep failed: {s:?}"),
            DurableSweepError::Corrupt(e) => write!(f, "journal record did not parse: {e}"),
        }
    }
}

impl std::error::Error for DurableSweepError {}

impl From<io::Error> for DurableSweepError {
    fn from(e: io::Error) -> Self {
        DurableSweepError::Io(e)
    }
}

impl From<CheckpointMismatch> for DurableSweepError {
    fn from(m: CheckpointMismatch) -> Self {
        DurableSweepError::Mismatch(m)
    }
}

/// Renders the journal's base/full record: the merged checkpoint plus the
/// quarantine set. Written once at sweep start in WAL mode, and on every
/// shard completion in [`DurabilityMode::FullRewrite`].
pub(crate) fn fleet_record(
    checkpoint: &FleetCheckpoint,
    quarantined: &BTreeMap<u32, QuarantineRecord>,
) -> String {
    JsonValue::Obj(vec![
        ("kind".to_string(), JsonValue::Str("fleet".to_string())),
        ("checkpoint".to_string(), checkpoint.to_json()),
        (
            "quarantined".to_string(),
            JsonValue::Arr(quarantined.values().map(ToJson::to_json).collect()),
        ),
    ])
    .render()
}

/// Renders a per-shard completion record (WAL mode).
pub(crate) fn shard_record(shard: u32, checkpoint: &SweepCheckpoint) -> String {
    JsonValue::Obj(vec![
        ("kind".to_string(), JsonValue::Str("shard".to_string())),
        ("shard".to_string(), JsonValue::UInt(u64::from(shard))),
        ("checkpoint".to_string(), checkpoint.to_json()),
    ])
    .render()
}

/// Renders a quarantine record (WAL mode).
pub(crate) fn quarantine_record(record: &QuarantineRecord) -> String {
    JsonValue::Obj(vec![
        ("kind".to_string(), JsonValue::Str("quarantine".to_string())),
        ("record".to_string(), record.to_json()),
    ])
    .render()
}

/// Replays a durable store into the fleet state it describes: the last
/// intact `fleet` base record with every later `shard` / `quarantine`
/// record overlaid in journal order. `Ok(None)` means the store holds no
/// usable base — a cold start.
///
/// # Errors
///
/// Propagates store I/O failures; reports
/// [`DurableSweepError::Corrupt`] when a checksummed record's payload is
/// not the JSON this module writes.
pub fn recover_state(store: &RecordStore) -> Result<Option<DurableFleetState>, DurableSweepError> {
    let recovered = store.recover()?;
    let mut parsed = Vec::with_capacity(recovered.records.len());
    for record in &recovered.records {
        let text = String::from_utf8_lossy(&record.payload);
        parsed.push(JsonValue::parse(&text).map_err(DurableSweepError::Corrupt)?);
    }
    let Some(base_at) = parsed
        .iter()
        .rposition(|v| matches!(v.field("kind").and_then(JsonValue::as_str), Ok("fleet")))
    else {
        return Ok(None);
    };
    let base = &parsed[base_at];
    let mut state = DurableFleetState {
        checkpoint: FleetCheckpoint::from_json(
            base.field("checkpoint")
                .map_err(DurableSweepError::Corrupt)?,
        )
        .map_err(DurableSweepError::Corrupt)?,
        quarantined: BTreeMap::new(),
    };
    for q in Vec::<QuarantineRecord>::from_json(
        base.field("quarantined")
            .map_err(DurableSweepError::Corrupt)?,
    )
    .map_err(DurableSweepError::Corrupt)?
    {
        state.quarantined.insert(q.shard, q);
    }
    for entry in &parsed[base_at + 1..] {
        match entry.field("kind").and_then(JsonValue::as_str) {
            Ok("shard") => {
                let shard = entry
                    .field("shard")
                    .and_then(JsonValue::as_u64)
                    .map_err(DurableSweepError::Corrupt)? as usize;
                let cp = SweepCheckpoint::from_json(
                    entry
                        .field("checkpoint")
                        .map_err(DurableSweepError::Corrupt)?,
                )
                .map_err(DurableSweepError::Corrupt)?;
                if shard < state.checkpoint.shards.len() {
                    state.checkpoint.shards[shard] = cp;
                }
            }
            Ok("quarantine") => {
                let q = QuarantineRecord::from_json(
                    entry.field("record").map_err(DurableSweepError::Corrupt)?,
                )
                .map_err(DurableSweepError::Corrupt)?;
                state.quarantined.insert(q.shard, q);
            }
            _ => {
                return Err(DurableSweepError::Corrupt(JsonError(
                    "journal record with unknown kind".to_string(),
                )))
            }
        }
    }
    Ok(Some(state))
}

impl FleetCheckpoint {
    /// Recovers the durable state of an interrupted sweep from `store`
    /// and validates it against the live fleet. `Ok(None)` means a cold
    /// start (no usable base record).
    ///
    /// # Errors
    ///
    /// [`DurableSweepError::Mismatch`] when the recovered checkpoint's
    /// fleet seed, size, or machine names do not match `fleet`;
    /// [`DurableSweepError::Io`] / [`DurableSweepError::Corrupt`] when
    /// the store cannot be replayed.
    pub fn resume(
        fleet: &FleetRegistry,
        store: &RecordStore,
    ) -> Result<Option<DurableFleetState>, DurableSweepError> {
        let Some(state) = recover_state(store)? else {
            return Ok(None);
        };
        state.checkpoint.validate(fleet)?;
        Ok(Some(state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FleetSpec;

    fn tmp_store(name: &str) -> (std::path::PathBuf, RecordStore) {
        let dir =
            std::env::temp_dir().join(format!("strider-durable-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = RecordStore::open(dir.join("fleet.wal")).unwrap();
        (dir, store)
    }

    #[test]
    fn wal_replay_overlays_shard_and_quarantine_records() {
        let fleet = FleetRegistry::seeded(&FleetSpec::clean(3, 7)).unwrap();
        let (dir, store) = tmp_store("replay");
        let base = FleetCheckpoint::new(&fleet);
        store
            .append(fleet_record(&base, &BTreeMap::new()).as_bytes())
            .unwrap();
        // Journal shard 1's progress and a quarantine of shard 2.
        store
            .append(shard_record(1, &base.shards[1]).as_bytes())
            .unwrap();
        let q = QuarantineRecord {
            shard: 2,
            machine: base.machines[2].clone(),
            attempts: 3,
            reason: "files pipeline degraded".to_string(),
            evidence: FlightDump::default(),
        };
        store.append(quarantine_record(&q).as_bytes()).unwrap();

        let state = FleetCheckpoint::resume(&fleet, &store).unwrap().unwrap();
        assert_eq!(state.checkpoint.shards.len(), 3);
        assert_eq!(state.quarantined_shards(), vec![ShardId(2)]);
        assert_eq!(state.quarantined[&2].reason, "files pipeline degraded");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn resume_rejects_a_foreign_fleet_with_a_typed_error() {
        let a = FleetRegistry::seeded(&FleetSpec::clean(3, 1)).unwrap();
        let b = FleetRegistry::seeded(&FleetSpec::clean(3, 2)).unwrap();
        let (dir, store) = tmp_store("foreign");
        store
            .append(fleet_record(&FleetCheckpoint::new(&a), &BTreeMap::new()).as_bytes())
            .unwrap();
        match FleetCheckpoint::resume(&b, &store) {
            Err(DurableSweepError::Mismatch(CheckpointMismatch::Seed { recorded, live })) => {
                assert_eq!((recorded, live), (1, 2));
            }
            other => panic!("expected a seed mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn empty_store_is_a_cold_start() {
        let fleet = FleetRegistry::seeded(&FleetSpec::clean(2, 5)).unwrap();
        let (dir, store) = tmp_store("cold");
        assert!(FleetCheckpoint::resume(&fleet, &store).unwrap().is_none());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn backoff_doubles_and_caps_with_jitter() {
        let policy = FleetHealPolicy::default().with_backoff(1_000, 8_000);
        let b1 = policy.backoff_ns(0, 1);
        let b2 = policy.backoff_ns(0, 2);
        let b4 = policy.backoff_ns(0, 4);
        assert!((1_000..=1_250).contains(&b1), "{b1}");
        assert!((2_000..=2_500).contains(&b2), "{b2}");
        assert!((8_000..=10_000).contains(&b4), "capped: {b4}");
        // Deterministic for equal (shard, attempt); different across shards.
        assert_eq!(policy.backoff_ns(3, 2), policy.backoff_ns(3, 2));
    }
}
