//! The work-stealing fleet scheduler: supervised sweeps fanned across a
//! bounded scoped-thread worker pool, with batched result ingest over a
//! bounded channel.

use crate::durable::{
    fleet_record, quarantine_record, shard_record, DurabilityMode, DurableSweepError,
    FleetHealPolicy, QuarantineRecord,
};
use crate::registry::{FleetMachine, FleetRegistry, ShardId};
use crate::report::{FleetCheckpoint, FleetReport, ShardDisposition, ShardResult};
use crate::trace::{FleetTrace, SchedEventKind, ShardTrace, TraceSink};
use std::collections::{BTreeMap, VecDeque};
use strider_ghostbuster::{
    DiffReport, GhostBuster, PipelineStatus, ScanMeta, SweepCheckpoint, SweepHealth, SweepReport,
    ViewKind,
};
use strider_nt_core::NtStatus;
use strider_support::obs::{FlightRecorder, Telemetry};
use strider_support::store::RecordStore;
use strider_support::sync::{bounded, Mutex, Sender};
use strider_support::task::CancellationToken;
use strider_winapi::Machine;

/// What a streaming observer tells the scheduler after each shard result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetControl {
    /// Keep sweeping.
    Continue,
    /// Cancel the rest of the fleet: in-flight shards stop at their next
    /// supervision checkpoint (their pipelines land interrupted, so they
    /// stay unfinished in the checkpoint), queued shards are never
    /// started, and already-received results are kept.
    Stop,
}

/// Per-shard metadata captured before the machines are handed to the
/// worker pool (which holds them mutably for the whole sweep).
#[derive(Debug, Clone)]
struct ShardMeta {
    machine: String,
    family: Option<String>,
    techniques: Vec<String>,
    seeded_infected: bool,
}

impl ShardMeta {
    fn of(machine: &FleetMachine) -> Self {
        ShardMeta {
            machine: machine.machine.name().to_string(),
            family: machine.family.clone(),
            techniques: machine
                .infection
                .as_ref()
                .map(|i| i.techniques.iter().map(ToString::to_string).collect())
                .unwrap_or_default(),
            seeded_infected: machine.is_seeded_infected(),
        }
    }

    fn result(
        &self,
        shard: ShardId,
        disposition: ShardDisposition,
        report: SweepReport,
    ) -> ShardResult {
        ShardResult {
            shard,
            machine: self.machine.clone(),
            family: self.family.clone(),
            techniques: self.techniques.clone(),
            seeded_infected: self.seeded_infected,
            restored: disposition == ShardDisposition::Restored,
            disposition,
            report,
        }
    }
}

/// What a worker ships back per shard: the result, plus a snapshot of the
/// shard's checkpoint when the sweep is persisting (taken while the
/// worker still holds the shard's checkpoint lock, so the ingest thread
/// can journal it without touching the slot).
#[derive(Clone)]
struct WorkerItem {
    result: ShardResult,
    checkpoint: Option<SweepCheckpoint>,
}

/// The per-shard journaling hook a durable sweep threads into the core:
/// called on the ingest thread after each worker-swept shard, with the
/// checkpoint snapshot (absent for quarantined shards — their journal
/// entry is the quarantine record inside the result's disposition).
type PersistFn<'a> =
    &'a mut dyn FnMut(u32, Option<&SweepCheckpoint>, &ShardResult) -> std::io::Result<()>;

/// Fans supervised [`GhostBuster::inside_sweep_checkpointed`] runs across
/// a bounded pool of scoped worker threads.
///
/// Shards are dealt round-robin onto per-worker deques; a worker that
/// drains its own deque steals from the back of its neighbours', so a
/// worker stuck on one slow machine (large volume, injected stall) does
/// not strand the shards queued behind it. Each shard runs under its own
/// supervision scope — a child of the scheduler's [`CancellationToken`],
/// the policy's per-pipeline/per-sweep budgets, and *fresh* circuit
/// breakers — so one machine's pathology degrades that shard, never the
/// fleet. Results flow back to the calling thread in batches over a
/// bounded channel and are merged into a [`FleetReport`] as they arrive.
#[derive(Debug, Clone)]
pub struct FleetScheduler {
    detector: GhostBuster,
    workers: usize,
    batch: usize,
    cancellation: CancellationToken,
    heal: Option<FleetHealPolicy>,
}

impl FleetScheduler {
    /// A scheduler driving the given detector with 4 workers and a result
    /// batch size of 8.
    pub fn new(detector: GhostBuster) -> Self {
        FleetScheduler {
            detector,
            workers: 4,
            batch: 8,
            cancellation: CancellationToken::new(),
            heal: None,
        }
    }

    /// Turns on self-healing: a shard whose attempt fails (cannot enter
    /// the machine, or any pipeline degraded) is retried with seeded
    /// exponential backoff through the policy clock, up to the policy's
    /// attempt budget; past it the shard lands
    /// [`ShardDisposition::Quarantined`] with flight-recorder evidence —
    /// never a silent drop, never an `Err` that sinks the fleet.
    pub fn with_heal(mut self, policy: FleetHealPolicy) -> Self {
        self.heal = Some(policy);
        self
    }

    /// The self-healing policy, when one is set.
    pub fn heal_policy(&self) -> Option<&FleetHealPolicy> {
        self.heal.as_ref()
    }

    /// Sets the worker-pool size (minimum 1). `workers = 1` serializes the
    /// fleet, which makes interleavings deterministic in tests.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets how many shard results a worker accumulates before sending
    /// them to the ingest thread (minimum 1).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Hands the scheduler an externally owned cancellation token:
    /// cancelling it stops the whole fleet sweep at the next supervision
    /// checkpoints, exactly like a streaming observer returning
    /// [`FleetControl::Stop`].
    pub fn with_cancellation(mut self, token: CancellationToken) -> Self {
        self.cancellation = token;
        self
    }

    /// The cancellation token fleet sweeps observe.
    pub fn cancellation(&self) -> &CancellationToken {
        &self.cancellation
    }

    /// The detector each shard's sweep is cloned from.
    pub fn detector(&self) -> &GhostBuster {
        &self.detector
    }

    /// Configured worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Sweeps the whole fleet and merges the results.
    ///
    /// # Errors
    ///
    /// Fails only on fleet-level parameter errors; a failing shard lands
    /// as a degraded [`ShardResult`], not an error.
    pub fn sweep(&self, fleet: &mut FleetRegistry) -> Result<FleetReport, NtStatus> {
        let mut checkpoint = FleetCheckpoint::new(fleet);
        self.sweep_checkpointed(fleet, &mut checkpoint)
    }

    /// [`FleetScheduler::sweep`], but recording per-shard progress into
    /// `checkpoint`: shards already complete in it are restored verbatim
    /// (no scan, no telemetry) and everything else is swept and recorded.
    ///
    /// # Errors
    ///
    /// [`NtStatus::InvalidParameter`] when the checkpoint was taken on a
    /// different fleet.
    pub fn sweep_checkpointed(
        &self,
        fleet: &mut FleetRegistry,
        checkpoint: &mut FleetCheckpoint,
    ) -> Result<FleetReport, NtStatus> {
        self.sweep_streaming(fleet, checkpoint, |_| FleetControl::Continue)
    }

    /// The streaming core: every [`ShardResult`] is shown to `observer`
    /// (on the calling thread, in arrival order) before being merged;
    /// returning [`FleetControl::Stop`] cancels the remaining fleet while
    /// already-produced results keep draining into the report.
    ///
    /// # Errors
    ///
    /// [`NtStatus::InvalidParameter`] when the checkpoint was taken on a
    /// different fleet.
    pub fn sweep_streaming(
        &self,
        fleet: &mut FleetRegistry,
        checkpoint: &mut FleetCheckpoint,
        mut observer: impl FnMut(&ShardResult) -> FleetControl,
    ) -> Result<FleetReport, NtStatus> {
        self.sweep_core(
            fleet,
            checkpoint,
            &mut observer,
            &BTreeMap::new(),
            None,
            None,
        )
    }

    /// [`FleetScheduler::sweep`], but also recording the fleet timeline:
    /// every scheduler decision (shard enqueue, steal, sweep start and
    /// finish) stamped on the policy clock, plus each swept shard's
    /// telemetry snapshot. The returned [`FleetTrace`] derives queue-wait
    /// and worker-occupancy metrics and merges everything —
    /// scheduler lanes, named worker lanes, and all shard spans on
    /// globally unique tids — into one fleet-wide Chrome trace.
    ///
    /// # Errors
    ///
    /// Fails only on fleet-level parameter errors, like
    /// [`FleetScheduler::sweep`].
    pub fn sweep_traced(
        &self,
        fleet: &mut FleetRegistry,
    ) -> Result<(FleetReport, FleetTrace), NtStatus> {
        let mut checkpoint = FleetCheckpoint::new(fleet);
        self.sweep_traced_checkpointed(fleet, &mut checkpoint)
    }

    /// [`FleetScheduler::sweep_traced`] with checkpoint/resume semantics:
    /// shards already complete in `checkpoint` are restored without
    /// appearing in the timeline (they never reach a worker).
    ///
    /// # Errors
    ///
    /// [`NtStatus::InvalidParameter`] when the checkpoint was taken on a
    /// different fleet.
    pub fn sweep_traced_checkpointed(
        &self,
        fleet: &mut FleetRegistry,
        checkpoint: &mut FleetCheckpoint,
    ) -> Result<(FleetReport, FleetTrace), NtStatus> {
        let clock = self.detector.policy().clock().clone();
        let sink = TraceSink::new(clock.clone());
        let start_ns = clock.now_ns();
        let mut observer = |_: &ShardResult| FleetControl::Continue;
        let report = self.sweep_core(
            fleet,
            checkpoint,
            &mut observer,
            &BTreeMap::new(),
            None,
            Some(&sink),
        )?;
        let end_ns = clock.now_ns();
        let (workers, events) = sink.into_parts();
        let shards = report
            .results()
            .iter()
            .filter_map(|r| {
                r.report.telemetry.clone().map(|telemetry| ShardTrace {
                    shard: r.shard.0,
                    machine: r.machine.clone(),
                    telemetry,
                })
            })
            .collect();
        Ok((
            report,
            FleetTrace {
                workers,
                start_ns,
                end_ns,
                events,
                shards,
            },
        ))
    }

    /// A crash-safe fleet sweep journaled into `store`: progress is
    /// recovered from the store (typed-validated against the live fleet),
    /// already-complete shards are restored, previously quarantined
    /// shards stay fenced, and every newly completed shard is persisted
    /// before the sweep moves on — kill the process at any byte of any
    /// write and a rerun of this method resumes to a merged report whose
    /// [`FleetReport::result_digest`] is byte-identical to an
    /// uninterrupted run's.
    ///
    /// In [`DurabilityMode::WalAppend`] a fresh sweep writes one base
    /// record and then one O(1) appended record per shard;
    /// [`DurabilityMode::FullRewrite`] re-commits the whole merged
    /// checkpoint per shard (the naive baseline the bench quantifies).
    ///
    /// # Errors
    ///
    /// [`DurableSweepError::Mismatch`] when the store's checkpoint was
    /// taken on a different fleet; [`DurableSweepError::Io`] when the
    /// store fails (an injected [`CrashPlan`] kill surfaces here — the
    /// simulated process death); [`DurableSweepError::Fleet`] for sweep
    /// parameter errors.
    ///
    /// [`CrashPlan`]: strider_support::fault::CrashPlan
    pub fn sweep_durable(
        &self,
        fleet: &mut FleetRegistry,
        store: &RecordStore,
        mode: DurabilityMode,
    ) -> Result<FleetReport, DurableSweepError> {
        let (mut checkpoint, fenced) = match FleetCheckpoint::resume(fleet, store)? {
            Some(state) => (state.checkpoint, state.quarantined),
            None => (FleetCheckpoint::new(fleet), BTreeMap::new()),
        };
        // A fresh WAL needs its base record before any shard record can
        // land; a resumed store already has one. FullRewrite's base is
        // simply its first whole-checkpoint commit.
        if mode == DurabilityMode::WalAppend && store.recover()?.records.is_empty() {
            store.append(fleet_record(&checkpoint, &fenced).as_bytes())?;
        }
        // The journaling closure keeps its own merged view (`shadow`) so
        // FullRewrite can re-commit the whole state while the live
        // checkpoint is mutably held by the worker slots.
        let mut shadow = checkpoint.clone();
        let mut shadow_fenced = fenced.clone();
        let mut io_failure: Option<std::io::Error> = None;
        let mut persist = |shard: u32,
                           snapshot: Option<&SweepCheckpoint>,
                           result: &ShardResult|
         -> std::io::Result<()> {
            let outcome = (|| -> std::io::Result<()> {
                if let ShardDisposition::Quarantined {
                    attempts,
                    reason,
                    evidence,
                } = &result.disposition
                {
                    let q = QuarantineRecord {
                        shard,
                        machine: result.machine.clone(),
                        attempts: *attempts,
                        reason: reason.clone(),
                        evidence: evidence.clone(),
                    };
                    if mode == DurabilityMode::WalAppend {
                        store.append(quarantine_record(&q).as_bytes())?;
                    }
                    shadow_fenced.insert(shard, q);
                } else if let Some(cp) = snapshot {
                    if mode == DurabilityMode::WalAppend {
                        store.append(shard_record(shard, cp).as_bytes())?;
                    }
                    shadow.shards[shard as usize] = cp.clone();
                }
                if mode == DurabilityMode::FullRewrite {
                    store.commit(fleet_record(&shadow, &shadow_fenced).as_bytes())?;
                }
                Ok(())
            })();
            if let Err(e) = outcome {
                let stub = std::io::Error::new(e.kind(), "journal write failed");
                io_failure = Some(e);
                return Err(stub);
            }
            Ok(())
        };
        let mut observer = |_: &ShardResult| FleetControl::Continue;
        let outcome = self.sweep_core(
            fleet,
            &mut checkpoint,
            &mut observer,
            &fenced,
            Some(&mut persist),
            None,
        );
        if let Some(e) = io_failure {
            return Err(DurableSweepError::Io(e));
        }
        outcome.map_err(DurableSweepError::Fleet)
    }

    /// The shared sweep engine behind every public sweep entry point.
    ///
    /// `quarantined` are shards a previous (durable) run already fenced:
    /// they are surfaced as [`ShardDisposition::Quarantined`] results
    /// without being swept. `persist` is the durable journaling hook,
    /// called on the ingest thread per worker-swept shard; when it fails
    /// the run cancels (the simulated process death) and stops journaling.
    /// `tracer` records the scheduler timeline for traced sweeps.
    fn sweep_core(
        &self,
        fleet: &mut FleetRegistry,
        checkpoint: &mut FleetCheckpoint,
        observer: &mut dyn FnMut(&ShardResult) -> FleetControl,
        quarantined: &BTreeMap<u32, QuarantineRecord>,
        mut persist: Option<PersistFn<'_>>,
        tracer: Option<&TraceSink>,
    ) -> Result<FleetReport, NtStatus> {
        if !checkpoint.matches(fleet) {
            return Err(NtStatus::InvalidParameter);
        }
        let machines = fleet.len() as u64;
        let meta: Vec<ShardMeta> = fleet.machines().iter().map(ShardMeta::of).collect();
        let mut report = FleetReport::default();
        // The whole fleet run shares one cancellation root — a child of the
        // scheduler token, so external cancels propagate in while a Stop
        // here does not poison the scheduler for later (resume) runs.
        let root = self.cancellation.child();

        // Shards already complete in the checkpoint are restored on the
        // calling thread — no scan, no worker, no telemetry — and shards
        // a previous run quarantined stay fenced.
        let mut pending: Vec<usize> = Vec::new();
        for (i, shard) in checkpoint.shards.iter().enumerate() {
            if let Some(q) = quarantined.get(&(i as u32)) {
                let disposition = ShardDisposition::Quarantined {
                    attempts: q.attempts,
                    reason: q.reason.clone(),
                    evidence: q.evidence.clone(),
                };
                let fallback =
                    entry_failure_report(&fleet.machines()[i].machine, "shard is quarantined");
                let result = meta[i].result(ShardId(i as u32), disposition, fallback);
                if observer(&result) == FleetControl::Stop {
                    root.cancel();
                }
                report.absorb(result);
            } else if shard.is_complete() {
                let result = meta[i].result(
                    ShardId(i as u32),
                    ShardDisposition::Restored,
                    restore_report(shard),
                );
                if observer(&result) == FleetControl::Stop {
                    root.cancel();
                }
                report.absorb(result);
            } else {
                pending.push(i);
            }
        }

        if !pending.is_empty() && !root.is_cancelled() {
            let workers = self.workers.min(pending.len());
            let snapshot_checkpoints = persist.is_some();

            if let Some(t) = tracer {
                t.set_workers(workers);
            }

            // Deal pending shards round-robin onto per-worker deques.
            let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
            for (n, &shard) in pending.iter().enumerate() {
                deques[n % workers].push_back(shard);
                if let Some(t) = tracer {
                    t.record(
                        shard as u32,
                        SchedEventKind::Enqueue {
                            worker: n % workers,
                        },
                    );
                }
            }
            let queues: Vec<Mutex<VecDeque<usize>>> = deques.into_iter().map(Mutex::new).collect();

            // Exclusive per-shard slots: each worker locks exactly the
            // machine and checkpoint of the shard it is sweeping.
            let machine_slots: Vec<Mutex<&mut FleetMachine>> =
                fleet.machines_mut().iter_mut().map(Mutex::new).collect();
            let checkpoint_slots: Vec<Mutex<&mut SweepCheckpoint>> =
                checkpoint.shards.iter_mut().map(Mutex::new).collect();

            let (tx, rx) = bounded::<Vec<WorkerItem>>(workers);
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let tx = tx.clone();
                    let root = root.clone();
                    let queues = &queues;
                    let machine_slots = &machine_slots;
                    let checkpoint_slots = &checkpoint_slots;
                    let meta = &meta;
                    std::thread::Builder::new()
                        .name(format!("fleet-worker-{w}"))
                        .spawn_scoped(scope, move || {
                            self.worker(
                                w,
                                &root,
                                queues,
                                machine_slots,
                                checkpoint_slots,
                                meta,
                                snapshot_checkpoints,
                                &tx,
                                tracer,
                            );
                        })
                        .expect("spawn fleet worker");
                }
                drop(tx);
                // Ingest on the calling thread: drain batches as workers
                // produce them — the bounded channel applies backpressure
                // if this loop (the observer or the journal) is slow.
                for batch in rx.iter() {
                    for item in batch {
                        if let Some(p) = persist.as_mut() {
                            let shard = item.result.shard.0;
                            if p(shard, item.checkpoint.as_ref(), &item.result).is_err() {
                                // The journal write died (a crash plan, a
                                // full disk): treat it as the process
                                // dying — cancel the fleet and stop
                                // journaling, but keep draining so the
                                // scoped workers can exit.
                                persist = None;
                                root.cancel();
                            }
                        }
                        if observer(&item.result) == FleetControl::Stop {
                            root.cancel();
                        }
                        report.absorb(item.result);
                    }
                }
            });
        }

        report.finalize(machines);
        Ok(report)
    }

    /// One worker's loop: drain the own deque from the front, then steal
    /// from the back of the neighbours'.
    #[allow(clippy::too_many_arguments)]
    fn worker(
        &self,
        index: usize,
        root: &CancellationToken,
        queues: &[Mutex<VecDeque<usize>>],
        machine_slots: &[Mutex<&mut FleetMachine>],
        checkpoint_slots: &[Mutex<&mut SweepCheckpoint>],
        meta: &[ShardMeta],
        snapshot_checkpoints: bool,
        tx: &Sender<Vec<WorkerItem>>,
        tracer: Option<&TraceSink>,
    ) {
        let mut batch: Vec<WorkerItem> = Vec::with_capacity(self.batch);
        loop {
            if root.is_cancelled() {
                break;
            }
            let Some((shard, stolen_from)) = take_shard(index, queues) else {
                break;
            };
            if let Some(t) = tracer {
                if let Some(victim) = stolen_from {
                    t.record(
                        shard as u32,
                        SchedEventKind::Steal {
                            from: victim,
                            by: index,
                        },
                    );
                }
            }
            let mut slot = machine_slots[shard].lock();
            let mut shard_checkpoint = checkpoint_slots[shard].lock();
            if let Some(t) = tracer {
                t.record(shard as u32, SchedEventKind::Start { worker: index });
            }
            let (report, disposition) =
                self.run_shard(shard as u32, &mut slot.machine, &mut shard_checkpoint, root);
            if let Some(t) = tracer {
                t.record(shard as u32, SchedEventKind::Finish { worker: index });
            }
            let snapshot = (snapshot_checkpoints && !disposition.is_quarantined())
                .then(|| (**shard_checkpoint).clone());
            drop(shard_checkpoint);
            drop(slot);
            batch.push(WorkerItem {
                result: meta[shard].result(ShardId(shard as u32), disposition, report),
                checkpoint: snapshot,
            });
            if batch.len() >= self.batch && tx.send(std::mem::take(&mut batch)).is_err() {
                break;
            }
        }
        if !batch.is_empty() {
            let _ = tx.send(batch);
        }
    }

    /// One shard, end to end: a single sweep attempt without a heal
    /// policy; with one, the self-healing loop — retry failed attempts
    /// (entry failure or any degraded pipeline) with seeded exponential
    /// backoff through the policy clock, clearing the checkpointed
    /// degraded pipelines so they re-run, and quarantine the shard with
    /// flight-recorder evidence once the attempt budget is spent.
    fn run_shard(
        &self,
        shard: u32,
        machine: &mut Machine,
        checkpoint: &mut SweepCheckpoint,
        root: &CancellationToken,
    ) -> (SweepReport, ShardDisposition) {
        let Some(heal) = &self.heal else {
            let report = self.sweep_shard(machine, checkpoint, root);
            return (report, ShardDisposition::Swept);
        };
        let clock = self.detector.policy().clock().clone();
        let recorder = FlightRecorder::new(clock.clone());
        let mut attempt = 1u32;
        loop {
            let report = self.sweep_shard(machine, checkpoint, root);
            let degraded = report.health.degraded_pipelines();
            let succeeded = |attempt: u32| {
                if attempt == 1 {
                    ShardDisposition::Swept
                } else {
                    ShardDisposition::Recovered { attempts: attempt }
                }
            };
            if degraded.is_empty() {
                return (report, succeeded(attempt));
            }
            let reason = format!("degraded pipelines: {}", degraded.join(", "));
            recorder.fault(
                "shard.attempt",
                &format!(
                    "shard-{shard:03} attempt {attempt}/{}: {reason}",
                    heal.max_attempts
                ),
            );
            if root.is_cancelled() {
                // The degradation came from (or raced with) a fleet-wide
                // cancel, not the machine — never quarantine on it.
                return (report, succeeded(attempt));
            }
            if attempt >= heal.max_attempts {
                recorder.fault(
                    "shard.quarantine",
                    &format!("shard-{shard:03} fenced after {attempt} attempts"),
                );
                return (
                    report,
                    ShardDisposition::Quarantined {
                        attempts: attempt,
                        reason,
                        evidence: recorder.snapshot(),
                    },
                );
            }
            // Give the retry a clean slate on exactly the failed
            // pipelines: degraded outcomes that were checkpointed (e.g. a
            // lost truth source) must be cleared or the next attempt
            // would restore the failure instead of re-scanning.
            clear_degraded(checkpoint);
            clock.sleep_ns(heal.backoff_ns(shard, attempt));
            attempt += 1;
        }
    }

    /// Runs one shard's supervised sweep with per-shard isolation: its own
    /// cancellation child, fresh circuit breakers (rebuilt by
    /// `with_policy`), and its own telemetry registry so latency sketches
    /// never bleed across machines.
    fn sweep_shard(
        &self,
        machine: &mut Machine,
        checkpoint: &mut SweepCheckpoint,
        root: &CancellationToken,
    ) -> SweepReport {
        let policy = self.detector.policy().clone();
        let telemetry = Telemetry::with_clock(policy.clock().clone());
        let detector = self
            .detector
            .clone()
            .with_policy(policy)
            .with_cancellation(root.child())
            .with_telemetry(telemetry);
        match detector.inside_sweep_checkpointed(machine, checkpoint) {
            Ok(report) => report,
            // The sweep itself degrades per pipeline; an Err here means the
            // scanner could not even enter the machine. That is a shard
            // failure, not a fleet failure: synthesize an all-degraded
            // report so the rollups show it.
            Err(e) => entry_failure_report(machine, &e.to_string()),
        }
    }
}

/// Pops the next shard: own deque front first (cache-warm order), then a
/// steal from the back of another worker's deque. Returns the shard and,
/// for a steal, the deque it came from.
fn take_shard(own: usize, queues: &[Mutex<VecDeque<usize>>]) -> Option<(usize, Option<usize>)> {
    if let Some(shard) = queues[own].lock().pop_front() {
        return Some((shard, None));
    }
    let n = queues.len();
    for offset in 1..n {
        let victim = (own + offset) % n;
        if let Some(shard) = queues[victim].lock().pop_back() {
            return Some((shard, Some(victim)));
        }
    }
    None
}

/// Clears a shard checkpoint's degraded pipeline entries so a heal retry
/// re-scans exactly what failed while keeping the healthy pipelines'
/// recorded outcomes.
fn clear_degraded(checkpoint: &mut SweepCheckpoint) {
    for entry in [
        &mut checkpoint.files,
        &mut checkpoint.registry,
        &mut checkpoint.processes,
        &mut checkpoint.modules,
    ] {
        if entry.as_ref().is_some_and(|cp| cp.status.is_degraded()) {
            *entry = None;
        }
    }
}

/// Rebuilds a [`SweepReport`] from a complete checkpoint — the restored
/// shard's reports and health verbatim, no telemetry, no black boxes.
fn restore_report(checkpoint: &SweepCheckpoint) -> SweepReport {
    let files = checkpoint.files.clone().expect("complete checkpoint");
    let registry = checkpoint.registry.clone().expect("complete checkpoint");
    let processes = checkpoint.processes.clone().expect("complete checkpoint");
    let modules = checkpoint.modules.clone().expect("complete checkpoint");
    SweepReport {
        files: files.report,
        hooks: registry.report,
        processes: processes.report,
        modules: modules.report,
        health: SweepHealth {
            files: files.status,
            registry: registry.status,
            processes: processes.status,
            modules: modules.status,
        },
        telemetry: None,
        black_boxes: Vec::new(),
    }
}

/// The all-degraded report for a machine the scanner could not enter.
fn entry_failure_report(machine: &Machine, reason: &str) -> SweepReport {
    let now = machine.now();
    let empty = |view: ViewKind| DiffReport {
        truth_meta: ScanMeta::new(view, now),
        lie_meta: ScanMeta::new(ViewKind::HighLevelWin32, now),
        detections: Vec::new(),
        phantom_in_lie: Vec::new(),
    };
    let degraded = || PipelineStatus::Degraded {
        reason: format!("could not enter machine: {reason}"),
    };
    SweepReport {
        files: empty(ViewKind::LowLevelMft),
        hooks: empty(ViewKind::LowLevelHiveParse),
        processes: empty(ViewKind::LowLevelApl),
        modules: empty(ViewKind::LowLevelKernelModules),
        health: SweepHealth {
            files: degraded(),
            registry: degraded(),
            processes: degraded(),
            modules: degraded(),
        },
        telemetry: None,
        black_boxes: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FleetSpec;
    use strider_ghostbuster::{AdvancedSource, ScanPolicy};

    fn scheduler() -> FleetScheduler {
        FleetScheduler::new(
            GhostBuster::new()
                .with_advanced(AdvancedSource::ThreadTable)
                .with_policy(ScanPolicy::supervised()),
        )
    }

    #[test]
    fn sweep_detects_exactly_the_seeded_infections() {
        let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(10, 11).with_infected(5)).unwrap();
        let report = scheduler().with_workers(2).sweep(&mut fleet).unwrap();
        assert_eq!(report.machines, 10);
        assert_eq!(report.swept, 10);
        assert_eq!(report.seeded_infected, 5);
        assert_eq!(report.infected, 5, "{report}");
        assert!(report.unswept.is_empty());
        // All five families are seeded once and each is detected.
        assert_eq!(report.families.len(), 5, "{:?}", report.families);
        for (family, p) in &report.families {
            assert_eq!(p.detected, p.seeded, "family {family} missed");
        }
        // Every detected machine matches the seeded ground truth exactly.
        for result in report.results() {
            assert_eq!(
                result.report.is_infected(),
                result.seeded_infected,
                "{} wrong verdict",
                result.shard
            );
        }
    }

    #[test]
    fn checkpoint_mismatch_is_rejected() {
        let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(2, 1)).unwrap();
        let other = FleetRegistry::seeded(&FleetSpec::clean(2, 2)).unwrap();
        let mut checkpoint = FleetCheckpoint::new(&other);
        let err = scheduler()
            .sweep_checkpointed(&mut fleet, &mut checkpoint)
            .unwrap_err();
        assert_eq!(err, NtStatus::InvalidParameter);
    }

    #[test]
    fn restored_shards_are_not_rescanned() {
        let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(4, 21).with_infected(2)).unwrap();
        let mut checkpoint = FleetCheckpoint::new(&fleet);
        let first = scheduler()
            .sweep_checkpointed(&mut fleet, &mut checkpoint)
            .unwrap();
        assert!(checkpoint.is_complete());
        let second = scheduler()
            .sweep_checkpointed(&mut fleet, &mut checkpoint)
            .unwrap();
        assert_eq!(second.swept, 4);
        assert!(second.results().iter().all(|r| r.restored));
        assert!(second
            .results()
            .iter()
            .all(|r| r.report.telemetry.is_none()));
        assert_eq!(second.infected, first.infected);
    }
}
