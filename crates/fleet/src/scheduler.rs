//! The work-stealing fleet scheduler: supervised sweeps fanned across a
//! bounded scoped-thread worker pool, with batched result ingest over a
//! bounded channel.

use crate::registry::{FleetMachine, FleetRegistry, ShardId};
use crate::report::{FleetCheckpoint, FleetReport, ShardResult};
use std::collections::VecDeque;
use strider_ghostbuster::{
    DiffReport, GhostBuster, PipelineStatus, ScanMeta, SweepCheckpoint, SweepHealth, SweepReport,
    ViewKind,
};
use strider_nt_core::NtStatus;
use strider_support::obs::Telemetry;
use strider_support::sync::{bounded, Mutex, Sender};
use strider_support::task::CancellationToken;
use strider_winapi::Machine;

/// What a streaming observer tells the scheduler after each shard result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetControl {
    /// Keep sweeping.
    Continue,
    /// Cancel the rest of the fleet: in-flight shards stop at their next
    /// supervision checkpoint (their pipelines land interrupted, so they
    /// stay unfinished in the checkpoint), queued shards are never
    /// started, and already-received results are kept.
    Stop,
}

/// Per-shard metadata captured before the machines are handed to the
/// worker pool (which holds them mutably for the whole sweep).
#[derive(Debug, Clone)]
struct ShardMeta {
    machine: String,
    family: Option<String>,
    techniques: Vec<String>,
    seeded_infected: bool,
}

impl ShardMeta {
    fn of(machine: &FleetMachine) -> Self {
        ShardMeta {
            machine: machine.machine.name().to_string(),
            family: machine.family.clone(),
            techniques: machine
                .infection
                .as_ref()
                .map(|i| i.techniques.iter().map(ToString::to_string).collect())
                .unwrap_or_default(),
            seeded_infected: machine.is_seeded_infected(),
        }
    }

    fn result(&self, shard: ShardId, restored: bool, report: SweepReport) -> ShardResult {
        ShardResult {
            shard,
            machine: self.machine.clone(),
            family: self.family.clone(),
            techniques: self.techniques.clone(),
            seeded_infected: self.seeded_infected,
            restored,
            report,
        }
    }
}

/// Fans supervised [`GhostBuster::inside_sweep_checkpointed`] runs across
/// a bounded pool of scoped worker threads.
///
/// Shards are dealt round-robin onto per-worker deques; a worker that
/// drains its own deque steals from the back of its neighbours', so a
/// worker stuck on one slow machine (large volume, injected stall) does
/// not strand the shards queued behind it. Each shard runs under its own
/// supervision scope — a child of the scheduler's [`CancellationToken`],
/// the policy's per-pipeline/per-sweep budgets, and *fresh* circuit
/// breakers — so one machine's pathology degrades that shard, never the
/// fleet. Results flow back to the calling thread in batches over a
/// bounded channel and are merged into a [`FleetReport`] as they arrive.
#[derive(Debug, Clone)]
pub struct FleetScheduler {
    detector: GhostBuster,
    workers: usize,
    batch: usize,
    cancellation: CancellationToken,
}

impl FleetScheduler {
    /// A scheduler driving the given detector with 4 workers and a result
    /// batch size of 8.
    pub fn new(detector: GhostBuster) -> Self {
        FleetScheduler {
            detector,
            workers: 4,
            batch: 8,
            cancellation: CancellationToken::new(),
        }
    }

    /// Sets the worker-pool size (minimum 1). `workers = 1` serializes the
    /// fleet, which makes interleavings deterministic in tests.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets how many shard results a worker accumulates before sending
    /// them to the ingest thread (minimum 1).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Hands the scheduler an externally owned cancellation token:
    /// cancelling it stops the whole fleet sweep at the next supervision
    /// checkpoints, exactly like a streaming observer returning
    /// [`FleetControl::Stop`].
    pub fn with_cancellation(mut self, token: CancellationToken) -> Self {
        self.cancellation = token;
        self
    }

    /// The cancellation token fleet sweeps observe.
    pub fn cancellation(&self) -> &CancellationToken {
        &self.cancellation
    }

    /// The detector each shard's sweep is cloned from.
    pub fn detector(&self) -> &GhostBuster {
        &self.detector
    }

    /// Configured worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Sweeps the whole fleet and merges the results.
    ///
    /// # Errors
    ///
    /// Fails only on fleet-level parameter errors; a failing shard lands
    /// as a degraded [`ShardResult`], not an error.
    pub fn sweep(&self, fleet: &mut FleetRegistry) -> Result<FleetReport, NtStatus> {
        let mut checkpoint = FleetCheckpoint::new(fleet);
        self.sweep_checkpointed(fleet, &mut checkpoint)
    }

    /// [`FleetScheduler::sweep`], but recording per-shard progress into
    /// `checkpoint`: shards already complete in it are restored verbatim
    /// (no scan, no telemetry) and everything else is swept and recorded.
    ///
    /// # Errors
    ///
    /// [`NtStatus::InvalidParameter`] when the checkpoint was taken on a
    /// different fleet.
    pub fn sweep_checkpointed(
        &self,
        fleet: &mut FleetRegistry,
        checkpoint: &mut FleetCheckpoint,
    ) -> Result<FleetReport, NtStatus> {
        self.sweep_streaming(fleet, checkpoint, |_| FleetControl::Continue)
    }

    /// The streaming core: every [`ShardResult`] is shown to `observer`
    /// (on the calling thread, in arrival order) before being merged;
    /// returning [`FleetControl::Stop`] cancels the remaining fleet while
    /// already-produced results keep draining into the report.
    ///
    /// # Errors
    ///
    /// [`NtStatus::InvalidParameter`] when the checkpoint was taken on a
    /// different fleet.
    pub fn sweep_streaming(
        &self,
        fleet: &mut FleetRegistry,
        checkpoint: &mut FleetCheckpoint,
        mut observer: impl FnMut(&ShardResult) -> FleetControl,
    ) -> Result<FleetReport, NtStatus> {
        if !checkpoint.matches(fleet) {
            return Err(NtStatus::InvalidParameter);
        }
        let machines = fleet.len() as u64;
        let meta: Vec<ShardMeta> = fleet.machines().iter().map(ShardMeta::of).collect();
        let mut report = FleetReport::default();
        // The whole fleet run shares one cancellation root — a child of the
        // scheduler token, so external cancels propagate in while a Stop
        // here does not poison the scheduler for later (resume) runs.
        let root = self.cancellation.child();

        // Shards already complete in the checkpoint are restored on the
        // calling thread — no scan, no worker, no telemetry.
        let mut pending: Vec<usize> = Vec::new();
        for (i, shard) in checkpoint.shards.iter().enumerate() {
            if shard.is_complete() {
                let result = meta[i].result(ShardId(i as u32), true, restore_report(shard));
                if observer(&result) == FleetControl::Stop {
                    root.cancel();
                }
                report.absorb(result);
            } else {
                pending.push(i);
            }
        }

        if !pending.is_empty() && !root.is_cancelled() {
            let workers = self.workers.min(pending.len());

            // Deal pending shards round-robin onto per-worker deques.
            let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
            for (n, &shard) in pending.iter().enumerate() {
                deques[n % workers].push_back(shard);
            }
            let queues: Vec<Mutex<VecDeque<usize>>> = deques.into_iter().map(Mutex::new).collect();

            // Exclusive per-shard slots: each worker locks exactly the
            // machine and checkpoint of the shard it is sweeping.
            let machine_slots: Vec<Mutex<&mut FleetMachine>> =
                fleet.machines_mut().iter_mut().map(Mutex::new).collect();
            let checkpoint_slots: Vec<Mutex<&mut SweepCheckpoint>> =
                checkpoint.shards.iter_mut().map(Mutex::new).collect();

            let (tx, rx) = bounded::<Vec<ShardResult>>(workers);
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let tx = tx.clone();
                    let root = root.clone();
                    let queues = &queues;
                    let machine_slots = &machine_slots;
                    let checkpoint_slots = &checkpoint_slots;
                    let meta = &meta;
                    std::thread::Builder::new()
                        .name(format!("fleet-worker-{w}"))
                        .spawn_scoped(scope, move || {
                            self.worker(
                                w,
                                &root,
                                queues,
                                machine_slots,
                                checkpoint_slots,
                                meta,
                                &tx,
                            );
                        })
                        .expect("spawn fleet worker");
                }
                drop(tx);
                // Ingest on the calling thread: drain batches as workers
                // produce them — the bounded channel applies backpressure
                // if this loop (the observer) is slow.
                for batch in rx.iter() {
                    for result in batch {
                        if observer(&result) == FleetControl::Stop {
                            root.cancel();
                        }
                        report.absorb(result);
                    }
                }
            });
        }

        report.finalize(machines);
        Ok(report)
    }

    /// One worker's loop: drain the own deque from the front, then steal
    /// from the back of the neighbours'.
    #[allow(clippy::too_many_arguments)]
    fn worker(
        &self,
        index: usize,
        root: &CancellationToken,
        queues: &[Mutex<VecDeque<usize>>],
        machine_slots: &[Mutex<&mut FleetMachine>],
        checkpoint_slots: &[Mutex<&mut SweepCheckpoint>],
        meta: &[ShardMeta],
        tx: &Sender<Vec<ShardResult>>,
    ) {
        let mut batch: Vec<ShardResult> = Vec::with_capacity(self.batch);
        loop {
            if root.is_cancelled() {
                break;
            }
            let Some(shard) = take_shard(index, queues) else {
                break;
            };
            let mut slot = machine_slots[shard].lock();
            let mut shard_checkpoint = checkpoint_slots[shard].lock();
            let report = self.sweep_shard(&mut slot.machine, &mut shard_checkpoint, root);
            drop(shard_checkpoint);
            drop(slot);
            batch.push(meta[shard].result(ShardId(shard as u32), false, report));
            if batch.len() >= self.batch && tx.send(std::mem::take(&mut batch)).is_err() {
                break;
            }
        }
        if !batch.is_empty() {
            let _ = tx.send(batch);
        }
    }

    /// Runs one shard's supervised sweep with per-shard isolation: its own
    /// cancellation child, fresh circuit breakers (rebuilt by
    /// `with_policy`), and its own telemetry registry so latency sketches
    /// never bleed across machines.
    fn sweep_shard(
        &self,
        machine: &mut Machine,
        checkpoint: &mut SweepCheckpoint,
        root: &CancellationToken,
    ) -> SweepReport {
        let policy = self.detector.policy().clone();
        let telemetry = Telemetry::with_clock(policy.clock().clone());
        let detector = self
            .detector
            .clone()
            .with_policy(policy)
            .with_cancellation(root.child())
            .with_telemetry(telemetry);
        match detector.inside_sweep_checkpointed(machine, checkpoint) {
            Ok(report) => report,
            // The sweep itself degrades per pipeline; an Err here means the
            // scanner could not even enter the machine. That is a shard
            // failure, not a fleet failure: synthesize an all-degraded
            // report so the rollups show it.
            Err(e) => entry_failure_report(machine, &e.to_string()),
        }
    }
}

/// Pops the next shard: own deque front first (cache-warm order), then a
/// steal from the back of another worker's deque.
fn take_shard(own: usize, queues: &[Mutex<VecDeque<usize>>]) -> Option<usize> {
    if let Some(shard) = queues[own].lock().pop_front() {
        return Some(shard);
    }
    let n = queues.len();
    for offset in 1..n {
        if let Some(shard) = queues[(own + offset) % n].lock().pop_back() {
            return Some(shard);
        }
    }
    None
}

/// Rebuilds a [`SweepReport`] from a complete checkpoint — the restored
/// shard's reports and health verbatim, no telemetry, no black boxes.
fn restore_report(checkpoint: &SweepCheckpoint) -> SweepReport {
    let files = checkpoint.files.clone().expect("complete checkpoint");
    let registry = checkpoint.registry.clone().expect("complete checkpoint");
    let processes = checkpoint.processes.clone().expect("complete checkpoint");
    let modules = checkpoint.modules.clone().expect("complete checkpoint");
    SweepReport {
        files: files.report,
        hooks: registry.report,
        processes: processes.report,
        modules: modules.report,
        health: SweepHealth {
            files: files.status,
            registry: registry.status,
            processes: processes.status,
            modules: modules.status,
        },
        telemetry: None,
        black_boxes: Vec::new(),
    }
}

/// The all-degraded report for a machine the scanner could not enter.
fn entry_failure_report(machine: &Machine, reason: &str) -> SweepReport {
    let now = machine.now();
    let empty = |view: ViewKind| DiffReport {
        truth_meta: ScanMeta::new(view, now),
        lie_meta: ScanMeta::new(ViewKind::HighLevelWin32, now),
        detections: Vec::new(),
        phantom_in_lie: Vec::new(),
    };
    let degraded = || PipelineStatus::Degraded {
        reason: format!("could not enter machine: {reason}"),
    };
    SweepReport {
        files: empty(ViewKind::LowLevelMft),
        hooks: empty(ViewKind::LowLevelHiveParse),
        processes: empty(ViewKind::LowLevelApl),
        modules: empty(ViewKind::LowLevelKernelModules),
        health: SweepHealth {
            files: degraded(),
            registry: degraded(),
            processes: degraded(),
            modules: degraded(),
        },
        telemetry: None,
        black_boxes: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FleetSpec;
    use strider_ghostbuster::{AdvancedSource, ScanPolicy};

    fn scheduler() -> FleetScheduler {
        FleetScheduler::new(
            GhostBuster::new()
                .with_advanced(AdvancedSource::ThreadTable)
                .with_policy(ScanPolicy::supervised()),
        )
    }

    #[test]
    fn sweep_detects_exactly_the_seeded_infections() {
        let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(10, 11).with_infected(5)).unwrap();
        let report = scheduler().with_workers(2).sweep(&mut fleet).unwrap();
        assert_eq!(report.machines, 10);
        assert_eq!(report.swept, 10);
        assert_eq!(report.seeded_infected, 5);
        assert_eq!(report.infected, 5, "{report}");
        assert!(report.unswept.is_empty());
        // All five families are seeded once and each is detected.
        assert_eq!(report.families.len(), 5, "{:?}", report.families);
        for (family, p) in &report.families {
            assert_eq!(p.detected, p.seeded, "family {family} missed");
        }
        // Every detected machine matches the seeded ground truth exactly.
        for result in report.results() {
            assert_eq!(
                result.report.is_infected(),
                result.seeded_infected,
                "{} wrong verdict",
                result.shard
            );
        }
    }

    #[test]
    fn checkpoint_mismatch_is_rejected() {
        let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(2, 1)).unwrap();
        let other = FleetRegistry::seeded(&FleetSpec::clean(2, 2)).unwrap();
        let mut checkpoint = FleetCheckpoint::new(&other);
        let err = scheduler()
            .sweep_checkpointed(&mut fleet, &mut checkpoint)
            .unwrap_err();
        assert_eq!(err, NtStatus::InvalidParameter);
    }

    #[test]
    fn restored_shards_are_not_rescanned() {
        let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(4, 21).with_infected(2)).unwrap();
        let mut checkpoint = FleetCheckpoint::new(&fleet);
        let first = scheduler()
            .sweep_checkpointed(&mut fleet, &mut checkpoint)
            .unwrap();
        assert!(checkpoint.is_complete());
        let second = scheduler()
            .sweep_checkpointed(&mut fleet, &mut checkpoint)
            .unwrap();
        assert_eq!(second.swept, 4);
        assert!(second.results().iter().all(|r| r.restored));
        assert!(second
            .results()
            .iter()
            .all(|r| r.report.telemetry.is_none()));
        assert_eq!(second.infected, first.infected);
    }
}
