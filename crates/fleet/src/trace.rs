//! The unified fleet timeline: scheduler decisions (enqueue, steal,
//! start, finish) stamped on the policy clock, merged with every swept
//! shard's telemetry into one fleet-wide Chrome trace.
//!
//! Per-shard telemetries are frozen independently, so their
//! [`SpanRecord::tid`](strider_support::obs::SpanRecord::tid) values
//! collide across shards (every shard's first pipeline thread is tid 1).
//! The merge assigns globally stable tids instead: tid 0 is the
//! scheduler lane, tids `1..=workers` are the named worker lanes, and
//! each shard's threads are remapped onto fresh tids above that, named
//! `shard-NNN <original thread name>` so Perfetto shows which machine a
//! pipeline thread belonged to.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use strider_support::json::JsonValue;
use strider_support::obs::{Clock, TelemetryReport};
use strider_support::store::atomic_write_file;
use strider_support::sync::Mutex;

/// What the scheduler decided about a shard, stamped on the policy clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEventKind {
    /// The shard was dealt onto a worker's deque.
    Enqueue {
        /// The deque it landed on.
        worker: usize,
    },
    /// An idle worker stole the shard from a neighbour's deque.
    Steal {
        /// The deque the shard was queued on.
        from: usize,
        /// The worker that took it.
        by: usize,
    },
    /// A worker began sweeping the shard.
    Start {
        /// The sweeping worker.
        worker: usize,
    },
    /// The worker finished the shard (swept, recovered, or quarantined).
    Finish {
        /// The sweeping worker.
        worker: usize,
    },
}

/// One scheduler decision in the fleet timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedEvent {
    /// The shard the decision concerns.
    pub shard: u32,
    /// Policy-clock reading when it happened.
    pub at_ns: u64,
    /// What happened.
    pub kind: SchedEventKind,
}

/// The mutable event sink a traced sweep threads through the scheduler
/// and its workers.
pub(crate) struct TraceSink {
    clock: Arc<dyn Clock>,
    events: Mutex<Vec<SchedEvent>>,
    workers: Mutex<usize>,
}

impl TraceSink {
    pub(crate) fn new(clock: Arc<dyn Clock>) -> Self {
        TraceSink {
            clock,
            events: Mutex::new(Vec::new()),
            workers: Mutex::new(0),
        }
    }

    pub(crate) fn record(&self, shard: u32, kind: SchedEventKind) {
        let at_ns = self.clock.now_ns();
        self.events.lock().push(SchedEvent { shard, at_ns, kind });
    }

    pub(crate) fn set_workers(&self, workers: usize) {
        *self.workers.lock() = workers;
    }

    pub(crate) fn into_parts(self) -> (usize, Vec<SchedEvent>) {
        (*self.workers.lock(), self.events.lock().clone())
    }
}

/// One swept shard's telemetry snapshot inside a [`FleetTrace`].
#[derive(Debug, Clone)]
pub struct ShardTrace {
    /// The shard index.
    pub shard: u32,
    /// That shard's machine name.
    pub machine: String,
    /// The shard sweep's frozen telemetry (its own tid space — the merge
    /// remaps it).
    pub telemetry: TelemetryReport,
}

/// The frozen fleet timeline a
/// [`FleetScheduler::sweep_traced`](crate::FleetScheduler::sweep_traced)
/// run produces: scheduler events, per-shard telemetry snapshots, and the
/// wall-clock envelope, with derived queue-wait and occupancy metrics and
/// a merged Chrome-trace export.
#[derive(Debug, Clone)]
pub struct FleetTrace {
    /// Worker-pool size the sweep actually ran with (0 when every shard
    /// was restored or fenced before any worker spawned).
    pub workers: usize,
    /// Policy-clock reading when the sweep started.
    pub start_ns: u64,
    /// Policy-clock reading when the sweep finished.
    pub end_ns: u64,
    /// Every scheduler decision, in arrival order.
    pub events: Vec<SchedEvent>,
    /// Each swept shard's telemetry, in shard order.
    pub shards: Vec<ShardTrace>,
}

impl FleetTrace {
    /// Per-shard queue wait — enqueue to sweep start on the policy clock —
    /// for every shard a worker actually started, keyed by shard.
    pub fn queue_waits(&self) -> BTreeMap<u32, u64> {
        let mut enqueued: BTreeMap<u32, u64> = BTreeMap::new();
        let mut waits = BTreeMap::new();
        for event in &self.events {
            match event.kind {
                SchedEventKind::Enqueue { .. } => {
                    enqueued.entry(event.shard).or_insert(event.at_ns);
                }
                SchedEventKind::Start { .. } => {
                    if let Some(&t0) = enqueued.get(&event.shard) {
                        waits
                            .entry(event.shard)
                            .or_insert(event.at_ns.saturating_sub(t0));
                    }
                }
                _ => {}
            }
        }
        waits
    }

    /// Nearest-rank p95 of the per-shard queue waits; 0 when no shard
    /// was started by a worker.
    pub fn queue_wait_p95_ns(&self) -> u64 {
        let mut waits: Vec<u64> = self.queue_waits().into_values().collect();
        if waits.is_empty() {
            return 0;
        }
        waits.sort_unstable();
        let rank = ((0.95 * waits.len() as f64).ceil() as usize).saturating_sub(1);
        waits[rank]
    }

    /// How many shards were stolen off a neighbour's deque.
    pub fn steals(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, SchedEventKind::Steal { .. }))
            .count()
    }

    /// Time worker `worker` spent inside shard sweeps (summed
    /// start-to-finish occupancy).
    pub fn worker_busy_ns(&self, worker: usize) -> u64 {
        let mut busy = 0u64;
        let mut open: BTreeMap<u32, u64> = BTreeMap::new();
        for event in &self.events {
            match event.kind {
                SchedEventKind::Start { worker: w } if w == worker => {
                    open.insert(event.shard, event.at_ns);
                }
                SchedEventKind::Finish { worker: w } if w == worker => {
                    if let Some(t0) = open.remove(&event.shard) {
                        busy += event.at_ns.saturating_sub(t0);
                    }
                }
                _ => {}
            }
        }
        busy
    }

    /// The fraction of total worker capacity (`workers × sweep wall
    /// time`) spent *outside* shard sweeps — waiting on queues, locks, or
    /// the ingest channel. 0.0 when the sweep spawned no workers or took
    /// no measurable time; clamped to `[0, 1]`.
    pub fn worker_idle_fraction(&self) -> f64 {
        let wall = self.end_ns.saturating_sub(self.start_ns);
        if self.workers == 0 || wall == 0 {
            return 0.0;
        }
        let capacity = (self.workers as u64 * wall) as f64;
        let busy: u64 = (0..self.workers).map(|w| self.worker_busy_ns(w)).sum();
        (1.0 - busy as f64 / capacity).clamp(0.0, 1.0)
    }

    /// The merged fleet-wide Chrome trace (JSON array format, timestamps
    /// in microseconds):
    ///
    /// * tid 0, `fleet-scheduler`: one `X` slice per shard from enqueue
    ///   to sweep start (the queue wait, named `queue shard-NNN`) plus
    ///   instant events for enqueues and steals;
    /// * tids `1..=workers`, `fleet-worker-N`: one `X` occupancy slice
    ///   per shard sweep;
    /// * every shard telemetry's own events, with tids remapped onto
    ///   fresh globally unique ids and thread names prefixed
    ///   `shard-NNN` — per-shard tids collide across independently
    ///   frozen telemetries, so the local ids never appear here.
    pub fn chrome_trace(&self) -> JsonValue {
        let mut out = Vec::new();
        let meta = |tid: u64, name: &str| {
            JsonValue::Obj(vec![
                ("name".into(), JsonValue::Str("thread_name".into())),
                ("ph".into(), JsonValue::Str("M".into())),
                ("pid".into(), JsonValue::UInt(1)),
                ("tid".into(), JsonValue::UInt(tid)),
                (
                    "args".into(),
                    JsonValue::Obj(vec![("name".into(), JsonValue::Str(name.into()))]),
                ),
            ])
        };
        out.push(meta(0, "fleet-scheduler"));
        for w in 0..self.workers {
            out.push(meta(w as u64 + 1, &format!("fleet-worker-{w}")));
        }

        // Scheduler lane: queue-wait slices plus enqueue/steal instants.
        let mut enqueued: BTreeMap<u32, u64> = BTreeMap::new();
        let mut started: BTreeMap<u32, (usize, u64)> = BTreeMap::new();
        for event in &self.events {
            let ts = event.at_ns as f64 / 1e3;
            let slice =
                |name: String, tid: u64, ts: f64, dur: f64, args: Vec<(String, JsonValue)>| {
                    JsonValue::Obj(vec![
                        ("name".into(), JsonValue::Str(name)),
                        ("cat".into(), JsonValue::Str("fleet".into())),
                        ("ph".into(), JsonValue::Str("X".into())),
                        ("ts".into(), JsonValue::Float(ts)),
                        ("dur".into(), JsonValue::Float(dur)),
                        ("pid".into(), JsonValue::UInt(1)),
                        ("tid".into(), JsonValue::UInt(tid)),
                        ("args".into(), JsonValue::Obj(args)),
                    ])
                };
            let instant = |name: String, args: Vec<(String, JsonValue)>| {
                JsonValue::Obj(vec![
                    ("name".into(), JsonValue::Str(name)),
                    ("cat".into(), JsonValue::Str("fleet".into())),
                    ("ph".into(), JsonValue::Str("i".into())),
                    ("ts".into(), JsonValue::Float(ts)),
                    ("pid".into(), JsonValue::UInt(1)),
                    ("tid".into(), JsonValue::UInt(0)),
                    ("s".into(), JsonValue::Str("t".into())),
                    ("args".into(), JsonValue::Obj(args)),
                ])
            };
            match event.kind {
                SchedEventKind::Enqueue { worker } => {
                    enqueued.entry(event.shard).or_insert(event.at_ns);
                    out.push(instant(
                        format!("enqueue shard-{:03}", event.shard),
                        vec![("worker".into(), JsonValue::UInt(worker as u64))],
                    ));
                }
                SchedEventKind::Steal { from, by } => {
                    out.push(instant(
                        format!("steal shard-{:03}", event.shard),
                        vec![
                            ("from".into(), JsonValue::UInt(from as u64)),
                            ("by".into(), JsonValue::UInt(by as u64)),
                        ],
                    ));
                }
                SchedEventKind::Start { worker } => {
                    started.insert(event.shard, (worker, event.at_ns));
                    if let Some(&t0) = enqueued.get(&event.shard) {
                        out.push(slice(
                            format!("queue shard-{:03}", event.shard),
                            0,
                            t0 as f64 / 1e3,
                            event.at_ns.saturating_sub(t0) as f64 / 1e3,
                            vec![("worker".into(), JsonValue::UInt(worker as u64))],
                        ));
                    }
                }
                SchedEventKind::Finish { worker } => {
                    if let Some((_, t0)) = started.remove(&event.shard) {
                        out.push(slice(
                            format!("shard-{:03}", event.shard),
                            worker as u64 + 1,
                            t0 as f64 / 1e3,
                            event.at_ns.saturating_sub(t0) as f64 / 1e3,
                            vec![("shard".into(), JsonValue::UInt(event.shard as u64))],
                        ));
                    }
                }
            }
        }

        // Shard telemetry lanes: reuse each telemetry's own Chrome
        // export, remapping its local tids onto fresh global ones.
        let mut next_tid = self.workers as u64 + 1;
        for shard in &self.shards {
            let mut remap: BTreeMap<u64, u64> = BTreeMap::new();
            let JsonValue::Arr(events) = shard.telemetry.chrome_trace() else {
                continue;
            };
            for event in events {
                let JsonValue::Obj(mut fields) = event else {
                    continue;
                };
                for (key, value) in fields.iter_mut() {
                    if key == "tid" {
                        if let JsonValue::UInt(local) = value {
                            let global = *remap.entry(*local).or_insert_with(|| {
                                let tid = next_tid;
                                next_tid += 1;
                                tid
                            });
                            *value = JsonValue::UInt(global);
                        }
                    }
                }
                // Prefix thread_name metadata so the lane names which
                // machine the pipeline thread belonged to.
                let is_meta = fields
                    .iter()
                    .any(|(k, v)| k == "ph" && matches!(v, JsonValue::Str(s) if s == "M"));
                if is_meta {
                    for (key, value) in fields.iter_mut() {
                        if key == "args" {
                            if let JsonValue::Obj(args) = value {
                                for (ak, av) in args.iter_mut() {
                                    if ak == "name" {
                                        if let JsonValue::Str(name) = av {
                                            *name = format!("shard-{:03} {name}", shard.shard);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                out.push(JsonValue::Obj(fields));
            }
        }
        JsonValue::Arr(out)
    }

    /// Writes [`chrome_trace`](Self::chrome_trace) as
    /// `FLEET_TRACE_<label>.json` into `dir` and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects labels with no alphanumeric
    /// content.
    pub fn write_chrome_trace_in(&self, dir: &Path, label: &str) -> std::io::Result<PathBuf> {
        let label = strider_support::obs::sanitize_label(label).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("label {label:?} has no alphanumeric content"),
            )
        })?;
        let path = dir.join(format!("FLEET_TRACE_{label}.json"));
        atomic_write_file(&path, self.chrome_trace().render_pretty(2).as_bytes())?;
        Ok(path)
    }

    /// Writes [`chrome_trace`](Self::chrome_trace) as
    /// `FLEET_TRACE_<label>.json` into
    /// [`strider_support::bench::report_dir`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects labels with no alphanumeric
    /// content.
    pub fn write_chrome_trace(&self, label: &str) -> std::io::Result<PathBuf> {
        self.write_chrome_trace_in(&strider_support::bench::report_dir(), label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_support::obs::{FakeClock, Telemetry};

    fn trace_with_events(workers: usize, events: Vec<SchedEvent>) -> FleetTrace {
        let end_ns = events.iter().map(|e| e.at_ns).max().unwrap_or(0);
        FleetTrace {
            workers,
            start_ns: 0,
            end_ns,
            events,
            shards: Vec::new(),
        }
    }

    fn ev(shard: u32, at_ns: u64, kind: SchedEventKind) -> SchedEvent {
        SchedEvent { shard, at_ns, kind }
    }

    #[test]
    fn queue_waits_measure_enqueue_to_start() {
        let trace = trace_with_events(
            1,
            vec![
                ev(0, 10, SchedEventKind::Enqueue { worker: 0 }),
                ev(1, 10, SchedEventKind::Enqueue { worker: 0 }),
                ev(0, 40, SchedEventKind::Start { worker: 0 }),
                ev(0, 90, SchedEventKind::Finish { worker: 0 }),
                ev(1, 100, SchedEventKind::Start { worker: 0 }),
                ev(1, 120, SchedEventKind::Finish { worker: 0 }),
            ],
        );
        let waits = trace.queue_waits();
        assert_eq!(waits[&0], 30);
        assert_eq!(waits[&1], 90);
        assert_eq!(trace.queue_wait_p95_ns(), 90);
        // Worker 0 was busy 50 + 20 of the 120 ns wall → idle 5/12.
        assert_eq!(trace.worker_busy_ns(0), 70);
        assert!((trace.worker_idle_fraction() - 50.0 / 120.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_yields_zero_metrics() {
        let trace = trace_with_events(0, Vec::new());
        assert!(trace.queue_waits().is_empty());
        assert_eq!(trace.queue_wait_p95_ns(), 0);
        assert_eq!(trace.steals(), 0);
        assert_eq!(trace.worker_idle_fraction(), 0.0);
    }

    #[test]
    fn merged_trace_remaps_shard_tids_above_worker_lanes() {
        // Two shards frozen independently: both telemetries use tid 1
        // for their (only) span thread — the collision the merge fixes.
        let shard_report = || {
            let clock = Arc::new(FakeClock::new());
            let telemetry = Telemetry::with_clock(clock.clone());
            {
                let _span = telemetry.span("scan");
                clock.advance(100);
            }
            telemetry.report()
        };
        let a = shard_report();
        let b = shard_report();
        assert_eq!(a.spans[0].tid, b.spans[0].tid, "local tids collide");

        let trace = FleetTrace {
            workers: 2,
            start_ns: 0,
            end_ns: 1_000,
            events: vec![
                ev(0, 0, SchedEventKind::Enqueue { worker: 0 }),
                ev(1, 0, SchedEventKind::Enqueue { worker: 1 }),
                ev(1, 5, SchedEventKind::Steal { from: 1, by: 0 }),
                ev(0, 10, SchedEventKind::Start { worker: 0 }),
                ev(0, 500, SchedEventKind::Finish { worker: 0 }),
            ],
            shards: vec![
                ShardTrace {
                    shard: 0,
                    machine: "m0".into(),
                    telemetry: a,
                },
                ShardTrace {
                    shard: 1,
                    machine: "m1".into(),
                    telemetry: b,
                },
            ],
        };
        assert_eq!(trace.steals(), 1);
        let JsonValue::Arr(events) = trace.chrome_trace() else {
            panic!("chrome trace must be an array");
        };
        let field = |e: &JsonValue, key: &str| -> Option<JsonValue> {
            let JsonValue::Obj(fields) = e else {
                return None;
            };
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
        };
        // Span slices (cat "scan") never land on the reserved scheduler
        // or worker lanes, and no two shards share a tid.
        let span_tids: Vec<u64> = events
            .iter()
            .filter(|e| {
                matches!(field(e, "cat"), Some(JsonValue::Str(c)) if c == "scan")
                    && matches!(field(e, "ph"), Some(JsonValue::Str(p)) if p == "X")
            })
            .map(|e| match field(e, "tid") {
                Some(JsonValue::UInt(t)) => t,
                other => panic!("bad tid {other:?}"),
            })
            .collect();
        assert_eq!(span_tids.len(), 2);
        assert!(span_tids.iter().all(|&t| t > 2), "{span_tids:?}");
        assert_ne!(span_tids[0], span_tids[1]);
        // Thread metadata names the lanes, shard-prefixed.
        let names: Vec<String> = events
            .iter()
            .filter(|e| matches!(field(e, "ph"), Some(JsonValue::Str(p)) if p == "M"))
            .filter_map(|e| {
                let JsonValue::Obj(args) = field(e, "args")? else {
                    return None;
                };
                args.into_iter()
                    .find(|(k, _)| k == "name")
                    .and_then(|(_, v)| match v {
                        JsonValue::Str(s) => Some(s),
                        _ => None,
                    })
            })
            .collect();
        assert!(names.iter().any(|n| n == "fleet-scheduler"), "{names:?}");
        assert!(names.iter().any(|n| n == "fleet-worker-0"), "{names:?}");
        assert!(names.iter().any(|n| n == "fleet-worker-1"), "{names:?}");
        assert!(
            names.iter().any(|n| n.starts_with("shard-000 ")),
            "{names:?}"
        );
        assert!(
            names.iter().any(|n| n.starts_with("shard-001 ")),
            "{names:?}"
        );
        // Scheduler lane carries the queue slice and the steal instant.
        assert!(events.iter().any(|e| {
            matches!(field(e, "name"), Some(JsonValue::Str(n)) if n == "queue shard-000")
        }));
        assert!(events.iter().any(|e| {
            matches!(field(e, "name"), Some(JsonValue::Str(n)) if n == "steal shard-001")
        }));
    }
}
