//! Fleet-level aggregation: per-shard results merged into one
//! [`FleetReport`], and the durable [`FleetCheckpoint`] a killed fleet
//! sweep resumes from.

use crate::registry::{FleetRegistry, ShardId};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use strider_ghostbuster::{PipelineStatus, SweepCheckpoint, SweepReport};
use strider_support::alert::Exposition;
use strider_support::obs::HistogramSketch;

/// One machine's contribution to a fleet sweep.
#[derive(Debug, Clone)]
pub struct ShardResult {
    /// Which shard this is.
    pub shard: ShardId,
    /// The machine's name.
    pub machine: String,
    /// The seeded family, when the fleet seeded this machine infected.
    pub family: Option<String>,
    /// The seeded hiding techniques (display names), when infected.
    pub techniques: Vec<String>,
    /// Whether the fleet's ground truth says this machine is infected.
    pub seeded_infected: bool,
    /// Whether the result was restored verbatim from a checkpoint instead
    /// of swept this run (restored results carry no telemetry).
    pub restored: bool,
    /// The shard's sweep.
    pub report: SweepReport,
}

/// Seeded-vs-detected counts for one family or technique.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Prevalence {
    /// Machines seeded with it.
    pub seeded: u64,
    /// Of those, machines whose sweep came back infected.
    pub detected: u64,
}

/// How one pipeline fared across the whole fleet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineRollup {
    /// Shards where the pipeline ran clean.
    pub ok: u64,
    /// Shards where its truth source was salvage-parsed.
    pub salvaged: u64,
    /// Shards where it degraded (timeout, cancellation, panic, breaker,
    /// truth source lost).
    pub degraded: u64,
}

/// The merged outcome of a fleet sweep.
///
/// Every aggregate here is order-independent — counts add and
/// [`HistogramSketch`]es merge bucket-wise — so the report is identical no
/// matter how the scheduler interleaved the shards.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Fleet size.
    pub machines: u64,
    /// Shards with a result this run (swept or restored).
    pub swept: u64,
    /// Shards whose sweep found something suspicious.
    pub infected: u64,
    /// Swept shards the fleet's ground truth seeded infected.
    pub seeded_infected: u64,
    /// Seeded-vs-detected prevalence per ghostware family.
    pub families: BTreeMap<String, Prevalence>,
    /// Seeded-vs-detected prevalence per hiding technique.
    pub techniques: BTreeMap<String, Prevalence>,
    /// Per-pipeline health rollups across the fleet.
    pub health: BTreeMap<String, PipelineRollup>,
    /// Fleet-wide latency sketches, merged from every swept shard's
    /// telemetry histograms (keyed by probe name, e.g.
    /// `files.dir_query_ns`).
    pub latency: BTreeMap<String, HistogramSketch>,
    /// Shards that never produced a result (the sweep was stopped or
    /// cancelled before a worker reached them).
    pub unswept: Vec<ShardId>,
    results: Vec<ShardResult>,
}

impl FleetReport {
    /// Folds one shard's result into the aggregates and retains it.
    pub(crate) fn absorb(&mut self, result: ShardResult) {
        self.swept += 1;
        let detected = result.report.is_infected();
        if detected {
            self.infected += 1;
        }
        if result.seeded_infected {
            self.seeded_infected += 1;
        }
        if let Some(family) = &result.family {
            let entry = self.families.entry(family.clone()).or_default();
            entry.seeded += 1;
            if detected {
                entry.detected += 1;
            }
        }
        for technique in &result.techniques {
            let entry = self.techniques.entry(technique.clone()).or_default();
            entry.seeded += 1;
            if detected {
                entry.detected += 1;
            }
        }
        let health = &result.report.health;
        for (pipeline, status) in [
            ("files", &health.files),
            ("registry", &health.registry),
            ("processes", &health.processes),
            ("modules", &health.modules),
        ] {
            let rollup = self.health.entry(pipeline.to_string()).or_default();
            match status {
                PipelineStatus::Ok => rollup.ok += 1,
                PipelineStatus::Salvaged { .. } => rollup.salvaged += 1,
                PipelineStatus::Degraded { .. } => rollup.degraded += 1,
            }
        }
        if let Some(telemetry) = &result.report.telemetry {
            for (name, sketch) in &telemetry.histograms {
                self.latency.entry(name.clone()).or_default().merge(sketch);
            }
        }
        self.results.push(result);
    }

    /// Sorts results into shard order and records which shards never
    /// reported.
    pub(crate) fn finalize(&mut self, machines: u64) {
        self.machines = machines;
        self.results.sort_by_key(|r| r.shard);
        self.unswept = (0..machines as u32)
            .map(ShardId)
            .filter(|id| !self.results.iter().any(|r| r.shard == *id))
            .collect();
    }

    /// Every shard's result, in shard order.
    pub fn results(&self) -> &[ShardResult] {
        &self.results
    }

    /// A specific shard's result, if it reported.
    pub fn result(&self, shard: ShardId) -> Option<&ShardResult> {
        self.results.iter().find(|r| r.shard == shard)
    }

    /// Fraction of swept machines found infected (0 when nothing swept).
    pub fn infection_rate(&self) -> f64 {
        if self.swept == 0 {
            0.0
        } else {
            self.infected as f64 / self.swept as f64
        }
    }

    /// A fleet-wide latency percentile for one probe (e.g. the p95 of
    /// `files.dir_query_ns` across every machine).
    pub fn latency_percentile(&self, probe: &str, pct: f64) -> Option<f64> {
        self.latency.get(probe).and_then(|s| s.percentile(pct))
    }

    /// Whether every shard reported and none degraded.
    pub fn is_complete_and_healthy(&self) -> bool {
        self.unswept.is_empty() && self.health.values().all(|r| r.degraded == 0)
    }

    /// The merged fleet sweep as a Prometheus-text [`Exposition`]: sweep
    /// counters, the infection rate, per-pipeline health rollups and
    /// per-family/per-technique prevalence as labelled gauges, and the
    /// fleet-wide latency sketches as cumulative histograms.
    pub fn prometheus(&self) -> Exposition {
        let mut expo = Exposition::new();
        expo.counter("strider_fleet_machines_total", self.machines);
        expo.counter("strider_fleet_swept_total", self.swept);
        expo.counter("strider_fleet_infected_total", self.infected);
        expo.counter("strider_fleet_seeded_infected_total", self.seeded_infected);
        expo.counter("strider_fleet_unswept_total", self.unswept.len() as u64);
        expo.gauge("strider_fleet_infection_rate", self.infection_rate());
        for (pipeline, rollup) in &self.health {
            for (state, count) in [
                ("ok", rollup.ok),
                ("salvaged", rollup.salvaged),
                ("degraded", rollup.degraded),
            ] {
                expo.gauge_with(
                    "strider_fleet_pipeline_health",
                    &[("pipeline", pipeline), ("state", state)],
                    count as f64,
                );
            }
        }
        for (kind, table) in [("family", &self.families), ("technique", &self.techniques)] {
            for (name, p) in table {
                expo.gauge_with("strider_fleet_seeded", &[(kind, name)], p.seeded as f64);
                expo.gauge_with("strider_fleet_detected", &[(kind, name)], p.detected as f64);
            }
        }
        for (probe, sketch) in &self.latency {
            expo.histogram(probe, sketch);
        }
        expo
    }

    /// Writes [`prometheus`](Self::prometheus) as
    /// `TELEMETRY_EXPO_<label>.prom` into
    /// [`strider_support::bench::report_dir`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects labels with no alphanumeric
    /// content.
    pub fn write_prom(&self, label: &str) -> std::io::Result<PathBuf> {
        self.prometheus().write(label)
    }

    /// Writes [`prometheus`](Self::prometheus) as
    /// `TELEMETRY_EXPO_<label>.prom` into `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects labels with no alphanumeric
    /// content.
    pub fn write_prom_in(&self, dir: &Path, label: &str) -> std::io::Result<PathBuf> {
        self.prometheus().write_in(dir, label)
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet sweep: {}/{} machines swept, {} infected ({:.1}%), {} unswept",
            self.swept,
            self.machines,
            self.infected,
            self.infection_rate() * 100.0,
            self.unswept.len()
        )?;
        if !self.families.is_empty() {
            writeln!(f, "families (detected/seeded):")?;
            for (family, p) in &self.families {
                writeln!(f, "  {family:<20} {}/{}", p.detected, p.seeded)?;
            }
        }
        if !self.techniques.is_empty() {
            writeln!(f, "techniques (detected/seeded):")?;
            for (technique, p) in &self.techniques {
                writeln!(f, "  {technique:<20} {}/{}", p.detected, p.seeded)?;
            }
        }
        writeln!(f, "pipeline health (ok/salvaged/degraded):")?;
        for (pipeline, r) in &self.health {
            writeln!(f, "  {pipeline:<10} {}/{}/{}", r.ok, r.salvaged, r.degraded)?;
        }
        for (probe, sketch) in &self.latency {
            if let (Some(p50), Some(p95)) = (sketch.percentile(50.0), sketch.percentile(95.0)) {
                writeln!(
                    f,
                    "latency {probe}: p50 {p50:.0} ns, p95 {p95:.0} ns over {} samples",
                    sketch.count()
                )?;
            }
        }
        Ok(())
    }
}

/// Durable progress of a fleet sweep: one [`SweepCheckpoint`] per shard,
/// updated in place as pipelines finish. Serialize it when a fleet sweep
/// dies; a later [`FleetScheduler::sweep_checkpointed`] run against the
/// same fleet restores the complete shards verbatim and re-sweeps only the
/// rest.
///
/// [`FleetScheduler::sweep_checkpointed`]: crate::FleetScheduler::sweep_checkpointed
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCheckpoint {
    /// The fleet seed the checkpoint belongs to.
    pub fleet_seed: u64,
    /// The fleet's machine names, in shard order — resuming against a
    /// different fleet is rejected.
    pub machines: Vec<String>,
    /// Per-shard sweep progress, in shard order.
    pub shards: Vec<SweepCheckpoint>,
}

strider_support::impl_json!(struct FleetCheckpoint { fleet_seed, machines, shards });

impl FleetCheckpoint {
    /// An empty checkpoint for a fresh sweep of `fleet`.
    pub fn new(fleet: &FleetRegistry) -> Self {
        FleetCheckpoint {
            fleet_seed: fleet.spec().seed,
            machines: fleet
                .machines()
                .iter()
                .map(|m| m.machine.name().to_string())
                .collect(),
            shards: fleet
                .machines()
                .iter()
                .map(|m| SweepCheckpoint::new(&m.machine))
                .collect(),
        }
    }

    /// Whether the checkpoint describes this fleet (same seed, same
    /// machines in the same order).
    pub fn matches(&self, fleet: &FleetRegistry) -> bool {
        self.fleet_seed == fleet.spec().seed
            && self.machines.len() == fleet.len()
            && self.shards.len() == fleet.len()
            && fleet
                .machines()
                .iter()
                .zip(&self.machines)
                .all(|(m, name)| m.machine.name() == name)
    }

    /// The shards still holding unfinished pipelines, in shard order.
    pub fn unfinished_shards(&self) -> Vec<ShardId> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, cp)| !cp.is_complete())
            .map(|(i, _)| ShardId(i as u32))
            .collect()
    }

    /// Whether every shard's every pipeline has a recorded outcome.
    pub fn is_complete(&self) -> bool {
        self.shards.iter().all(SweepCheckpoint::is_complete)
    }

    /// Renders the checkpoint as a JSON document.
    pub fn serialize(&self) -> String {
        use strider_support::json::ToJson;
        self.to_json().render()
    }

    /// Parses a checkpoint from [`FleetCheckpoint::serialize`] output.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a document that is not a fleet
    /// checkpoint.
    pub fn deserialize(text: &str) -> Result<Self, strider_support::json::JsonError> {
        use strider_support::json::{FromJson, JsonValue};
        Self::from_json(&JsonValue::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FleetSpec;

    #[test]
    fn empty_fleet_checkpoint_round_trips() {
        let fleet = FleetRegistry::seeded(&FleetSpec::clean(3, 9)).unwrap();
        let checkpoint = FleetCheckpoint::new(&fleet);
        assert!(checkpoint.matches(&fleet));
        assert_eq!(checkpoint.unfinished_shards().len(), 3);
        assert!(!checkpoint.is_complete());
        let parsed = FleetCheckpoint::deserialize(&checkpoint.serialize()).unwrap();
        assert_eq!(parsed, checkpoint);
    }

    #[test]
    fn report_exposition_renders_counters_and_rate() {
        let mut report = FleetReport::default();
        report.finalize(4);
        let text = report.prometheus().render();
        assert!(text.contains("# TYPE strider_fleet_machines_total counter"));
        assert!(text.contains("strider_fleet_machines_total 4"));
        assert!(text.contains("strider_fleet_infection_rate 0"));
        assert!(text.contains("strider_fleet_unswept_total 4"));
    }

    #[test]
    fn checkpoint_rejects_a_different_fleet() {
        let a = FleetRegistry::seeded(&FleetSpec::clean(3, 1)).unwrap();
        let b = FleetRegistry::seeded(&FleetSpec::clean(3, 2)).unwrap();
        let checkpoint = FleetCheckpoint::new(&a);
        assert!(!checkpoint.matches(&b));
    }
}
