//! Fleet-level aggregation: per-shard results merged into one
//! [`FleetReport`], and the durable [`FleetCheckpoint`] a killed fleet
//! sweep resumes from.

use crate::registry::{FleetRegistry, ShardId};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use strider_ghostbuster::{PipelineStatus, SweepCheckpoint, SweepReport};
use strider_support::alert::Exposition;
use strider_support::json::{FromJson, JsonError, JsonValue, ToJson};
use strider_support::obs::{FlightDump, HistogramSketch};

/// How a shard's result came to be — swept fresh, restored from a
/// checkpoint, recovered after retries, or quarantined when its retry
/// budget ran out.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ShardDisposition {
    /// Swept this run on the first attempt.
    #[default]
    Swept,
    /// Restored verbatim from a checkpoint (no telemetry).
    Restored,
    /// Swept successfully, but only after `attempts` tries — the
    /// self-healing retry loop cleared its degraded pipelines and backed
    /// off between attempts.
    Recovered {
        /// Total attempts including the successful one (always ≥ 2).
        attempts: u32,
    },
    /// The shard failed every attempt in its retry budget and was fenced
    /// off. Its report is the last failed attempt's (verdict untrusted);
    /// the fleet aggregates exclude it from sweep/infection/health counts
    /// and surface it in [`FleetReport::quarantined`] instead.
    Quarantined {
        /// Attempts burned before giving up.
        attempts: u32,
        /// Why the final attempt failed.
        reason: String,
        /// Flight-recorder evidence: one fault event per failed attempt.
        evidence: FlightDump,
    },
}

impl ShardDisposition {
    /// Whether this shard was fenced off after exhausting its retries.
    pub fn is_quarantined(&self) -> bool {
        matches!(self, ShardDisposition::Quarantined { .. })
    }
}

impl fmt::Display for ShardDisposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardDisposition::Swept => write!(f, "swept"),
            ShardDisposition::Restored => write!(f, "restored"),
            ShardDisposition::Recovered { attempts } => {
                write!(f, "recovered (attempt {attempts})")
            }
            ShardDisposition::Quarantined {
                attempts, reason, ..
            } => {
                write!(f, "QUARANTINED after {attempts} attempts: {reason}")
            }
        }
    }
}

// Hand-written (rather than `impl_json!`) because the macro does not cover
// named-field enum variants: unit variants render as bare strings, payload
// variants as single-key objects, matching the macro's enum convention.
impl ToJson for ShardDisposition {
    fn to_json(&self) -> JsonValue {
        match self {
            ShardDisposition::Swept => JsonValue::Str("Swept".to_string()),
            ShardDisposition::Restored => JsonValue::Str("Restored".to_string()),
            ShardDisposition::Recovered { attempts } => JsonValue::Obj(vec![(
                "Recovered".to_string(),
                JsonValue::Obj(vec![(
                    "attempts".to_string(),
                    JsonValue::UInt(u64::from(*attempts)),
                )]),
            )]),
            ShardDisposition::Quarantined {
                attempts,
                reason,
                evidence,
            } => JsonValue::Obj(vec![(
                "Quarantined".to_string(),
                JsonValue::Obj(vec![
                    (
                        "attempts".to_string(),
                        JsonValue::UInt(u64::from(*attempts)),
                    ),
                    ("reason".to_string(), JsonValue::Str(reason.clone())),
                    ("evidence".to_string(), evidence.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for ShardDisposition {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        match value {
            JsonValue::Str(s) if s == "Swept" => Ok(ShardDisposition::Swept),
            JsonValue::Str(s) if s == "Restored" => Ok(ShardDisposition::Restored),
            JsonValue::Obj(fields) => match fields.as_slice() {
                [(tag, body)] if tag == "Recovered" => Ok(ShardDisposition::Recovered {
                    attempts: body.field("attempts")?.as_u64()? as u32,
                }),
                [(tag, body)] if tag == "Quarantined" => Ok(ShardDisposition::Quarantined {
                    attempts: body.field("attempts")?.as_u64()? as u32,
                    reason: body.field("reason")?.as_str()?.to_string(),
                    evidence: FlightDump::from_json(body.field("evidence")?)?,
                }),
                _ => Err(JsonError("unknown ShardDisposition variant".to_string())),
            },
            _ => Err(JsonError("expected a ShardDisposition".to_string())),
        }
    }
}

/// One machine's contribution to a fleet sweep.
#[derive(Debug, Clone)]
pub struct ShardResult {
    /// Which shard this is.
    pub shard: ShardId,
    /// The machine's name.
    pub machine: String,
    /// The seeded family, when the fleet seeded this machine infected.
    pub family: Option<String>,
    /// The seeded hiding techniques (display names), when infected.
    pub techniques: Vec<String>,
    /// Whether the fleet's ground truth says this machine is infected.
    pub seeded_infected: bool,
    /// Whether the result was restored verbatim from a checkpoint instead
    /// of swept this run (restored results carry no telemetry). Kept as a
    /// convenience mirror of `disposition == Restored`.
    pub restored: bool,
    /// How this result came to be — swept, restored, recovered after
    /// retries, or quarantined.
    pub disposition: ShardDisposition,
    /// The shard's sweep.
    pub report: SweepReport,
}

/// Seeded-vs-detected counts for one family or technique.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Prevalence {
    /// Machines seeded with it.
    pub seeded: u64,
    /// Of those, machines whose sweep came back infected.
    pub detected: u64,
}

/// How one pipeline fared across the whole fleet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineRollup {
    /// Shards where the pipeline ran clean.
    pub ok: u64,
    /// Shards where its truth source was salvage-parsed.
    pub salvaged: u64,
    /// Shards where it degraded (timeout, cancellation, panic, breaker,
    /// truth source lost).
    pub degraded: u64,
}

/// The merged outcome of a fleet sweep.
///
/// Every aggregate here is order-independent — counts add and
/// [`HistogramSketch`]es merge bucket-wise — so the report is identical no
/// matter how the scheduler interleaved the shards.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Fleet size.
    pub machines: u64,
    /// Shards with a result this run (swept or restored).
    pub swept: u64,
    /// Shards whose sweep found something suspicious.
    pub infected: u64,
    /// Swept shards the fleet's ground truth seeded infected.
    pub seeded_infected: u64,
    /// Seeded-vs-detected prevalence per ghostware family.
    pub families: BTreeMap<String, Prevalence>,
    /// Seeded-vs-detected prevalence per hiding technique.
    pub techniques: BTreeMap<String, Prevalence>,
    /// Per-pipeline health rollups across the fleet.
    pub health: BTreeMap<String, PipelineRollup>,
    /// Fleet-wide latency sketches, merged from every swept shard's
    /// telemetry histograms (keyed by probe name, e.g.
    /// `files.dir_query_ns`).
    pub latency: BTreeMap<String, HistogramSketch>,
    /// Shards that never produced a result (the sweep was stopped or
    /// cancelled before a worker reached them).
    pub unswept: Vec<ShardId>,
    /// Shards fenced off after exhausting their retry budget, in shard
    /// order. Their verdicts are untrusted, so they are excluded from
    /// `swept`/`infected`/health/latency — but they are never silently
    /// dropped: each keeps its [`ShardResult`] (with flight-recorder
    /// evidence in its [`ShardDisposition::Quarantined`]) in `results`.
    pub quarantined: Vec<ShardId>,
    results: Vec<ShardResult>,
}

impl FleetReport {
    /// Folds one shard's result into the aggregates and retains it.
    ///
    /// Quarantined shards are surfaced (in [`FleetReport::quarantined`]
    /// and `results`) but kept out of every detection aggregate: a shard
    /// whose sweep never succeeded has no trustworthy verdict, and letting
    /// it vote would skew infection rates and pipeline health.
    pub(crate) fn absorb(&mut self, result: ShardResult) {
        if result.disposition.is_quarantined() {
            self.quarantined.push(result.shard);
            self.results.push(result);
            return;
        }
        self.swept += 1;
        let detected = result.report.is_infected();
        if detected {
            self.infected += 1;
        }
        if result.seeded_infected {
            self.seeded_infected += 1;
        }
        if let Some(family) = &result.family {
            let entry = self.families.entry(family.clone()).or_default();
            entry.seeded += 1;
            if detected {
                entry.detected += 1;
            }
        }
        for technique in &result.techniques {
            let entry = self.techniques.entry(technique.clone()).or_default();
            entry.seeded += 1;
            if detected {
                entry.detected += 1;
            }
        }
        let health = &result.report.health;
        for (pipeline, status) in [
            ("files", &health.files),
            ("registry", &health.registry),
            ("processes", &health.processes),
            ("modules", &health.modules),
        ] {
            let rollup = self.health.entry(pipeline.to_string()).or_default();
            match status {
                PipelineStatus::Ok => rollup.ok += 1,
                PipelineStatus::Salvaged { .. } => rollup.salvaged += 1,
                PipelineStatus::Degraded { .. } => rollup.degraded += 1,
            }
        }
        if let Some(telemetry) = &result.report.telemetry {
            for (name, sketch) in &telemetry.histograms {
                self.latency.entry(name.clone()).or_default().merge(sketch);
            }
        }
        self.results.push(result);
    }

    /// Sorts results into shard order and records which shards never
    /// reported.
    pub(crate) fn finalize(&mut self, machines: u64) {
        self.machines = machines;
        self.results.sort_by_key(|r| r.shard);
        self.quarantined.sort();
        self.unswept = (0..machines as u32)
            .map(ShardId)
            .filter(|id| !self.results.iter().any(|r| r.shard == *id))
            .collect();
    }

    /// Every shard's result, in shard order.
    pub fn results(&self) -> &[ShardResult] {
        &self.results
    }

    /// A specific shard's result, if it reported.
    pub fn result(&self, shard: ShardId) -> Option<&ShardResult> {
        self.results.iter().find(|r| r.shard == shard)
    }

    /// Fraction of swept machines found infected (0 when nothing swept).
    pub fn infection_rate(&self) -> f64 {
        if self.swept == 0 {
            0.0
        } else {
            self.infected as f64 / self.swept as f64
        }
    }

    /// A fleet-wide latency percentile for one probe (e.g. the p95 of
    /// `files.dir_query_ns` across every machine).
    pub fn latency_percentile(&self, probe: &str, pct: f64) -> Option<f64> {
        self.latency.get(probe).and_then(|s| s.percentile(pct))
    }

    /// Whether every shard reported and none degraded or was quarantined.
    pub fn is_complete_and_healthy(&self) -> bool {
        self.unswept.is_empty()
            && self.quarantined.is_empty()
            && self.health.values().all(|r| r.degraded == 0)
    }

    /// A canonical digest of the sweep's *results* — every per-shard
    /// verdict, health status, and detection count, plus the quarantine
    /// and unswept sets — rendered as one deterministic string.
    ///
    /// This is the kill-anywhere equality criterion: a sweep crashed at
    /// any byte offset and resumed from its durable store must produce a
    /// digest byte-identical to an uninterrupted run. The digest therefore
    /// excludes the things a resume legitimately changes without changing
    /// the *outcome*: wall-clock ticks (a re-swept machine's clock has
    /// advanced), telemetry/latency sketches (restored shards carry none
    /// by design), and whether a given shard was swept live, restored, or
    /// recovered on a retry. Quarantined shards contribute their attempt
    /// count and reason, not their untrusted last-attempt report.
    pub fn result_digest(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet|machines={}|swept={}|infected={}|seeded={}",
            self.machines, self.swept, self.infected, self.seeded_infected
        );
        for (kind, table) in [("family", &self.families), ("technique", &self.techniques)] {
            for (name, p) in table {
                let _ = writeln!(
                    out,
                    "{kind}|{name}|seeded={}|detected={}",
                    p.seeded, p.detected
                );
            }
        }
        for result in &self.results {
            if let ShardDisposition::Quarantined {
                attempts, reason, ..
            } = &result.disposition
            {
                let _ = writeln!(
                    out,
                    "shard|{:03}|{}|quarantined|attempts={attempts}|reason={reason}",
                    result.shard.0, result.machine
                );
                continue;
            }
            let h = &result.report.health;
            let _ = writeln!(
                out,
                "shard|{:03}|{}|seeded={}|infected={}|files={}:{}|registry={}:{}|processes={}:{}|modules={}:{}",
                result.shard.0,
                result.machine,
                result.seeded_infected,
                result.report.is_infected(),
                status_kind(&h.files),
                result.report.files.net_detections().len(),
                status_kind(&h.registry),
                result.report.hooks.net_detections().len(),
                status_kind(&h.processes),
                result.report.processes.net_detections().len(),
                status_kind(&h.modules),
                result.report.modules.net_detections().len(),
            );
        }
        let unswept: Vec<String> = self.unswept.iter().map(|s| s.0.to_string()).collect();
        let _ = writeln!(out, "unswept|{}", unswept.join(","));
        out
    }

    /// The merged fleet sweep as a Prometheus-text [`Exposition`]: sweep
    /// counters, the infection rate, per-pipeline health rollups and
    /// per-family/per-technique prevalence as labelled gauges, and the
    /// fleet-wide latency sketches as cumulative histograms.
    pub fn prometheus(&self) -> Exposition {
        let mut expo = Exposition::new();
        expo.counter("strider_fleet_machines_total", self.machines);
        expo.counter("strider_fleet_swept_total", self.swept);
        expo.counter("strider_fleet_infected_total", self.infected);
        expo.counter("strider_fleet_seeded_infected_total", self.seeded_infected);
        expo.counter("strider_fleet_unswept_total", self.unswept.len() as u64);
        expo.counter(
            "strider_fleet_quarantined_total",
            self.quarantined.len() as u64,
        );
        expo.gauge("strider_fleet_infection_rate", self.infection_rate());
        for (pipeline, rollup) in &self.health {
            for (state, count) in [
                ("ok", rollup.ok),
                ("salvaged", rollup.salvaged),
                ("degraded", rollup.degraded),
            ] {
                expo.gauge_with(
                    "strider_fleet_pipeline_health",
                    &[("pipeline", pipeline), ("state", state)],
                    count as f64,
                );
            }
        }
        for (kind, table) in [("family", &self.families), ("technique", &self.techniques)] {
            for (name, p) in table {
                expo.gauge_with("strider_fleet_seeded", &[(kind, name)], p.seeded as f64);
                expo.gauge_with("strider_fleet_detected", &[(kind, name)], p.detected as f64);
            }
        }
        for (probe, sketch) in &self.latency {
            expo.histogram(probe, sketch);
        }
        expo
    }

    /// Writes [`prometheus`](Self::prometheus) as
    /// `TELEMETRY_EXPO_<label>.prom` into
    /// [`strider_support::bench::report_dir`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects labels with no alphanumeric
    /// content.
    pub fn write_prom(&self, label: &str) -> std::io::Result<PathBuf> {
        self.prometheus().write(label)
    }

    /// Writes [`prometheus`](Self::prometheus) as
    /// `TELEMETRY_EXPO_<label>.prom` into `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects labels with no alphanumeric
    /// content.
    pub fn write_prom_in(&self, dir: &Path, label: &str) -> std::io::Result<PathBuf> {
        self.prometheus().write_in(dir, label)
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet sweep: {}/{} machines swept, {} infected ({:.1}%), {} unswept, {} quarantined",
            self.swept,
            self.machines,
            self.infected,
            self.infection_rate() * 100.0,
            self.unswept.len(),
            self.quarantined.len()
        )?;
        for shard in &self.quarantined {
            if let Some(result) = self.result(*shard) {
                writeln!(
                    f,
                    "  quarantined shard-{:03} [{}]: {}",
                    shard.0, result.machine, result.disposition
                )?;
            }
        }
        if !self.families.is_empty() {
            writeln!(f, "families (detected/seeded):")?;
            for (family, p) in &self.families {
                writeln!(f, "  {family:<20} {}/{}", p.detected, p.seeded)?;
            }
        }
        if !self.techniques.is_empty() {
            writeln!(f, "techniques (detected/seeded):")?;
            for (technique, p) in &self.techniques {
                writeln!(f, "  {technique:<20} {}/{}", p.detected, p.seeded)?;
            }
        }
        writeln!(f, "pipeline health (ok/salvaged/degraded):")?;
        for (pipeline, r) in &self.health {
            writeln!(f, "  {pipeline:<10} {}/{}/{}", r.ok, r.salvaged, r.degraded)?;
        }
        for (probe, sketch) in &self.latency {
            if let (Some(p50), Some(p95)) = (sketch.percentile(50.0), sketch.percentile(95.0)) {
                writeln!(
                    f,
                    "latency {probe}: p50 {p50:.0} ns, p95 {p95:.0} ns over {} samples",
                    sketch.count()
                )?;
            }
        }
        Ok(())
    }
}

/// The digest spelling of a pipeline status: the kind only, because a
/// degraded reason can embed timing detail that differs between a live
/// sweep and its resumed twin.
fn status_kind(status: &PipelineStatus) -> &'static str {
    match status {
        PipelineStatus::Ok => "ok",
        PipelineStatus::Salvaged { .. } => "salvaged",
        PipelineStatus::Degraded { .. } => "degraded",
    }
}

/// Why a [`FleetCheckpoint`] was rejected against a live fleet: the
/// typed version of the boolean [`FleetCheckpoint::matches`] check, so a
/// resume can report *what* drifted instead of a bare
/// `InvalidParameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointMismatch {
    /// The checkpoint was taken against a fleet with a different seed.
    Seed {
        /// The seed recorded in the checkpoint.
        recorded: u64,
        /// The live fleet's seed.
        live: u64,
    },
    /// The checkpoint describes a fleet of a different size.
    Size {
        /// Shards recorded in the checkpoint.
        recorded: usize,
        /// Machines in the live fleet.
        live: usize,
    },
    /// A shard's recorded machine name does not match the live fleet.
    Machine {
        /// The mismatching shard.
        shard: ShardId,
        /// The name recorded in the checkpoint.
        recorded: String,
        /// The live machine's name.
        live: String,
    },
}

impl fmt::Display for CheckpointMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointMismatch::Seed { recorded, live } => {
                write!(
                    f,
                    "checkpoint fleet seed {recorded} does not match live fleet seed {live}"
                )
            }
            CheckpointMismatch::Size { recorded, live } => {
                write!(
                    f,
                    "checkpoint records {recorded} shards but the live fleet has {live} machines"
                )
            }
            CheckpointMismatch::Machine {
                shard,
                recorded,
                live,
            } => {
                write!(
                    f,
                    "shard-{:03} is recorded as machine {recorded:?} but the live fleet has {live:?}",
                    shard.0
                )
            }
        }
    }
}

impl std::error::Error for CheckpointMismatch {}

/// Durable progress of a fleet sweep: one [`SweepCheckpoint`] per shard,
/// updated in place as pipelines finish. Serialize it when a fleet sweep
/// dies; a later [`FleetScheduler::sweep_checkpointed`] run against the
/// same fleet restores the complete shards verbatim and re-sweeps only the
/// rest.
///
/// [`FleetScheduler::sweep_checkpointed`]: crate::FleetScheduler::sweep_checkpointed
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCheckpoint {
    /// The fleet seed the checkpoint belongs to.
    pub fleet_seed: u64,
    /// The fleet's machine names, in shard order — resuming against a
    /// different fleet is rejected.
    pub machines: Vec<String>,
    /// Per-shard sweep progress, in shard order.
    pub shards: Vec<SweepCheckpoint>,
}

strider_support::impl_json!(struct FleetCheckpoint { fleet_seed, machines, shards });

impl FleetCheckpoint {
    /// An empty checkpoint for a fresh sweep of `fleet`.
    pub fn new(fleet: &FleetRegistry) -> Self {
        FleetCheckpoint {
            fleet_seed: fleet.spec().seed,
            machines: fleet
                .machines()
                .iter()
                .map(|m| m.machine.name().to_string())
                .collect(),
            shards: fleet
                .machines()
                .iter()
                .map(|m| SweepCheckpoint::new(&m.machine))
                .collect(),
        }
    }

    /// Whether the checkpoint describes this fleet (same seed, same
    /// machines in the same order).
    pub fn matches(&self, fleet: &FleetRegistry) -> bool {
        self.validate(fleet).is_ok()
    }

    /// Checks the checkpoint against a live fleet and reports the first
    /// drift as a typed [`CheckpointMismatch`].
    ///
    /// # Errors
    ///
    /// Fails when the recorded fleet seed, shard count, or any machine
    /// name does not match `fleet`.
    pub fn validate(&self, fleet: &FleetRegistry) -> Result<(), CheckpointMismatch> {
        if self.fleet_seed != fleet.spec().seed {
            return Err(CheckpointMismatch::Seed {
                recorded: self.fleet_seed,
                live: fleet.spec().seed,
            });
        }
        if self.machines.len() != fleet.len() || self.shards.len() != fleet.len() {
            return Err(CheckpointMismatch::Size {
                recorded: self.machines.len().max(self.shards.len()),
                live: fleet.len(),
            });
        }
        for (i, (m, name)) in fleet.machines().iter().zip(&self.machines).enumerate() {
            if m.machine.name() != name {
                return Err(CheckpointMismatch::Machine {
                    shard: ShardId(i as u32),
                    recorded: name.clone(),
                    live: m.machine.name().to_string(),
                });
            }
        }
        Ok(())
    }

    /// The shards still holding unfinished pipelines, in shard order.
    pub fn unfinished_shards(&self) -> Vec<ShardId> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, cp)| !cp.is_complete())
            .map(|(i, _)| ShardId(i as u32))
            .collect()
    }

    /// Whether every shard's every pipeline has a recorded outcome.
    pub fn is_complete(&self) -> bool {
        self.shards.iter().all(SweepCheckpoint::is_complete)
    }

    /// Renders the checkpoint as a JSON document.
    pub fn serialize(&self) -> String {
        use strider_support::json::ToJson;
        self.to_json().render()
    }

    /// Parses a checkpoint from [`FleetCheckpoint::serialize`] output.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a document that is not a fleet
    /// checkpoint.
    pub fn deserialize(text: &str) -> Result<Self, strider_support::json::JsonError> {
        use strider_support::json::{FromJson, JsonValue};
        Self::from_json(&JsonValue::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FleetSpec;

    #[test]
    fn empty_fleet_checkpoint_round_trips() {
        let fleet = FleetRegistry::seeded(&FleetSpec::clean(3, 9)).unwrap();
        let checkpoint = FleetCheckpoint::new(&fleet);
        assert!(checkpoint.matches(&fleet));
        assert_eq!(checkpoint.unfinished_shards().len(), 3);
        assert!(!checkpoint.is_complete());
        let parsed = FleetCheckpoint::deserialize(&checkpoint.serialize()).unwrap();
        assert_eq!(parsed, checkpoint);
    }

    #[test]
    fn report_exposition_renders_counters_and_rate() {
        let mut report = FleetReport::default();
        report.finalize(4);
        let text = report.prometheus().render();
        assert!(text.contains("# TYPE strider_fleet_machines_total counter"));
        assert!(text.contains("strider_fleet_machines_total 4"));
        assert!(text.contains("strider_fleet_infection_rate 0"));
        assert!(text.contains("strider_fleet_unswept_total 4"));
    }

    #[test]
    fn checkpoint_rejects_a_different_fleet() {
        let a = FleetRegistry::seeded(&FleetSpec::clean(3, 1)).unwrap();
        let b = FleetRegistry::seeded(&FleetSpec::clean(3, 2)).unwrap();
        let checkpoint = FleetCheckpoint::new(&a);
        assert!(!checkpoint.matches(&b));
    }
}
