//! Seeded machine fleets: deterministic populations with a controlled
//! ghostware mix.

use std::fmt;
use strider_ghostware::{Aphex, Fu, Ghostware, HackerDefender, Infection, ProBotSe, Vanquish};
use strider_nt_core::NtStatus;
use strider_winapi::Machine;
use strider_workload::{populate, WorkloadSpec};

/// A machine's position in the fleet, used to tag results, incidents, and
/// checkpoints. Displays as `shard-003`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard-{:03}", self.0)
    }
}

/// How to build a fleet: how many machines, how many of them infected, and
/// the seed every per-machine population derives from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    /// Number of machines in the fleet.
    pub machines: u32,
    /// Fleet-level RNG seed; equal specs produce identical fleets.
    pub seed: u64,
    /// Exactly this many machines are infected, spread evenly across the
    /// fleet, families cycling through the detectable corpus.
    pub infected: u32,
}

impl FleetSpec {
    /// A fleet of `machines` seeded machines, none infected.
    pub fn clean(machines: u32, seed: u64) -> Self {
        FleetSpec {
            machines,
            seed,
            infected: 0,
        }
    }

    /// Sets the infected-machine count (capped at the fleet size).
    pub fn with_infected(mut self, infected: u32) -> Self {
        self.infected = infected.min(self.machines);
        self
    }

    /// The shard indices that receive an infection: `infected` machines
    /// spread evenly across the fleet, deterministically.
    pub fn infected_shards(&self) -> Vec<u32> {
        if self.infected == 0 {
            return Vec::new();
        }
        (0..self.infected)
            .map(|j| j * self.machines / self.infected)
            .collect()
    }
}

/// The ghostware families a seeded fleet cycles through — every member is
/// detectable by a supervised inside sweep in advanced mode, so a seeded
/// fleet's detected infection rate can be asserted exactly.
fn family_for(slot: usize) -> Box<dyn Ghostware> {
    match slot % 5 {
        0 => Box::new(HackerDefender::default()),
        1 => Box::new(Fu::default()),
        2 => Box::new(ProBotSe::default()),
        3 => Box::new(Vanquish::default()),
        _ => Box::new(Aphex::default()),
    }
}

/// One machine of the fleet, with its seeded ground truth.
#[derive(Debug)]
pub struct FleetMachine {
    /// The machine's shard position.
    pub id: ShardId,
    /// The simulated machine itself.
    pub machine: Machine,
    /// The infecting family's name, when this machine was seeded infected.
    pub family: Option<String>,
    /// The infection ground truth recorded at seeding time.
    pub infection: Option<Infection>,
}

impl FleetMachine {
    /// Whether this machine was seeded with ghostware.
    pub fn is_seeded_infected(&self) -> bool {
        self.infection.is_some()
    }
}

/// A deterministic fleet of seeded machines: same [`FleetSpec`], same
/// machines, same infections — byte for byte.
///
/// Machine sizes vary across the fleet (every fourth machine gets a
/// [`WorkloadSpec::small`] population instead of [`WorkloadSpec::tiny`]),
/// so schedulers are exercised against uneven shard costs, which is what
/// makes work-stealing worth having.
#[derive(Debug)]
pub struct FleetRegistry {
    spec: FleetSpec,
    machines: Vec<FleetMachine>,
}

impl FleetRegistry {
    /// Builds the fleet the spec describes.
    ///
    /// # Errors
    ///
    /// Propagates substrate failures from machine population or infection
    /// (none occur for well-formed specs).
    pub fn seeded(spec: &FleetSpec) -> Result<Self, NtStatus> {
        let infected = spec.infected_shards();
        let mut machines = Vec::with_capacity(spec.machines as usize);
        for i in 0..spec.machines {
            let name = format!("fleet-{}-m{i:03}", spec.seed);
            let mut machine = Machine::with_base_system(&name)?;
            let machine_seed = spec.seed.wrapping_mul(1_000_003).wrapping_add(u64::from(i));
            let workload = if i % 4 == 3 {
                WorkloadSpec::small(machine_seed)
            } else {
                WorkloadSpec::tiny(machine_seed)
            };
            populate(&mut machine, &workload)?;
            machine.tick(1);

            let (family, infection) = match infected.iter().position(|&s| s == i) {
                Some(slot) => {
                    let sample = family_for(slot);
                    let infection = sample.infect(&mut machine)?;
                    (Some(sample.name().to_string()), Some(infection))
                }
                None => (None, None),
            };
            machines.push(FleetMachine {
                id: ShardId(i),
                machine,
                family,
                infection,
            });
        }
        Ok(FleetRegistry {
            spec: spec.clone(),
            machines,
        })
    }

    /// The spec the fleet was built from.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// Number of machines in the fleet.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the fleet holds no machines.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// The fleet's machines, in shard order.
    pub fn machines(&self) -> &[FleetMachine] {
        &self.machines
    }

    /// The fleet's machines, mutably — sweeps mutate machine state (the
    /// scanner process entering, clock ticks).
    pub fn machines_mut(&mut self) -> &mut [FleetMachine] {
        &mut self.machines
    }

    /// How many machines were seeded infected.
    pub fn seeded_infected(&self) -> usize {
        self.machines
            .iter()
            .filter(|m| m.is_seeded_infected())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_id_display_pads() {
        assert_eq!(ShardId(3).to_string(), "shard-003");
        assert_eq!(ShardId(42).to_string(), "shard-042");
    }

    #[test]
    fn infected_shards_spread_evenly_and_exactly() {
        let spec = FleetSpec::clean(8, 1).with_infected(4);
        assert_eq!(spec.infected_shards(), vec![0, 2, 4, 6]);
        let all = FleetSpec::clean(3, 1).with_infected(9);
        assert_eq!(all.infected, 3, "capped at fleet size");
        assert_eq!(all.infected_shards(), vec![0, 1, 2]);
    }

    #[test]
    fn seeded_fleet_is_deterministic() {
        let spec = FleetSpec::clean(6, 77).with_infected(2);
        let a = FleetRegistry::seeded(&spec).unwrap();
        let b = FleetRegistry::seeded(&spec).unwrap();
        assert_eq!(a.len(), 6);
        assert_eq!(a.seeded_infected(), 2);
        for (ma, mb) in a.machines().iter().zip(b.machines()) {
            assert_eq!(ma.machine.name(), mb.machine.name());
            assert_eq!(ma.family, mb.family);
            assert_eq!(
                ma.machine.volume().record_count(),
                mb.machine.volume().record_count()
            );
        }
    }

    #[test]
    fn fleet_varies_machine_sizes() {
        let fleet = FleetRegistry::seeded(&FleetSpec::clean(8, 5)).unwrap();
        let counts: Vec<usize> = fleet
            .machines()
            .iter()
            .map(|m| m.machine.volume().record_count())
            .collect();
        assert!(
            counts[3] > counts[0] * 2,
            "every fourth machine is larger: {counts:?}"
        );
    }
}
