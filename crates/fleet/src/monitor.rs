//! Fleet-wide drift monitoring: one [`SweepMonitor`] per shard (so every
//! machine diffs against *its own* baseline) plus fleet-level rollup
//! series, with incidents tagged by shard.

use crate::registry::{FleetRegistry, ShardId};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use strider_ghostbuster::{
    GhostBuster, MetricSeries, MonitorConfig, MonitorIncident, MonitorObservation, SweepMonitor,
};
use strider_nt_core::NtStatus;
use strider_support::obs::Clock;

/// A [`MonitorIncident`] tagged with the shard it fired on. The wrapped
/// incident carries that shard's flight-recorder dump as evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetIncident {
    /// The shard the incident concerns.
    pub shard: ShardId,
    /// That shard's machine name.
    pub machine: String,
    /// The underlying per-machine incident.
    pub incident: MonitorIncident,
}

impl fmt::Display for FleetIncident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.shard, self.machine, self.incident)
    }
}

/// One fleet-wide monitoring pass: every shard's observation plus the
/// incidents raised across the fleet.
#[derive(Debug, Clone)]
pub struct FleetObservation {
    /// Monitor clock reading when the pass started.
    pub at_ns: u64,
    /// Per-shard observations, in shard order.
    pub shards: Vec<MonitorObservation>,
    /// Every incident of the pass, tagged with its shard.
    pub incidents: Vec<FleetIncident>,
}

impl FleetObservation {
    /// Shards whose sweep found something suspicious this pass.
    pub fn infected_shards(&self) -> Vec<ShardId> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, o)| o.report.is_infected())
            .map(|(i, _)| ShardId(i as u32))
            .collect()
    }
}

/// Drives one [`SweepMonitor`] per fleet machine and rolls their signals
/// up into fleet-level [`MetricSeries`].
///
/// Per-shard baselines matter because machines differ: a 30 s file scan is
/// normal on a large shard and a regression on a tiny one. The fleet
/// monitor therefore compares every machine against *its own* recorded
/// baseline, and only the rollups (infected count, total incidents,
/// degraded pipelines) are fleet-global.
///
/// Monitoring passes run shard-serially on the calling thread: the
/// monitor's job is drift detection on a schedule, not throughput — use
/// [`FleetScheduler`](crate::FleetScheduler) when sweep latency is what
/// matters.
#[derive(Debug, Clone)]
pub struct FleetMonitor {
    detector: GhostBuster,
    config: MonitorConfig,
    shards: Vec<SweepMonitor>,
    machines: Vec<String>,
    series: BTreeMap<String, MetricSeries>,
    passes_run: u64,
}

impl FleetMonitor {
    /// A fleet monitor cloning per-shard monitors from `detector`, with
    /// default [`MonitorConfig`].
    pub fn new(detector: GhostBuster) -> Self {
        FleetMonitor {
            detector,
            config: MonitorConfig::default(),
            shards: Vec::new(),
            machines: Vec::new(),
            series: BTreeMap::new(),
            passes_run: 0,
        }
    }

    /// Replaces the monitor configuration (shared by every shard monitor).
    pub fn with_config(mut self, config: MonitorConfig) -> Self {
        self.config = config;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// How many fleet passes have run (baselines excluded).
    pub fn passes_run(&self) -> u64 {
        self.passes_run
    }

    /// The per-shard monitor, once baselines are recorded.
    pub fn shard(&self, shard: ShardId) -> Option<&SweepMonitor> {
        self.shards.get(shard.0 as usize)
    }

    /// The fleet-level rolling series for a metric, if observed.
    pub fn series(&self, name: &str) -> Option<&MetricSeries> {
        self.series.get(name)
    }

    /// Names of every fleet-level metric with a rolling series, sorted.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    fn clock(&self) -> Arc<dyn Clock> {
        self.detector.policy().clock().clone()
    }

    /// Records one baseline sweep per machine, creating the per-shard
    /// monitors. Each shard's monitor gets its own detector clone with
    /// fresh circuit breakers, so one machine's failures never trip
    /// another's breakers.
    ///
    /// # Errors
    ///
    /// Propagates the first shard's sweep failure.
    pub fn record_baselines(&mut self, fleet: &mut FleetRegistry) -> Result<usize, NtStatus> {
        let policy = self.detector.policy().clone();
        self.shards = fleet
            .machines()
            .iter()
            .map(|_| {
                SweepMonitor::new(self.detector.clone().with_policy(policy.clone()))
                    .with_config(self.config.clone())
            })
            .collect();
        self.machines = fleet
            .machines()
            .iter()
            .map(|m| m.machine.name().to_string())
            .collect();
        for (monitor, shard) in self.shards.iter_mut().zip(fleet.machines_mut()) {
            monitor.record_baseline(&mut shard.machine)?;
        }
        Ok(self.shards.len())
    }

    /// Runs one monitoring pass over the whole fleet: every shard is
    /// observed against its own baseline, incidents are tagged with their
    /// shard, and the fleet rollup series are updated.
    ///
    /// # Errors
    ///
    /// [`NtStatus::InvalidParameter`] when baselines were not recorded for
    /// this fleet; otherwise propagates the first failing shard sweep.
    pub fn observe(&mut self, fleet: &mut FleetRegistry) -> Result<FleetObservation, NtStatus> {
        if self.shards.len() != fleet.len()
            || fleet
                .machines()
                .iter()
                .zip(&self.machines)
                .any(|(m, name)| m.machine.name() != name)
        {
            return Err(NtStatus::InvalidParameter);
        }
        let at_ns = self.clock().now_ns();
        let mut observations = Vec::with_capacity(fleet.len());
        let mut incidents = Vec::new();
        for (i, (monitor, shard)) in self.shards.iter_mut().zip(fleet.machines_mut()).enumerate() {
            let observation = monitor.observe(&mut shard.machine)?;
            for incident in &observation.incidents {
                incidents.push(FleetIncident {
                    shard: ShardId(i as u32),
                    machine: shard.machine.name().to_string(),
                    incident: incident.clone(),
                });
            }
            observations.push(observation);
        }

        let history = self.config.history;
        let mut push = |name: &str, value: f64| {
            self.series
                .entry(name.to_string())
                .or_insert_with(|| MetricSeries::new(history))
                .push(value);
        };
        push(
            "fleet.infected",
            observations
                .iter()
                .filter(|o| o.report.is_infected())
                .count() as f64,
        );
        push(
            "fleet.suspicious",
            observations
                .iter()
                .map(|o| o.report.suspicious_count())
                .sum::<usize>() as f64,
        );
        push(
            "fleet.degraded",
            observations
                .iter()
                .map(|o| o.report.health.degraded_pipelines().len())
                .sum::<usize>() as f64,
        );
        push("fleet.incidents", incidents.len() as f64);

        self.passes_run += 1;
        Ok(FleetObservation {
            at_ns,
            shards: observations,
            incidents,
        })
    }

    /// Runs `passes` monitoring passes, sleeping the configured interval
    /// on the policy clock between consecutive passes.
    ///
    /// # Errors
    ///
    /// Stops at the first pass that fails outright.
    pub fn run(
        &mut self,
        fleet: &mut FleetRegistry,
        passes: usize,
    ) -> Result<Vec<FleetObservation>, NtStatus> {
        let clock = self.clock();
        let mut observations = Vec::with_capacity(passes);
        for i in 0..passes {
            if i > 0 {
                clock.sleep_ns(self.config.interval_ns);
            }
            observations.push(self.observe(fleet)?);
        }
        Ok(observations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FleetSpec;
    use strider_ghostbuster::ScanPolicy;
    use strider_support::obs::FakeClock;

    fn fake_monitor() -> FleetMonitor {
        let policy = ScanPolicy::resilient().with_clock(Arc::new(FakeClock::new()));
        FleetMonitor::new(GhostBuster::new().with_policy(policy))
    }

    #[test]
    fn observe_without_baselines_is_rejected() {
        let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(2, 3)).unwrap();
        let mut monitor = fake_monitor();
        assert_eq!(
            monitor.observe(&mut fleet).unwrap_err(),
            NtStatus::InvalidParameter
        );
    }

    #[test]
    fn quiet_fleet_raises_no_incidents_and_fills_series() {
        let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(3, 13)).unwrap();
        let mut monitor = fake_monitor();
        assert_eq!(monitor.record_baselines(&mut fleet).unwrap(), 3);
        let passes = monitor.run(&mut fleet, 2).unwrap();
        assert_eq!(passes.len(), 2);
        assert!(passes.iter().all(|p| p.incidents.is_empty()));
        assert_eq!(monitor.passes_run(), 2);
        let infected = monitor.series("fleet.infected").unwrap();
        assert_eq!(infected.len(), 2);
        assert_eq!(infected.last(), Some(0.0));
        assert!(monitor.shard(ShardId(0)).unwrap().baseline().is_some());
    }

    #[test]
    fn new_infection_is_tagged_with_its_shard() {
        use strider_ghostware::{Ghostware, HackerDefender};
        let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(3, 29)).unwrap();
        let mut monitor = fake_monitor();
        monitor.record_baselines(&mut fleet).unwrap();

        HackerDefender::default()
            .infect(&mut fleet.machines_mut()[1].machine)
            .unwrap();
        let pass = monitor.observe(&mut fleet).unwrap();
        assert!(!pass.incidents.is_empty());
        assert!(
            pass.incidents.iter().all(|i| i.shard == ShardId(1)),
            "{:?}",
            pass.incidents
        );
        assert!(pass
            .incidents
            .iter()
            .any(|i| matches!(i.incident, MonitorIncident::NewHiddenResource { .. })));
        assert_eq!(pass.infected_shards(), vec![ShardId(1)]);
        let rendered = pass.incidents[0].to_string();
        assert!(rendered.starts_with("shard-001 ["), "{rendered}");
        assert_eq!(
            monitor.series("fleet.incidents").unwrap().last(),
            Some(pass.incidents.len() as f64)
        );
    }
}
