//! Fleet-wide drift monitoring: one [`SweepMonitor`] per shard (so every
//! machine diffs against *its own* baseline) plus fleet-level rollup
//! series, with incidents tagged by shard and fleet-level alert rules
//! (infection-rate spike, degraded-shard fraction, sweep-latency SLO)
//! evaluated after every pass.

use crate::registry::{FleetRegistry, ShardId};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use strider_ghostbuster::{
    GhostBuster, MetricSeries, MonitorConfig, MonitorIncident, MonitorObservation, SweepMonitor,
};
use strider_nt_core::NtStatus;
use strider_support::alert::{
    AlertCondition, AlertEngine, AlertLog, AlertRule, AlertTransition, Exposition, Severity,
    TimeSeries,
};
use strider_support::obs::{Clock, FlightDump, FlightRecorder};

/// A [`MonitorIncident`] tagged with the shard it fired on. The wrapped
/// incident carries that shard's flight-recorder dump as evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetIncident {
    /// The shard the incident concerns.
    pub shard: ShardId,
    /// That shard's machine name.
    pub machine: String,
    /// The underlying per-machine incident.
    pub incident: MonitorIncident,
}

impl fmt::Display for FleetIncident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.shard, self.machine, self.incident)
    }
}

/// Thresholds for the built-in fleet-level alert rules.
///
/// Four rules watch the rollup series after every pass:
///
/// * `fleet.infection_spike` — `fleet.infection_rate` above
///   [`infection_rate_max`](Self::infection_rate_max) (critical);
/// * `fleet.degraded_shards` — `fleet.degraded_fraction` (fraction of
///   shards with at least one degraded pipeline) above
///   [`degraded_fraction_max`](Self::degraded_fraction_max) (warning);
/// * `fleet.latency_slo` — `fleet.p95_sweep_ns` (nearest-rank p95 of
///   per-shard sweep durations this pass) above
///   [`sweep_p95_slo_ns`](Self::sweep_p95_slo_ns) (warning);
/// * `fleet.worker_starvation` — `fleet.queue_wait_p95_ns` (p95 shard
///   queue wait from an ingested [`FleetTrace`](crate::FleetTrace), see
///   [`FleetMonitor::ingest_trace`]) above
///   [`queue_wait_p95_max_ns`](Self::queue_wait_p95_max_ns) (warning):
///   shards sitting that long on worker deques means the pool is
///   under-provisioned or a worker is wedged on one slow machine.
///
/// All rules share one [`for_ns`](Self::for_ns) hold: a rule must stay
/// breached that long (on the policy clock) before it fires.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAlertPolicy {
    /// Infection-rate ceiling (fraction of shards), default 0.25.
    pub infection_rate_max: f64,
    /// Degraded-shard-fraction ceiling, default 0.25.
    pub degraded_fraction_max: f64,
    /// Per-pass p95 sweep-duration SLO in nanoseconds; default
    /// `u64::MAX` (no latency SLO).
    pub sweep_p95_slo_ns: u64,
    /// Ceiling on the p95 shard queue wait in nanoseconds; default
    /// `u64::MAX` (no starvation watch).
    pub queue_wait_p95_max_ns: u64,
    /// Hysteresis hold applied to every fleet rule, default 0.
    pub for_ns: u64,
}

impl Default for FleetAlertPolicy {
    fn default() -> Self {
        FleetAlertPolicy {
            infection_rate_max: 0.25,
            degraded_fraction_max: 0.25,
            sweep_p95_slo_ns: u64::MAX,
            queue_wait_p95_max_ns: u64::MAX,
            for_ns: 0,
        }
    }
}

impl FleetAlertPolicy {
    /// Sets the infection-rate ceiling.
    pub fn with_infection_rate_max(mut self, max: f64) -> Self {
        self.infection_rate_max = max;
        self
    }

    /// Sets the degraded-shard-fraction ceiling.
    pub fn with_degraded_fraction_max(mut self, max: f64) -> Self {
        self.degraded_fraction_max = max;
        self
    }

    /// Sets the p95 sweep-duration SLO.
    pub fn with_sweep_p95_slo_ns(mut self, slo_ns: u64) -> Self {
        self.sweep_p95_slo_ns = slo_ns;
        self
    }

    /// Sets the p95 shard-queue-wait ceiling behind
    /// `fleet.worker_starvation`.
    pub fn with_queue_wait_p95_max_ns(mut self, max_ns: u64) -> Self {
        self.queue_wait_p95_max_ns = max_ns;
        self
    }

    /// Sets the hysteresis hold shared by the fleet rules.
    pub fn with_for_ns(mut self, for_ns: u64) -> Self {
        self.for_ns = for_ns;
        self
    }

    fn rules(&self) -> Vec<AlertRule> {
        vec![
            AlertRule::new(
                "fleet.infection_spike",
                "fleet.infection_rate",
                AlertCondition::Above(self.infection_rate_max),
            )
            .with_for_ns(self.for_ns)
            .with_severity(Severity::Critical),
            AlertRule::new(
                "fleet.degraded_shards",
                "fleet.degraded_fraction",
                AlertCondition::Above(self.degraded_fraction_max),
            )
            .with_for_ns(self.for_ns)
            .with_severity(Severity::Warning),
            AlertRule::new(
                "fleet.latency_slo",
                "fleet.p95_sweep_ns",
                AlertCondition::Above(self.sweep_p95_slo_ns as f64),
            )
            .with_for_ns(self.for_ns)
            .with_severity(Severity::Warning),
            AlertRule::new(
                "fleet.worker_starvation",
                "fleet.queue_wait_p95_ns",
                AlertCondition::Above(self.queue_wait_p95_max_ns as f64),
            )
            .with_for_ns(self.for_ns)
            .with_severity(Severity::Warning),
        ]
    }
}

/// One shard's failed monitoring pass: the sweep could not enter the
/// machine, or its report came back with degraded pipelines. Failures are
/// counted per shard; enough *consecutive* ones quarantine the shard
/// (see [`FleetMonitor::with_quarantine_after`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFailure {
    /// The failing shard.
    pub shard: ShardId,
    /// That shard's machine name.
    pub machine: String,
    /// Why the pass failed.
    pub reason: String,
    /// Consecutive failed passes including this one.
    pub consecutive: u32,
}

impl fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] failed pass ({} consecutive): {}",
            self.shard, self.machine, self.consecutive, self.reason
        )
    }
}

/// A shard the fleet monitor has fenced off after too many consecutive
/// failed passes. Quarantined shards are skipped by later passes (their
/// failures no longer drown the rollups) but stay visible — in
/// [`FleetMonitor::quarantined`], the `fleet.quarantined` series, and
/// this record's flight-recorder evidence — until an operator
/// [`unquarantine`](FleetMonitor::unquarantine)s them.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardQuarantine {
    /// The fenced shard.
    pub shard: ShardId,
    /// That shard's machine name.
    pub machine: String,
    /// Consecutive failed passes that tripped the fence.
    pub failures: u32,
    /// The final failure's reason.
    pub reason: String,
    /// The monitor's flight ring at fencing time — the failure events
    /// leading up to the quarantine.
    pub evidence: FlightDump,
}

impl fmt::Display for ShardQuarantine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] QUARANTINED after {} failed passes: {}",
            self.shard, self.machine, self.failures, self.reason
        )
    }
}

/// One fleet-wide monitoring pass: every observed shard's observation
/// plus the incidents, failures, and fleet-level alert transitions raised
/// across the fleet.
#[derive(Debug, Clone)]
pub struct FleetObservation {
    /// Monitor clock reading when the pass started.
    pub at_ns: u64,
    /// Which shards were observed this pass, parallel to `shards`. Equals
    /// every shard in shard order unless some are quarantined.
    pub shard_ids: Vec<ShardId>,
    /// Per-observed-shard observations, parallel to `shard_ids`.
    pub shards: Vec<MonitorObservation>,
    /// Every incident of the pass, tagged with its shard.
    pub incidents: Vec<FleetIncident>,
    /// Shards whose pass failed this round (entry error or degraded
    /// pipelines) — the raw signal behind quarantine counting.
    pub failures: Vec<ShardFailure>,
    /// Shards currently quarantined (and therefore skipped this pass).
    pub quarantined: Vec<ShardId>,
    /// Fleet-level alert transitions this pass produced.
    pub transitions: Vec<AlertTransition>,
}

impl FleetObservation {
    /// Shards whose sweep found something suspicious this pass.
    pub fn infected_shards(&self) -> Vec<ShardId> {
        self.shard_ids
            .iter()
            .zip(&self.shards)
            .filter(|(_, o)| o.report.is_infected())
            .map(|(id, _)| *id)
            .collect()
    }
}

/// Drives one [`SweepMonitor`] per fleet machine and rolls their signals
/// up into fleet-level [`MetricSeries`], with a fleet-scope
/// [`AlertEngine`] on top.
///
/// Per-shard baselines matter because machines differ: a 30 s file scan is
/// normal on a large shard and a regression on a tiny one. The fleet
/// monitor therefore compares every machine against *its own* recorded
/// baseline, and only the rollups (infected count, total incidents,
/// degraded pipelines, infection rate, degraded fraction, p95 sweep
/// latency) are fleet-global. The [`FleetAlertPolicy`] rules — plus any
/// [`add_rule`](Self::add_rule)d custom rules — are evaluated over those
/// rollup series after every pass, and every transition lands in the
/// monitor's own [`FlightRecorder`] (see [`flight`](Self::flight)) so
/// fleet alerts carry a black box just like shard incidents do.
///
/// Monitoring passes run shard-serially on the calling thread: the
/// monitor's job is drift detection on a schedule, not throughput — use
/// [`FleetScheduler`](crate::FleetScheduler) when sweep latency is what
/// matters.
#[derive(Debug, Clone)]
pub struct FleetMonitor {
    detector: GhostBuster,
    config: MonitorConfig,
    alert_policy: FleetAlertPolicy,
    custom_rules: Vec<AlertRule>,
    engine: AlertEngine,
    recorder: FlightRecorder,
    shards: Vec<SweepMonitor>,
    machines: Vec<String>,
    series: BTreeMap<String, MetricSeries>,
    passes_run: u64,
    quarantine_after: u32,
    failure_streaks: Vec<u32>,
    quarantined: BTreeMap<u32, ShardQuarantine>,
}

impl FleetMonitor {
    /// A fleet monitor cloning per-shard monitors from `detector`, with
    /// default [`MonitorConfig`] and [`FleetAlertPolicy`].
    pub fn new(detector: GhostBuster) -> Self {
        let recorder = FlightRecorder::new(detector.policy().clock().clone());
        let alert_policy = FleetAlertPolicy::default();
        let engine = AlertEngine::with_rules(alert_policy.rules());
        FleetMonitor {
            detector,
            config: MonitorConfig::default(),
            alert_policy,
            custom_rules: Vec::new(),
            engine,
            recorder,
            shards: Vec::new(),
            machines: Vec::new(),
            series: BTreeMap::new(),
            passes_run: 0,
            quarantine_after: u32::MAX,
            failure_streaks: Vec::new(),
            quarantined: BTreeMap::new(),
        }
    }

    /// Fences a shard after `passes` *consecutive* failed passes (entry
    /// error or degraded pipelines): later passes skip it, its record
    /// lands in [`quarantined`](Self::quarantined) with flight evidence,
    /// and the `fleet.quarantined` series counts it. Default: never
    /// (`u32::MAX`). A successful pass resets a shard's streak.
    pub fn with_quarantine_after(mut self, passes: u32) -> Self {
        self.quarantine_after = passes.max(1);
        self
    }

    /// The shards currently fenced off, in shard order.
    pub fn quarantined(&self) -> Vec<&ShardQuarantine> {
        self.quarantined.values().collect()
    }

    /// Lifts a shard's quarantine (after the operator fixed the machine)
    /// and resets its failure streak so the next pass observes it again.
    /// Returns whether the shard was quarantined.
    pub fn unquarantine(&mut self, shard: ShardId) -> bool {
        if let Some(streak) = self.failure_streaks.get_mut(shard.0 as usize) {
            *streak = 0;
        }
        self.quarantined.remove(&shard.0).is_some()
    }

    /// Replaces the monitor configuration (shared by every shard monitor).
    pub fn with_config(mut self, config: MonitorConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the fleet alert policy, rebuilding the fleet rules (which
    /// resets their states; custom rules are kept).
    pub fn with_alert_policy(mut self, policy: FleetAlertPolicy) -> Self {
        self.alert_policy = policy;
        self.rebuild_engine();
        self
    }

    /// Adds a custom fleet-level [`AlertRule`] over the rollup series,
    /// builder style.
    pub fn with_rule(mut self, rule: AlertRule) -> Self {
        self.add_rule(rule);
        self
    }

    /// Adds a custom fleet-level [`AlertRule`] evaluated over the rollup
    /// series after every pass. A rule sharing a name with an existing
    /// rule (including a fleet built-in) replaces it and resets its
    /// state.
    pub fn add_rule(&mut self, rule: AlertRule) {
        if let Some(existing) = self.custom_rules.iter_mut().find(|r| r.name == rule.name) {
            *existing = rule.clone();
        } else {
            self.custom_rules.push(rule.clone());
        }
        self.engine.add_rule(rule);
    }

    fn rebuild_engine(&mut self) {
        let mut rules = self.alert_policy.rules();
        rules.extend(self.custom_rules.iter().cloned());
        self.engine = AlertEngine::with_rules(rules);
    }

    /// The active configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// The active fleet alert policy.
    pub fn alert_policy(&self) -> &FleetAlertPolicy {
        &self.alert_policy
    }

    /// The fleet-level alert engine: rule states, firing rules, and the
    /// bounded transition log.
    pub fn alerts(&self) -> &AlertEngine {
        &self.engine
    }

    /// The bounded fleet alert-transition history (shorthand for
    /// `alerts().log()`).
    pub fn alert_log(&self) -> &AlertLog {
        self.engine.log()
    }

    /// A snapshot of the fleet monitor's own flight ring — fleet alert
    /// transitions land here, so a firing fleet rule ships evidence the
    /// same way shard incidents do.
    pub fn flight(&self) -> FlightDump {
        self.recorder.snapshot()
    }

    /// How many fleet passes have run (baselines excluded).
    pub fn passes_run(&self) -> u64 {
        self.passes_run
    }

    /// The per-shard monitor, once baselines are recorded.
    pub fn shard(&self, shard: ShardId) -> Option<&SweepMonitor> {
        self.shards.get(shard.0 as usize)
    }

    /// The fleet-level rolling series for a metric, if observed.
    pub fn series(&self, name: &str) -> Option<&MetricSeries> {
        self.series.get(name)
    }

    /// Names of every fleet-level metric with a rolling series, sorted.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    fn clock(&self) -> Arc<dyn Clock> {
        self.detector.policy().clock().clone()
    }

    /// Records one baseline sweep per machine, creating the per-shard
    /// monitors. Each shard's monitor gets its own detector clone with
    /// fresh circuit breakers, so one machine's failures never trip
    /// another's breakers.
    ///
    /// # Errors
    ///
    /// Propagates the first shard's sweep failure.
    pub fn record_baselines(&mut self, fleet: &mut FleetRegistry) -> Result<usize, NtStatus> {
        let policy = self.detector.policy().clone();
        self.shards = fleet
            .machines()
            .iter()
            .map(|_| {
                SweepMonitor::new(self.detector.clone().with_policy(policy.clone()))
                    .with_config(self.config.clone())
            })
            .collect();
        self.machines = fleet
            .machines()
            .iter()
            .map(|m| m.machine.name().to_string())
            .collect();
        self.failure_streaks = vec![0; self.shards.len()];
        self.quarantined.clear();
        for (monitor, shard) in self.shards.iter_mut().zip(fleet.machines_mut()) {
            monitor.record_baseline(&mut shard.machine)?;
        }
        Ok(self.shards.len())
    }

    /// Runs one monitoring pass over the whole fleet: every
    /// non-quarantined shard is observed against its own baseline,
    /// incidents are tagged with their shard, the fleet rollup series are
    /// updated, and the fleet alert rules are evaluated.
    ///
    /// A shard whose pass fails — the scanner cannot enter the machine,
    /// or the observation comes back with degraded pipelines — no longer
    /// sinks the fleet: the failure is recorded (with a flight event) in
    /// [`FleetObservation::failures`], and once a shard fails
    /// [`with_quarantine_after`](Self::with_quarantine_after) consecutive
    /// passes it is fenced off and skipped until
    /// [`unquarantine`](Self::unquarantine)d.
    ///
    /// # Errors
    ///
    /// [`NtStatus::InvalidParameter`] when baselines were not recorded
    /// for this fleet.
    pub fn observe(&mut self, fleet: &mut FleetRegistry) -> Result<FleetObservation, NtStatus> {
        if self.shards.len() != fleet.len()
            || fleet
                .machines()
                .iter()
                .zip(&self.machines)
                .any(|(m, name)| m.machine.name() != name)
        {
            return Err(NtStatus::InvalidParameter);
        }
        if self.failure_streaks.len() != self.shards.len() {
            self.failure_streaks = vec![0; self.shards.len()];
        }
        let at_ns = self.clock().now_ns();
        let mut shard_ids = Vec::with_capacity(fleet.len());
        let mut observations = Vec::with_capacity(fleet.len());
        let mut incidents = Vec::new();
        let mut failures = Vec::new();
        for (i, (monitor, shard)) in self.shards.iter_mut().zip(fleet.machines_mut()).enumerate() {
            if self.quarantined.contains_key(&(i as u32)) {
                continue;
            }
            let machine_name = shard.machine.name().to_string();
            let failure_reason = match monitor.observe(&mut shard.machine) {
                Ok(observation) => {
                    for incident in &observation.incidents {
                        incidents.push(FleetIncident {
                            shard: ShardId(i as u32),
                            machine: machine_name.clone(),
                            incident: incident.clone(),
                        });
                    }
                    let degraded = observation.report.health.degraded_pipelines();
                    let reason = (!degraded.is_empty())
                        .then(|| format!("degraded pipelines: {}", degraded.join(", ")));
                    shard_ids.push(ShardId(i as u32));
                    observations.push(observation);
                    reason
                }
                Err(status) => Some(format!("could not observe machine: {status:?}")),
            };
            match failure_reason {
                None => self.failure_streaks[i] = 0,
                Some(reason) => {
                    self.failure_streaks[i] += 1;
                    let consecutive = self.failure_streaks[i];
                    self.recorder.fault(
                        "fleet.shard_failure",
                        &format!(
                            "shard-{i:03} [{machine_name}] pass failed ({consecutive} consecutive): {reason}"
                        ),
                    );
                    failures.push(ShardFailure {
                        shard: ShardId(i as u32),
                        machine: machine_name.clone(),
                        reason: reason.clone(),
                        consecutive,
                    });
                    if consecutive >= self.quarantine_after {
                        self.recorder.fault(
                            "fleet.shard_quarantine",
                            &format!(
                                "shard-{i:03} [{machine_name}] fenced after {consecutive} failed passes"
                            ),
                        );
                        self.quarantined.insert(
                            i as u32,
                            ShardQuarantine {
                                shard: ShardId(i as u32),
                                machine: machine_name,
                                failures: consecutive,
                                reason,
                                evidence: self.recorder.snapshot(),
                            },
                        );
                    }
                }
            }
        }

        let now_ns = self.clock().now_ns();
        let shard_count = observations.len().max(1) as f64;
        let infected = observations
            .iter()
            .filter(|o| o.report.is_infected())
            .count() as f64;
        let degraded_shards = observations
            .iter()
            .filter(|o| !o.report.health.degraded_pipelines().is_empty())
            .count() as f64;
        // Nearest-rank p95 of per-shard whole-sweep durations this pass.
        let mut sweep_ns: Vec<u64> = observations
            .iter()
            .map(|o| o.report.pipeline_durations().values().sum::<u64>())
            .collect();
        sweep_ns.sort_unstable();
        let p95_ns = sweep_ns
            .get(((0.95 * sweep_ns.len() as f64).ceil() as usize).saturating_sub(1))
            .copied()
            .unwrap_or(0);

        let history = self.config.history;
        let mut push = |name: &str, value: f64| {
            self.series
                .entry(name.to_string())
                .or_insert_with(|| TimeSeries::new(history))
                .push(now_ns, value);
        };
        push("fleet.infected", infected);
        push(
            "fleet.suspicious",
            observations
                .iter()
                .map(|o| o.report.suspicious_count())
                .sum::<usize>() as f64,
        );
        push(
            "fleet.degraded",
            observations
                .iter()
                .map(|o| o.report.health.degraded_pipelines().len())
                .sum::<usize>() as f64,
        );
        push("fleet.incidents", incidents.len() as f64);
        push("fleet.infection_rate", infected / shard_count);
        push("fleet.degraded_fraction", degraded_shards / shard_count);
        push("fleet.p95_sweep_ns", p95_ns as f64);
        push("fleet.failures", failures.len() as f64);
        push("fleet.quarantined", self.quarantined.len() as f64);

        let transitions = self
            .engine
            .evaluate(&self.series, now_ns, Some(&self.recorder));

        self.passes_run += 1;
        Ok(FleetObservation {
            at_ns,
            shard_ids,
            shards: observations,
            incidents,
            failures,
            quarantined: self.quarantined.keys().map(|&i| ShardId(i)).collect(),
            transitions,
        })
    }

    /// Feeds a traced sweep's scheduler timeline into the fleet rollup
    /// series: pushes `fleet.queue_wait_p95_ns` (p95 shard queue wait)
    /// and `fleet.worker_idle_fraction` (capacity spent outside shard
    /// sweeps) at the current clock reading, then re-evaluates the fleet
    /// alert rules so `fleet.worker_starvation` can fire. Returns the
    /// alert transitions the evaluation produced.
    ///
    /// Unlike [`observe`](Self::observe) this needs no baselines: the
    /// trace comes from a
    /// [`FleetScheduler::sweep_traced`](crate::FleetScheduler::sweep_traced)
    /// run, not from this monitor's own pass.
    pub fn ingest_trace(&mut self, trace: &crate::FleetTrace) -> Vec<AlertTransition> {
        let now_ns = self.clock().now_ns();
        let history = self.config.history;
        let mut push = |name: &str, value: f64| {
            self.series
                .entry(name.to_string())
                .or_insert_with(|| TimeSeries::new(history))
                .push(now_ns, value);
        };
        push("fleet.queue_wait_p95_ns", trace.queue_wait_p95_ns() as f64);
        push("fleet.worker_idle_fraction", trace.worker_idle_fraction());
        self.engine
            .evaluate(&self.series, now_ns, Some(&self.recorder))
    }

    /// Runs `passes` monitoring passes, sleeping the configured interval
    /// on the policy clock between consecutive passes.
    ///
    /// # Errors
    ///
    /// Stops at the first pass that fails outright.
    pub fn run(
        &mut self,
        fleet: &mut FleetRegistry,
        passes: usize,
    ) -> Result<Vec<FleetObservation>, NtStatus> {
        let clock = self.clock();
        let mut observations = Vec::with_capacity(passes);
        for i in 0..passes {
            if i > 0 {
                clock.sleep_ns(self.config.interval_ns);
            }
            observations.push(self.observe(fleet)?);
        }
        Ok(observations)
    }

    /// The fleet monitor's current state as a Prometheus-text
    /// [`Exposition`]: every fleet rollup series' newest value as a
    /// `fleet_*` gauge, the pass counter, and the active fleet alerts.
    pub fn prometheus(&self) -> Exposition {
        let mut expo = Exposition::new();
        for (name, series) in &self.series {
            if let Some(value) = series.last() {
                expo.gauge(name, value);
            }
        }
        expo.counter("strider_fleet_passes_total", self.passes_run);
        expo.alerts(&self.engine);
        expo
    }

    /// Writes [`prometheus`](Self::prometheus) as
    /// `TELEMETRY_EXPO_<label>.prom` into
    /// [`strider_support::bench::report_dir`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects labels with no alphanumeric
    /// content.
    pub fn write_prom(&self, label: &str) -> std::io::Result<PathBuf> {
        self.prometheus().write(label)
    }

    /// Writes [`prometheus`](Self::prometheus) as
    /// `TELEMETRY_EXPO_<label>.prom` into `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects labels with no alphanumeric
    /// content.
    pub fn write_prom_in(&self, dir: &Path, label: &str) -> std::io::Result<PathBuf> {
        self.prometheus().write_in(dir, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FleetSpec;
    use strider_ghostbuster::ScanPolicy;
    use strider_support::obs::FakeClock;

    fn fake_monitor() -> FleetMonitor {
        let policy = ScanPolicy::resilient().with_clock(Arc::new(FakeClock::new()));
        FleetMonitor::new(GhostBuster::new().with_policy(policy))
    }

    #[test]
    fn observe_without_baselines_is_rejected() {
        let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(2, 3)).unwrap();
        let mut monitor = fake_monitor();
        assert_eq!(
            monitor.observe(&mut fleet).unwrap_err(),
            NtStatus::InvalidParameter
        );
    }

    #[test]
    fn quiet_fleet_raises_no_incidents_and_fills_series() {
        let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(3, 13)).unwrap();
        let mut monitor = fake_monitor();
        assert_eq!(monitor.record_baselines(&mut fleet).unwrap(), 3);
        let passes = monitor.run(&mut fleet, 2).unwrap();
        assert_eq!(passes.len(), 2);
        assert!(passes.iter().all(|p| p.incidents.is_empty()));
        assert!(passes.iter().all(|p| p.transitions.is_empty()));
        assert_eq!(monitor.passes_run(), 2);
        let infected = monitor.series("fleet.infected").unwrap();
        assert_eq!(infected.len(), 2);
        assert_eq!(infected.last(), Some(0.0));
        assert_eq!(
            monitor.series("fleet.infection_rate").unwrap().last(),
            Some(0.0)
        );
        assert!(monitor.shard(ShardId(0)).unwrap().baseline().is_some());
        assert!(monitor.alerts().firing().is_empty());
    }

    #[test]
    fn new_infection_is_tagged_with_its_shard() {
        use strider_ghostware::{Ghostware, HackerDefender};
        let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(3, 29)).unwrap();
        let mut monitor = fake_monitor();
        monitor.record_baselines(&mut fleet).unwrap();

        HackerDefender::default()
            .infect(&mut fleet.machines_mut()[1].machine)
            .unwrap();
        let pass = monitor.observe(&mut fleet).unwrap();
        assert!(!pass.incidents.is_empty());
        assert!(
            pass.incidents.iter().all(|i| i.shard == ShardId(1)),
            "{:?}",
            pass.incidents
        );
        assert!(pass
            .incidents
            .iter()
            .any(|i| matches!(i.incident, MonitorIncident::NewHiddenResource { .. })));
        assert_eq!(pass.infected_shards(), vec![ShardId(1)]);
        let rendered = pass.incidents[0].to_string();
        assert!(rendered.starts_with("shard-001 ["), "{rendered}");
        assert_eq!(
            monitor.series("fleet.incidents").unwrap().last(),
            Some(pass.incidents.len() as f64)
        );
    }

    #[test]
    fn infection_spike_fires_the_fleet_rule_with_flight_evidence() {
        use strider_ghostware::{Ghostware, HackerDefender};
        let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(3, 31)).unwrap();
        let mut monitor = fake_monitor();
        monitor.record_baselines(&mut fleet).unwrap();

        // 1/3 infected > 0.25 default ceiling.
        HackerDefender::default()
            .infect(&mut fleet.machines_mut()[0].machine)
            .unwrap();
        let pass = monitor.observe(&mut fleet).unwrap();
        assert!(monitor.alerts().is_firing("fleet.infection_spike"));
        assert!(pass
            .transitions
            .iter()
            .any(|t| t.rule == "fleet.infection_spike"));
        assert!(monitor
            .flight()
            .events
            .iter()
            .any(|e| e.what == "fleet.infection_spike"));
        let prom = monitor.prometheus().render();
        assert!(prom.contains(
            "strider_alert_active{rule=\"fleet.infection_spike\",severity=\"critical\"} 1"
        ));
    }
}
